//! `deepweb-truth` — a reproduction of *"Truth Finding on the Deep Web: Is
//! the Problem Solved?"* (Li, Dong, Lyons, Meng, Srivastava; VLDB 2012).
//!
//! The workspace implements the full measurement pipeline of the paper:
//!
//! * [`datamodel`] — sources, objects, attributes, typed values, tolerance
//!   and bucketing, observation tables, gold standards;
//! * [`datagen`] — seeded Deep-Web simulators for the Stock and Flight
//!   domains, calibrated to the statistics the paper reports;
//! * [`profiling`] — the Section-3 data-quality study (redundancy,
//!   consistency, dominance, source accuracy, copying);
//! * [`copydetect`] — Bayesian source-dependence detection;
//! * [`fusion`] — the sixteen fusion methods of Table 6 behind one trait;
//! * [`evaluation`] — the Section-4 experiment harness (precision/recall,
//!   trust quality, incremental sources, method comparison, error analysis,
//!   over-time summaries);
//! * [`service`] — the in-process online fusion service: idempotent
//!   operation ingest over a warm delta engine, concurrent lock-cheap reads
//!   of selected values, confidence, and per-source trust.
//!
//! # Quick start
//!
//! ```
//! use deepweb_truth::prelude::*;
//!
//! // Generate a small Stock-like collection (seeded, deterministic).
//! let config = stock_config(7).scaled(0.01, 0.1);
//! let domain = generate(&config);
//! let day = domain.collection.reference_day();
//!
//! // Profile the data and run one fusion method.
//! let vote_precision = dominant_value_precision(&day.snapshot, &day.gold);
//! let context = EvaluationContext::new(&day.snapshot, &day.gold);
//! let accu = method_by_name("AccuFormatAttr").unwrap();
//! let result = accu.run(&context.problem, &FusionOptions::standard());
//! let pr = precision_recall(&day.snapshot, &day.gold, &result);
//! assert!(pr.precision >= 0.0 && pr.precision <= 1.0);
//! assert!(vote_precision > 0.0);
//! ```

pub use copydetect;
pub use datagen;
pub use datamodel;
pub use evaluation;
pub use fusion;
pub use profiling;
pub use service;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use copydetect::{known_copying, CopyDetector, CopyReport};
    pub use datagen::{flight_config, generate, stock_config, DomainConfig, GeneratedDomain};
    pub use datamodel::{
        AttrId, Collection, DomainSchema, GoldStandard, ItemId, ObjectId, Snapshot,
        SnapshotBuilder, SourceId, Value,
    };
    pub use evaluation::{
        analyze_errors, compare_methods, evaluate_all_methods, evaluate_over_time,
        incremental_recall, precision_by_dominance, precision_recall, EvaluationContext,
    };
    pub use fusion::{all_methods, method_by_name, FusionMethod, FusionOptions, FusionProblem};
    pub use profiling::{
        dominance_profile, dominant_value_precision, redundancy_summary, snapshot_inconsistency,
        source_accuracies,
    };
    pub use service::{FusionService, OpKind, Operation, ServiceConfig, ServiceReader};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_supports_the_full_pipeline() {
        let domain = generate(&stock_config(3).scaled(0.01, 0.1));
        let day = domain.collection.reference_day();
        let summary = redundancy_summary(&day.snapshot);
        assert!(summary.num_sources > 0);
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let vote = method_by_name("Vote").unwrap();
        let result = vote.run(&context.problem, &FusionOptions::standard());
        let pr = precision_recall(&day.snapshot, &day.gold, &result);
        assert!(pr.precision > 0.5);
    }
}
