//! The published read path: immutable [`ServedState`] snapshots behind
//! cloneable [`ServiceReader`] handles.
//!
//! Publication is pointer-swap cheap: the service builds the next state off
//! to the side, then takes the write lock only to replace the inner `Arc`.
//! Readers take the read lock only to clone that `Arc`, so neither side ever
//! holds the lock across real work — queries run lock-free against the
//! cloned state, and an in-flight seal never blocks a reader.

use datamodel::{ItemId, SourceId, Value};
use evaluation::DeltaUsage;
use fusion::{FusionProblem, FusionResult};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Cumulative service accounting: ingest outcomes, seal timings, and the
/// folded [`DeltaUsage`] of the underlying engine.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Operations that mutated the ledger (or sealed a day).
    pub ops_applied: usize,
    /// Exact replays dropped by the idempotency keys.
    pub ops_duplicate: usize,
    /// Late lower-sequence arrivals dropped by last-writer-wins.
    pub ops_stale: usize,
    /// Operations rejected outright (e.g. sealing a future day twice over).
    pub ops_rejected: usize,
    /// Days sealed so far.
    pub seals: usize,
    /// Total wall clock spent sealing (materialize + advance + fuse +
    /// publish).
    pub seal_wall: Duration,
    /// Portion of `seal_wall` spent inside the fusion methods themselves.
    pub fuse_wall: Duration,
    /// The delta engine's own accounting, folded over every seal.
    pub delta: DeltaUsage,
}

impl ServiceStats {
    /// Mean wall clock per seal (zero before the first seal).
    pub fn mean_seal(&self) -> Duration {
        if self.seals == 0 {
            Duration::ZERO
        } else {
            self.seal_wall / self.seals as u32
        }
    }
}

/// One method's materialized results inside a [`ServedState`].
#[derive(Debug, Clone)]
struct MethodServe {
    /// Selected local candidate per item (aligned with `ServedState::items`).
    selection: Vec<u32>,
    /// Trust-weighted vote share of the selected candidate per item.
    confidence: Vec<f64>,
    /// Overall trust per source (aligned with `ServedState::sources`).
    trust: Vec<f64>,
}

/// An immutable, fully materialized view of one sealed day: everything the
/// read path needs, detached from the engine that produced it.
///
/// The claim table mirrors the engine's CSR problem (item-major, sources as
/// dense indices), so per-item answers are O(providers) slice walks with no
/// map lookups beyond the initial item binary search.
#[derive(Debug, Clone)]
pub struct ServedState {
    day: Option<u32>,
    version: u64,
    items: Vec<ItemId>,
    sources: Vec<SourceId>,
    /// `items.len() + 1` offsets into `cand_values`.
    cand_offsets: Vec<u32>,
    cand_values: Vec<Value>,
    /// `items.len() + 1` offsets into `claims`.
    claim_offsets: Vec<u32>,
    /// `(source index, local candidate)` per claim, source-sorted per item.
    claims: Vec<(u32, u32)>,
    per_method: BTreeMap<String, MethodServe>,
    stats: ServiceStats,
}

/// What one source said about one item, and how the service weighs it.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceReading {
    /// The claiming source.
    pub source: SourceId,
    /// The source's overall trust under the answering method.
    pub trust: f64,
    /// The value the source claimed.
    pub claimed: Value,
    /// Whether the claim falls in the selected candidate's bucket.
    pub agrees: bool,
}

/// A full per-item answer: the fused value, how confident the method is in
/// it, and every contributing source's claim and trust.
#[derive(Debug, Clone, PartialEq)]
pub struct ItemAnswer {
    /// The sealed day this answer belongs to.
    pub day: u32,
    /// The item queried.
    pub item: ItemId,
    /// The selected (fused) value.
    pub value: Value,
    /// Trust-weighted vote share of the selected candidate in `[0, 1]`.
    pub confidence: f64,
    /// Per-source readings, in ascending source order.
    pub sources: Vec<SourceReading>,
}

impl ServedState {
    /// The state served before any day is sealed: no items, no methods.
    pub fn empty() -> Self {
        Self {
            day: None,
            version: 0,
            items: Vec::new(),
            sources: Vec::new(),
            cand_offsets: vec![0],
            cand_values: Vec::new(),
            claim_offsets: vec![0],
            claims: Vec::new(),
            per_method: BTreeMap::new(),
            stats: ServiceStats::default(),
        }
    }

    /// Materialize a state from the engine's prepared problem plus each
    /// method's result for it.
    pub(crate) fn from_problem(
        day: u32,
        version: u64,
        problem: &FusionProblem,
        results: &[(String, FusionResult)],
        stats: ServiceStats,
    ) -> Self {
        let items: Vec<ItemId> = problem.items().map(|i| i.id()).collect();
        let sources = problem.sources.clone();
        let mut cand_offsets = Vec::with_capacity(items.len() + 1);
        let mut claim_offsets = Vec::with_capacity(items.len() + 1);
        let mut cand_values = Vec::new();
        let mut claims: Vec<(u32, u32)> = Vec::new();
        cand_offsets.push(0);
        claim_offsets.push(0);
        for item in problem.items() {
            let claim_base = claims.len();
            for cand in item.candidates() {
                let local = cand.local_index() as u32;
                cand_values.push(cand.value().clone());
                for &p in cand.providers() {
                    claims.push((p, local));
                }
            }
            claims[claim_base..].sort_unstable();
            cand_offsets.push(cand_values.len() as u32);
            claim_offsets.push(claims.len() as u32);
        }

        let mut per_method = BTreeMap::new();
        for (name, result) in results {
            let selection: Vec<u32> = result.selection.iter().map(|&s| s as u32).collect();
            let trust = result.trust.overall.clone();
            let mut confidence = Vec::with_capacity(items.len());
            for i in 0..items.len() {
                let sel = selection[i];
                let row = &claims[claim_offsets[i] as usize..claim_offsets[i + 1] as usize];
                let mut total = 0.0f64;
                let mut selected = 0.0f64;
                for &(s, c) in row {
                    let t = trust.get(s as usize).copied().unwrap_or(0.0);
                    let w = if t.is_finite() { t.max(0.0) } else { 0.0 };
                    total += w;
                    if c == sel {
                        selected += w;
                    }
                }
                confidence.push(if total > 0.0 {
                    selected / total
                } else if row.is_empty() {
                    0.0
                } else {
                    // Degenerate all-zero trust: fall back to the plain vote
                    // share so the answer still ranks candidates sensibly.
                    row.iter().filter(|&&(_, c)| c == sel).count() as f64 / row.len() as f64
                });
            }
            per_method.insert(
                name.clone(),
                MethodServe {
                    selection,
                    confidence,
                    trust,
                },
            );
        }

        Self {
            day: Some(day),
            version,
            items,
            sources,
            cand_offsets,
            cand_values,
            claim_offsets,
            claims,
            per_method,
            stats,
        }
    }

    /// The sealed day this state was published for (`None` before the first
    /// seal).
    pub fn day(&self) -> Option<u32> {
        self.day
    }

    /// Monotonically increasing publication counter (0 for the empty state).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Item ids served by this state, in ascending order.
    pub fn items(&self) -> &[ItemId] {
        &self.items
    }

    /// Sources known to this state, in ascending order.
    pub fn sources(&self) -> &[SourceId] {
        &self.sources
    }

    /// Names of the methods with materialized results, in sorted order.
    pub fn methods(&self) -> impl Iterator<Item = &str> {
        self.per_method.keys().map(String::as_str)
    }

    /// The service accounting frozen at publication time.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The selected local candidate per item under `method` (the raw
    /// selection vector, for bit-identity comparisons against batch runs).
    pub fn selection(&self, method: &str) -> Option<&[u32]> {
        self.per_method.get(method).map(|m| m.selection.as_slice())
    }

    /// Overall trust per source under `method`, aligned with
    /// [`sources`](Self::sources).
    pub fn trust_vector(&self, method: &str) -> Option<&[f64]> {
        self.per_method.get(method).map(|m| m.trust.as_slice())
    }

    /// Overall trust of one source under `method`.
    pub fn trust(&self, method: &str, source: SourceId) -> Option<f64> {
        let m = self.per_method.get(method)?;
        let i = self.sources.binary_search(&source).ok()?;
        Some(m.trust[i])
    }

    /// The full answer for `item` under `method`, or `None` when the method
    /// or item is unknown (or nothing is sealed yet).
    pub fn answer(&self, method: &str, item: ItemId) -> Option<ItemAnswer> {
        let day = self.day?;
        let m = self.per_method.get(method)?;
        let i = self.items.binary_search(&item).ok()?;
        let sel = m.selection[i];
        let cand_base = self.cand_offsets[i] as usize;
        let value = self.cand_values[cand_base + sel as usize].clone();
        let sources = self.claims[self.claim_offsets[i] as usize..self.claim_offsets[i + 1] as usize]
            .iter()
            .map(|&(s, c)| SourceReading {
                source: self.sources[s as usize],
                trust: m.trust[s as usize],
                claimed: self.cand_values[cand_base + c as usize].clone(),
                agrees: c == sel,
            })
            .collect();
        Some(ItemAnswer {
            day,
            item,
            value,
            confidence: m.confidence[i],
            sources,
        })
    }
}

/// Cloneable, thread-safe handle onto the service's published state.
///
/// Each accessor clones the current `Arc<ServedState>` under a momentary
/// read lock and then works lock-free; see the [crate docs](crate) for the
/// consistency contract.
#[derive(Debug, Clone)]
pub struct ServiceReader {
    shared: Arc<RwLock<Arc<ServedState>>>,
}

impl ServiceReader {
    pub(crate) fn new(shared: Arc<RwLock<Arc<ServedState>>>) -> Self {
        Self { shared }
    }

    /// The current published state. Holding the returned `Arc` pins that
    /// state (not the lock): later seals publish new states without
    /// disturbing it.
    pub fn state(&self) -> Arc<ServedState> {
        Arc::clone(&self.shared.read().expect("served state lock poisoned"))
    }

    /// The latest sealed day (`None` before the first seal).
    pub fn day(&self) -> Option<u32> {
        self.state().day()
    }

    /// The latest publication counter.
    pub fn version(&self) -> u64 {
        self.state().version()
    }

    /// [`ServedState::answer`] against the current state.
    pub fn answer(&self, method: &str, item: ItemId) -> Option<ItemAnswer> {
        self.state().answer(method, item)
    }

    /// [`ServedState::trust`] against the current state.
    pub fn trust(&self, method: &str, source: SourceId) -> Option<f64> {
        self.state().trust(method, source)
    }

    /// The service accounting as of the current state's publication.
    pub fn stats(&self) -> ServiceStats {
        self.state().stats().clone()
    }
}
