//! In-process online fusion service over the warm [`fusion::DeltaEngine`].
//!
//! The batch `exp_*` runners re-fuse whole snapshots; this crate is the
//! serving shell the ROADMAP's online-service item asks for, modeled on
//! Chronicle's ledger/API split: **operations in, state deltas out, queries
//! from materialized state**.
//!
//! # Ingest path
//!
//! A [`FusionService`] accepts a stream of typed [`Operation`]s —
//! [`UpsertClaim`](OpKind::UpsertClaim), [`RetractClaim`](OpKind::RetractClaim),
//! [`SourceLeave`](OpKind::SourceLeave) / [`SourceRejoin`](OpKind::SourceRejoin),
//! and [`SealDay`](OpKind::SealDay) — applied to an internal persistent claim
//! ledger (a [`datamodel::SnapshotBuilder`] plus per-key sequence numbers).
//! Operations carry a producer-assigned sequence number and are **idempotent
//! under duplication and commutative under reordering** within a day: for
//! each claim key `(source, item)` (and each source for leave/rejoin) the
//! highest sequence number wins, exact replays are
//! [`Duplicate`](ApplyOutcome::Duplicate) no-ops, and late lower-seq arrivals
//! are [`Stale`](ApplyOutcome::Stale) no-ops. `SealDay` materializes the
//! ledger into a canonical snapshot (per-item observations in `SourceId`
//! order, tolerances pinned to the first sealed day) and advances the
//! [`fusion::DeltaEngine`], so consecutive seals pay only for what changed.
//!
//! # Read path
//!
//! Every seal publishes an immutable [`ServedState`] — per-method selected
//! values, per-item confidence, per-source trust, and the claim table needed
//! to answer "who said what" — behind an `RwLock<Arc<ServedState>>`.
//! [`ServiceReader`]s (cloneable, `Send + Sync`) take the read lock only long
//! enough to clone the inner `Arc`, so readers are never blocked by an
//! in-flight advance: they keep serving the previous day's state until the
//! swap, and a reader holding a state keeps it alive arbitrarily long.
//!
//! The container is offline (no tokio), so concurrency is std threads +
//! channels: an ingest thread owns the service, reader threads clone
//! [`ServiceReader`]s. See `tests/service.rs` and the `exp_service` binary.

#![deny(missing_docs)]

mod ops;
mod service;
mod state;

pub use ops::{day_ops, diff_ops, shuffle, OpKind, Operation};
pub use service::{ApplyOutcome, FusionService, IngestSummary, SealReport, ServiceConfig};
pub use state::{ItemAnswer, ServedState, ServiceReader, ServiceStats, SourceReading};
