//! The typed operation stream a [`crate::FusionService`] ingests, plus
//! helpers for deriving streams from snapshots (and scrambling them, for the
//! out-of-order convergence tests and `exp_service`).

use datamodel::{AttrId, ObjectId, Snapshot, SourceId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What one [`Operation`] does to the service's ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    /// `source` claims `value` for the data item `(object, attr)`,
    /// replacing any previous claim by the same source.
    UpsertClaim {
        /// The claiming source.
        source: SourceId,
        /// Object of the claimed item.
        object: ObjectId,
        /// Attribute of the claimed item.
        attr: AttrId,
        /// The claimed (normalized) value.
        value: Value,
    },
    /// `source` withdraws its claim for `(object, attr)`, if any.
    RetractClaim {
        /// The retracting source.
        source: SourceId,
        /// Object of the retracted item.
        object: ObjectId,
        /// Attribute of the retracted item.
        attr: AttrId,
    },
    /// `source` goes offline: its claims stay in the ledger but are excluded
    /// from sealed snapshots until it rejoins.
    SourceLeave {
        /// The leaving source.
        source: SourceId,
    },
    /// `source` comes back online; its ledgered claims reappear in the next
    /// sealed snapshot.
    SourceRejoin {
        /// The rejoining source.
        source: SourceId,
    },
    /// Close the books on `day`: materialize the ledger, advance the delta
    /// engine, re-fuse, and publish a new [`crate::ServedState`].
    SealDay {
        /// The day index to seal.
        day: u32,
    },
}

/// One ingest operation: a producer-assigned sequence number plus its kind.
///
/// The sequence number is the idempotency key: per claim key `(source,
/// item)` — and per source for leave/rejoin — the highest `seq` wins
/// regardless of arrival order, and an exact replay is a no-op. `SealDay`
/// is keyed by its day instead (sealing an already-sealed day is a no-op).
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// Producer-assigned sequence number (total order at the producer).
    pub seq: u64,
    /// What the operation does.
    pub kind: OpKind,
}

impl Operation {
    /// An [`OpKind::UpsertClaim`] operation.
    pub fn upsert(seq: u64, source: SourceId, object: ObjectId, attr: AttrId, value: Value) -> Self {
        Self {
            seq,
            kind: OpKind::UpsertClaim {
                source,
                object,
                attr,
                value,
            },
        }
    }

    /// An [`OpKind::RetractClaim`] operation.
    pub fn retract(seq: u64, source: SourceId, object: ObjectId, attr: AttrId) -> Self {
        Self {
            seq,
            kind: OpKind::RetractClaim {
                source,
                object,
                attr,
            },
        }
    }

    /// An [`OpKind::SourceLeave`] operation.
    pub fn leave(seq: u64, source: SourceId) -> Self {
        Self {
            seq,
            kind: OpKind::SourceLeave { source },
        }
    }

    /// An [`OpKind::SourceRejoin`] operation.
    pub fn rejoin(seq: u64, source: SourceId) -> Self {
        Self {
            seq,
            kind: OpKind::SourceRejoin { source },
        }
    }

    /// An [`OpKind::SealDay`] operation.
    pub fn seal(seq: u64, day: u32) -> Self {
        Self {
            seq,
            kind: OpKind::SealDay { day },
        }
    }
}

/// One upsert per observation of `snapshot`, sequence numbers starting at
/// `first_seq` — the operation form of a full day. Does **not** append the
/// closing [`Operation::seal`]; the caller decides when to seal.
pub fn day_ops(snapshot: &Snapshot, first_seq: u64) -> Vec<Operation> {
    let mut seq = first_seq;
    let mut ops = Vec::with_capacity(snapshot.num_observations());
    for (item, obs) in snapshot.items() {
        for o in obs {
            ops.push(Operation::upsert(
                seq,
                o.source,
                item.object,
                item.attr,
                o.value.clone(),
            ));
            seq += 1;
        }
    }
    ops
}

/// The operations that move a ledger holding exactly `prev`'s claims to
/// `next`'s: upserts for new or changed claims, retractions for withdrawn
/// ones. Sequence numbers start at `first_seq`; no seal is appended.
pub fn diff_ops(prev: &Snapshot, next: &Snapshot, first_seq: u64) -> Vec<Operation> {
    let mut seq = first_seq;
    let mut ops = Vec::new();
    for (item, obs) in next.items() {
        for o in obs {
            if prev.value_of(o.source, *item) != Some(&o.value) {
                ops.push(Operation::upsert(
                    seq,
                    o.source,
                    item.object,
                    item.attr,
                    o.value.clone(),
                ));
                seq += 1;
            }
        }
    }
    for (item, obs) in prev.items() {
        for o in obs {
            if next.value_of(o.source, *item).is_none() {
                ops.push(Operation::retract(seq, o.source, item.object, item.attr));
                seq += 1;
            }
        }
    }
    ops
}

/// Deterministic Fisher–Yates shuffle (the offline `rand` stub has no
/// `SliceRandom`). Same seed ⇒ same permutation.
pub fn shuffle<T>(items: &mut [T], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<usize> = (0..100).collect();
        let mut b: Vec<usize> = (0..100).collect();
        shuffle(&mut a, 42);
        shuffle(&mut b, 42);
        assert_eq!(a, b);
        assert_ne!(a, (0..100).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());

        let mut c: Vec<usize> = (0..100).collect();
        shuffle(&mut c, 43);
        assert_ne!(a, c);
    }
}
