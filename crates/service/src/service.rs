//! The [`FusionService`]: ingest-side owner of the ledger, the
//! [`DeltaEngine`], and the publication slot.

use crate::ops::{OpKind, Operation};
use crate::state::{ServedState, ServiceReader, ServiceStats};
use datamodel::{DomainSchema, ItemId, SnapshotBuilder, SourceId, ToleranceContext};
use evaluation::DeltaUsage;
use fusion::delta::AdvanceReport;
use fusion::{method_by_name, DeltaEngine, DeltaPolicy, FusionMethod, FusionOptions};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Tuning of a [`FusionService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Registry names of the methods to materialize on every seal
    /// (default: all sixteen).
    pub methods: Vec<String>,
    /// Fusion options every method runs under.
    pub options: FusionOptions,
    /// The wrapped engine's delta policy (default: exact mode, so served
    /// results are bit-identical to a cold batch run of the sealed day).
    pub policy: DeltaPolicy,
    /// Pin the tolerance context of every seal after the first to the first
    /// sealed day's (default: true). This is what keeps day-over-day deltas
    /// small — a lone value edit dirties only its own item instead of,
    /// through a moved attribute median, every item of the attribute.
    pub pin_tolerance: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            methods: fusion::all_methods()
                .iter()
                .map(|(_, m)| m.name())
                .collect(),
            options: FusionOptions::standard(),
            policy: DeltaPolicy::exact(),
            pin_tolerance: true,
        }
    }
}

/// What applying one [`Operation`] did.
#[derive(Debug, Clone)]
pub enum ApplyOutcome {
    /// The ledger (or, for a seal, the published state) changed.
    Applied,
    /// Exact replay of an already-applied operation: no-op.
    Duplicate,
    /// A newer operation for the same key was already applied: no-op.
    Stale,
    /// The operation is invalid for this service (reason attached): no-op.
    Rejected(String),
    /// A day was sealed, advanced, fused, and published.
    Sealed(SealReport),
}

/// Accounting of one sealed day.
#[derive(Debug, Clone)]
pub struct SealReport {
    /// The day sealed.
    pub day: u32,
    /// Items in the sealed snapshot.
    pub items: usize,
    /// Observations in the sealed snapshot.
    pub observations: usize,
    /// The engine's preparation report for the seal.
    pub advance: AdvanceReport,
    /// Wall clock spent inside the fusion methods.
    pub fuse: Duration,
    /// Wall clock of the whole seal (materialize + advance + fuse +
    /// publish).
    pub total: Duration,
}

/// Outcome counts of one [`FusionService::apply_all`] batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestSummary {
    /// Operations that mutated the ledger.
    pub applied: usize,
    /// Exact replays dropped.
    pub duplicates: usize,
    /// Stale (superseded-seq) arrivals dropped.
    pub stale: usize,
    /// Invalid operations dropped.
    pub rejected: usize,
    /// Days sealed.
    pub seals: usize,
}

/// Why a sequence gate dropped an operation (kept separate from
/// [`ApplyOutcome`] so the gates' `Err` stays word-sized).
#[derive(Debug, Clone, Copy)]
enum GateFail {
    Duplicate,
    Stale,
}

impl From<GateFail> for ApplyOutcome {
    fn from(fail: GateFail) -> Self {
        match fail {
            GateFail::Duplicate => ApplyOutcome::Duplicate,
            GateFail::Stale => ApplyOutcome::Stale,
        }
    }
}

/// In-process online fusion service: one claim ledger + one warm
/// [`DeltaEngine`] per domain, operations in, published [`ServedState`]s
/// out. See the [crate docs](crate) for the operation model and read-path
/// contract.
pub struct FusionService {
    schema: Arc<DomainSchema>,
    config: ServiceConfig,
    methods: Vec<Box<dyn FusionMethod>>,
    engine: DeltaEngine,
    /// Persistent claim ledger; claims of offline sources stay here and are
    /// filtered out at materialization.
    ledger: SnapshotBuilder,
    /// Highest applied sequence number per claim key.
    claim_seq: HashMap<(SourceId, ItemId), u64>,
    /// Highest applied sequence number per source presence key.
    source_seq: HashMap<SourceId, u64>,
    offline: BTreeSet<SourceId>,
    pinned: Option<ToleranceContext>,
    next_day: u32,
    version: u64,
    stats: ServiceStats,
    shared: Arc<RwLock<Arc<ServedState>>>,
}

impl FusionService {
    /// A service over `schema` with the default configuration (all sixteen
    /// methods, exact delta mode, pinned tolerances).
    pub fn new(schema: Arc<DomainSchema>) -> Self {
        Self::with_config(schema, ServiceConfig::default())
    }

    /// A service with an explicit configuration.
    ///
    /// # Panics
    ///
    /// When `config.methods` names a method the registry does not know.
    pub fn with_config(schema: Arc<DomainSchema>, config: ServiceConfig) -> Self {
        let methods: Vec<Box<dyn FusionMethod>> = config
            .methods
            .iter()
            .map(|name| {
                method_by_name(name)
                    .unwrap_or_else(|| panic!("unknown fusion method {name:?} in ServiceConfig"))
            })
            .collect();
        let engine = DeltaEngine::with_policy(config.policy.clone());
        Self {
            schema,
            config,
            methods,
            engine,
            ledger: SnapshotBuilder::new(0),
            claim_seq: HashMap::new(),
            source_seq: HashMap::new(),
            offline: BTreeSet::new(),
            pinned: None,
            next_day: 0,
            version: 0,
            stats: ServiceStats::default(),
            shared: Arc::new(RwLock::new(Arc::new(ServedState::empty()))),
        }
    }

    /// A new reader handle onto the published state. Readers can be cloned
    /// and sent to other threads freely.
    pub fn reader(&self) -> ServiceReader {
        ServiceReader::new(Arc::clone(&self.shared))
    }

    /// The day the next [`OpKind::SealDay`] at or above will seal; days
    /// below this are already sealed (their seals are duplicates).
    pub fn next_day(&self) -> u32 {
        self.next_day
    }

    /// Claims currently in the ledger (including those of offline sources).
    pub fn ledger_observations(&self) -> usize {
        self.ledger.num_observations()
    }

    /// Current cumulative accounting (the published state carries the copy
    /// frozen at its seal).
    pub fn stats(&self) -> ServiceStats {
        self.stats.clone()
    }

    /// Apply one operation; see [`ApplyOutcome`] for what can happen.
    ///
    /// Claim and presence operations resolve out-of-order and duplicated
    /// delivery by sequence number (highest wins, replays are no-ops), so
    /// any interleaving of a producer's per-day operations converges to the
    /// same ledger. `SealDay` is the ordering barrier: it captures whatever
    /// has arrived, and sealing an already-sealed day is a duplicate no-op.
    pub fn apply(&mut self, op: Operation) -> ApplyOutcome {
        let outcome = self.apply_inner(op);
        match &outcome {
            ApplyOutcome::Applied => self.stats.ops_applied += 1,
            ApplyOutcome::Sealed(_) => self.stats.ops_applied += 1,
            ApplyOutcome::Duplicate => self.stats.ops_duplicate += 1,
            ApplyOutcome::Stale => self.stats.ops_stale += 1,
            ApplyOutcome::Rejected(_) => self.stats.ops_rejected += 1,
        }
        outcome
    }

    /// Apply a batch of operations, returning the outcome counts.
    pub fn apply_all(&mut self, ops: impl IntoIterator<Item = Operation>) -> IngestSummary {
        let mut summary = IngestSummary::default();
        for op in ops {
            match self.apply(op) {
                ApplyOutcome::Applied => summary.applied += 1,
                ApplyOutcome::Duplicate => summary.duplicates += 1,
                ApplyOutcome::Stale => summary.stale += 1,
                ApplyOutcome::Rejected(_) => summary.rejected += 1,
                ApplyOutcome::Sealed(_) => {
                    summary.applied += 1;
                    summary.seals += 1;
                }
            }
        }
        summary
    }

    fn apply_inner(&mut self, op: Operation) -> ApplyOutcome {
        match op.kind {
            OpKind::UpsertClaim {
                source,
                object,
                attr,
                value,
            } => {
                if attr.index() >= self.schema.num_attributes() {
                    return ApplyOutcome::Rejected(format!(
                        "attribute {} out of range for schema with {} attributes",
                        attr.index(),
                        self.schema.num_attributes()
                    ));
                }
                match self.claim_gate(source, object, attr, op.seq) {
                    Ok(()) => {
                        self.ledger.add(source, object, attr, value);
                        ApplyOutcome::Applied
                    }
                    Err(fail) => fail.into(),
                }
            }
            OpKind::RetractClaim {
                source,
                object,
                attr,
            } => {
                if attr.index() >= self.schema.num_attributes() {
                    return ApplyOutcome::Rejected(format!(
                        "attribute {} out of range for schema with {} attributes",
                        attr.index(),
                        self.schema.num_attributes()
                    ));
                }
                match self.claim_gate(source, object, attr, op.seq) {
                    Ok(()) => {
                        // Applying a retraction for a claim that never
                        // arrived is still Applied: it records the sequence
                        // number, so the late upsert it supersedes will be
                        // dropped as stale whenever it shows up.
                        self.ledger.remove(source, object, attr);
                        ApplyOutcome::Applied
                    }
                    Err(fail) => fail.into(),
                }
            }
            OpKind::SourceLeave { source } => match self.source_gate(source, op.seq) {
                Ok(()) => {
                    self.offline.insert(source);
                    ApplyOutcome::Applied
                }
                Err(fail) => fail.into(),
            },
            OpKind::SourceRejoin { source } => match self.source_gate(source, op.seq) {
                Ok(()) => {
                    self.offline.remove(&source);
                    ApplyOutcome::Applied
                }
                Err(fail) => fail.into(),
            },
            OpKind::SealDay { day } => {
                if day < self.next_day {
                    return ApplyOutcome::Duplicate;
                }
                ApplyOutcome::Sealed(self.seal(day))
            }
        }
    }

    /// Last-writer-wins gate for one claim key.
    fn claim_gate(
        &mut self,
        source: SourceId,
        object: datamodel::ObjectId,
        attr: datamodel::AttrId,
        seq: u64,
    ) -> Result<(), GateFail> {
        let key = (source, ItemId::new(object, attr));
        match self.claim_seq.get(&key) {
            Some(&applied) if seq == applied => Err(GateFail::Duplicate),
            Some(&applied) if seq < applied => Err(GateFail::Stale),
            _ => {
                self.claim_seq.insert(key, seq);
                Ok(())
            }
        }
    }

    /// Last-writer-wins gate for one source's presence.
    fn source_gate(&mut self, source: SourceId, seq: u64) -> Result<(), GateFail> {
        match self.source_seq.get(&source) {
            Some(&applied) if seq == applied => Err(GateFail::Duplicate),
            Some(&applied) if seq < applied => Err(GateFail::Stale),
            _ => {
                self.source_seq.insert(source, seq);
                Ok(())
            }
        }
    }

    /// Materialize the ledger for `day`, advance the engine, fuse every
    /// configured method, and publish the new [`ServedState`].
    fn seal(&mut self, day: u32) -> SealReport {
        let started = Instant::now();
        self.ledger.set_day(day);
        let snapshot = self
            .ledger
            .materialize(Arc::clone(&self.schema), self.pinned.as_ref(), &self.offline);
        if self.config.pin_tolerance && self.pinned.is_none() {
            self.pinned = Some(snapshot.tolerance().clone());
        }

        let mut seal_usage = DeltaUsage::default();
        let advance = self.engine.advance(&snapshot);
        seal_usage.record_advance(&advance);

        let mut fuse = Duration::ZERO;
        let mut results = Vec::with_capacity(self.methods.len());
        for method in &self.methods {
            let (result, run) = self.engine.run(method.as_ref(), &self.config.options);
            seal_usage.record_run(&run);
            fuse += run.elapsed;
            results.push((method.name(), result));
        }

        self.next_day = day + 1;
        self.version += 1;
        let pre_publish = started.elapsed();
        self.stats.seals += 1;
        self.stats.seal_wall += pre_publish;
        self.stats.fuse_wall += fuse;
        self.stats.delta.merge(&seal_usage);

        let state = ServedState::from_problem(
            day,
            self.version,
            self.engine.problem(),
            &results,
            self.stats.clone(),
        );
        *self.shared.write().expect("served state lock poisoned") = Arc::new(state);

        let total = started.elapsed();
        self.stats.seal_wall += total - pre_publish;
        SealReport {
            day,
            items: snapshot.num_items(),
            observations: snapshot.num_observations(),
            advance,
            fuse,
            total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, ObjectId, Value};

    fn schema() -> Arc<DomainSchema> {
        let mut s = DomainSchema::new("test");
        s.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
        for i in 0..4 {
            s.add_source(format!("s{i}"), false);
        }
        Arc::new(s)
    }

    fn vote_service() -> FusionService {
        FusionService::with_config(
            schema(),
            ServiceConfig {
                methods: vec!["Vote".to_string()],
                ..ServiceConfig::default()
            },
        )
    }

    fn upsert(seq: u64, s: u32, obj: u32, v: f64) -> Operation {
        Operation::upsert(seq, SourceId(s), ObjectId(obj), AttrId(0), Value::number(v))
    }

    #[test]
    fn duplicate_and_stale_claims_are_no_ops() {
        let mut svc = vote_service();
        assert!(matches!(svc.apply(upsert(5, 0, 0, 1.0)), ApplyOutcome::Applied));
        // Exact replay: duplicate.
        assert!(matches!(svc.apply(upsert(5, 0, 0, 1.0)), ApplyOutcome::Duplicate));
        // Lower seq for the same key: stale, value unchanged.
        assert!(matches!(svc.apply(upsert(3, 0, 0, 9.0)), ApplyOutcome::Stale));
        // Higher seq: replaces.
        assert!(matches!(svc.apply(upsert(7, 0, 0, 2.0)), ApplyOutcome::Applied));
        assert_eq!(svc.ledger_observations(), 1);

        let stats = svc.stats();
        assert_eq!(stats.ops_applied, 2);
        assert_eq!(stats.ops_duplicate, 1);
        assert_eq!(stats.ops_stale, 1);
    }

    #[test]
    fn retraction_commutes_with_its_upsert() {
        // Retract (seq 9) arrives before the upsert it supersedes (seq 4):
        // the upsert must be dropped, leaving no claim.
        let mut svc = vote_service();
        svc.apply(upsert(1, 1, 0, 5.0));
        assert!(matches!(
            svc.apply(Operation::retract(9, SourceId(0), ObjectId(0), AttrId(0))),
            ApplyOutcome::Applied
        ));
        assert!(matches!(svc.apply(upsert(4, 0, 0, 1.0)), ApplyOutcome::Stale));
        assert_eq!(svc.ledger_observations(), 1);
    }

    #[test]
    fn out_of_range_attribute_is_rejected() {
        let mut svc = vote_service();
        let bad = Operation::upsert(1, SourceId(0), ObjectId(0), AttrId(7), Value::number(1.0));
        assert!(matches!(svc.apply(bad), ApplyOutcome::Rejected(_)));
        assert_eq!(svc.stats().ops_rejected, 1);
        assert_eq!(svc.ledger_observations(), 0);
    }

    #[test]
    fn seal_publishes_and_resealing_is_duplicate() {
        let mut svc = vote_service();
        let reader = svc.reader();
        assert_eq!(reader.day(), None);
        assert!(reader.answer("Vote", ItemId::new(ObjectId(0), AttrId(0))).is_none());

        // Median ~100 ⇒ tolerance ~1.0: the first three claims bucket
        // together, 150 stands alone.
        for (seq, (s, v)) in [(0u32, 100.0), (1, 100.0), (2, 100.2), (3, 150.0)]
            .into_iter()
            .enumerate()
        {
            svc.apply(upsert(seq as u64, s, 0, v));
        }
        let outcome = svc.apply(Operation::seal(100, 0));
        let ApplyOutcome::Sealed(report) = outcome else {
            panic!("expected Sealed, got {outcome:?}");
        };
        assert_eq!(report.day, 0);
        assert_eq!(report.items, 1);
        assert_eq!(report.observations, 4);
        assert!(report.advance.first_day);

        assert_eq!(reader.day(), Some(0));
        let answer = reader
            .answer("Vote", ItemId::new(ObjectId(0), AttrId(0)))
            .expect("sealed item answers");
        assert_eq!(answer.value, Value::number(100.0));
        assert_eq!(answer.sources.len(), 4);
        assert!(answer.confidence > 0.5 && answer.confidence <= 1.0);
        // Readings come back source-sorted, agreement flags match buckets.
        let agreeing = answer.sources.iter().filter(|r| r.agrees).count();
        assert_eq!(agreeing, 3);
        assert!(answer.sources.windows(2).all(|w| w[0].source < w[1].source));
        assert!(reader.trust("Vote", SourceId(0)).is_some());

        // Sealing day 0 again: duplicate, nothing republished.
        let v = reader.version();
        assert!(matches!(svc.apply(Operation::seal(101, 0)), ApplyOutcome::Duplicate));
        assert_eq!(reader.version(), v);
    }

    #[test]
    fn leave_excludes_claims_until_rejoin() {
        let mut svc = vote_service();
        svc.apply(upsert(0, 0, 0, 1.0));
        svc.apply(upsert(1, 1, 0, 1.0));
        svc.apply(Operation::leave(2, SourceId(1)));
        let ApplyOutcome::Sealed(r0) = svc.apply(Operation::seal(3, 0)) else {
            panic!("seal failed");
        };
        assert_eq!(r0.observations, 1);

        // Rejoin: the ledgered claim reappears on the next seal; the claim
        // itself never had to be re-sent.
        svc.apply(Operation::rejoin(4, SourceId(1)));
        let ApplyOutcome::Sealed(r1) = svc.apply(Operation::seal(5, 1)) else {
            panic!("seal failed");
        };
        assert_eq!(r1.observations, 2);
        assert_eq!(r1.advance.added_sources, 1);

        // A stale leave (lower seq than the applied rejoin) is dropped.
        assert!(matches!(
            svc.apply(Operation::leave(3, SourceId(1))),
            ApplyOutcome::Stale
        ));

        let stats = svc.stats();
        assert_eq!(stats.seals, 2);
        assert_eq!(stats.delta.advances, 2);
        assert!(stats.seal_wall >= stats.fuse_wall);
    }

    #[test]
    fn shuffled_ingest_converges_to_direct_ledger_state() {
        // Same claims, two arrival orders (one with duplicates), same
        // published selection bits.
        let claims: Vec<(u64, u32, u32, f64)> = vec![
            (0, 0, 0, 1.0),
            (1, 1, 0, 1.0),
            (2, 2, 0, 2.0),
            (3, 0, 1, 7.0),
            (4, 1, 1, 7.2),
            (5, 2, 1, 9.0),
        ];
        let mut forward = vote_service();
        for &(seq, s, obj, v) in &claims {
            forward.apply(upsert(seq, s, obj, v));
        }
        forward.apply(Operation::seal(99, 0));

        let mut scrambled = vote_service();
        let mut order: Vec<usize> = vec![3, 0, 5, 2, 2, 4, 1, 0, 5];
        order.reverse();
        for i in order {
            let (seq, s, obj, v) = claims[i];
            scrambled.apply(upsert(seq, s, obj, v));
        }
        scrambled.apply(Operation::seal(99, 0));

        let a = forward.reader().state();
        let b = scrambled.reader().state();
        assert_eq!(a.items(), b.items());
        assert_eq!(a.selection("Vote"), b.selection("Vote"));
        let ta: Vec<u64> = a.trust_vector("Vote").unwrap().iter().map(|t| t.to_bits()).collect();
        let tb: Vec<u64> = b.trust_vector("Vote").unwrap().iter().map(|t| t.to_bits()).collect();
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic(expected = "unknown fusion method")]
    fn unknown_method_name_panics_at_construction() {
        let _ = FusionService::with_config(
            schema(),
            ServiceConfig {
                methods: vec!["NotAMethod".to_string()],
                ..ServiceConfig::default()
            },
        );
    }
}
