//! Shared helpers for the experiment binaries (`exp_*`) and Criterion benches
//! that reproduce every table and figure of the paper.
//!
//! See DESIGN.md for the experiment index (which binary regenerates which
//! table/figure) and EXPERIMENTS.md for paper-vs-measured results.

pub mod compare;
pub mod json;
pub mod report;
pub mod setup;

pub use compare::{
    baseline_usability, fig12_deltas, fig12_regressions, print_fig12_comparison, same_scale,
    Fig12Delta,
};
pub use json::Json;
pub use report::{format_percent, Table};
pub use setup::{long_row_scenario, vs_paper, ExpArgs};
