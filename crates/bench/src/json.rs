//! Minimal JSON emission for machine-readable benchmark artifacts.
//!
//! The workspace's `serde` is an offline marker-trait stub (see
//! `third_party/README.md`), so artifacts like `BENCH_fig12.json` are built
//! with this small value tree instead. It covers exactly what the benchmark
//! reports need: objects with ordered keys, arrays, strings, numbers, and
//! booleans, rendered with stable two-space indentation so the artifact
//! diffs cleanly across PRs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; keys keep their insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn string(s: impl Into<String>) -> Self {
        Json::String(s.into())
    }

    /// The value of `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Element `i`, if this is an array with at least `i + 1` elements.
    ///
    /// Like [`get`](Self::get) for objects, this is the fallible access the
    /// comparison helpers use on parsed (possibly hand-edited) artifacts —
    /// out-of-range or wrong-typed access yields `None`, never a panic.
    pub fn index(&self, i: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(i),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a JSON document (the subset this module emits: objects, arrays,
    /// strings with the escapes [`render`](Self::render) produces, finite
    /// numbers, booleans, `null`). Used by the benchmark comparison helpers
    /// to read checked-in artifacts like `BENCH_fig12.json` back.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// An integer value (exact for |n| ≤ 2⁵³).
    pub fn int(n: usize) -> Self {
        Json::Number(n as f64)
    }

    /// An empty object builder.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Append a field to an object. On a non-object the call is a no-op and
    /// returns `self` unchanged: builder chains always start from
    /// [`Json::object`], and parsed documents are navigated with the
    /// fallible [`get`](Self::get)/[`index`](Self::index) accessors — a
    /// malformed artifact must surface as a clean diagnostic, not a panic
    /// deep inside a builder chain.
    pub fn field(mut self, key: &str, value: Json) -> Self {
        if let Json::Object(fields) = &mut self {
            fields.push((key.to_string(), value));
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(n) if n.is_finite() => {
                // Integral values print without a fraction; everything else
                // uses the shortest round-trip form.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Number(_) => out.push_str("null"),
            Json::String(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{key}\": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

// Recursive-descent parser over the emitted subset.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string_literal()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string_literal()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string_literal(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0b1100_0000 == 0b1000_0000)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Number)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::object()
            .field("name", Json::string("fig12 \"quoted\"\n"))
            .field("ok", Json::Bool(true))
            .field("none", Json::Null)
            .field("count", Json::int(3))
            .field("ratio", Json::Number(-0.125e-2))
            .field("items", Json::Array(vec![Json::int(1), Json::Null]))
            .field("empty", Json::object())
            .field("empty_list", Json::Array(vec![]));
        let parsed = Json::parse(&doc.render()).expect("round trip");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse("{\"a\": [1, 2.5], \"b\": {\"c\": \"x\"}}").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(doc.get("a").unwrap().as_f64().is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn renders_nested_structure() {
        let doc = Json::object()
            .field("name", Json::string("fig12"))
            .field("ok", Json::Bool(true))
            .field("count", Json::int(3))
            .field("ratio", Json::Number(0.125))
            .field("items", Json::Array(vec![Json::int(1), Json::Null]))
            .field("empty", Json::object());
        let text = doc.render();
        assert!(text.starts_with("{\n"));
        assert!(text.contains("\"name\": \"fig12\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.125"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
        // Every line is valid: no trailing commas before closers.
        assert!(!text.contains(",\n}") && !text.contains(",\n]"));
    }

    #[test]
    fn escapes_strings_and_hides_non_finite_numbers() {
        let doc = Json::Array(vec![
            Json::string("a\"b\\c\nd\te"),
            Json::Number(f64::NAN),
            Json::Number(f64::INFINITY),
        ]);
        let text = doc.render();
        assert!(text.contains("\"a\\\"b\\\\c\\nd\\te\""));
        assert_eq!(text.matches("null").count(), 2);
    }

    #[test]
    fn field_on_non_object_is_a_noop() {
        assert_eq!(Json::Array(vec![]).field("x", Json::Null), Json::Array(vec![]));
        assert_eq!(Json::Null.field("x", Json::int(1)), Json::Null);
        assert_eq!(
            Json::string("s").field("x", Json::int(1)),
            Json::string("s")
        );
    }

    #[test]
    fn index_is_fallible_on_every_shape() {
        let doc = Json::parse("{\"a\": [1, 2.5]}").unwrap();
        let a = doc.get("a").unwrap();
        assert_eq!(a.index(1).and_then(Json::as_f64), Some(2.5));
        assert!(a.index(2).is_none());
        assert!(doc.index(0).is_none(), "index on an object is None");
        assert!(Json::Null.index(0).is_none());
        assert_eq!(doc.as_object().map(<[_]>::len), Some(1));
        assert!(a.as_object().is_none());
    }
}
