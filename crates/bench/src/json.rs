//! Minimal JSON emission for machine-readable benchmark artifacts.
//!
//! The workspace's `serde` is an offline marker-trait stub (see
//! `third_party/README.md`), so artifacts like `BENCH_fig12.json` are built
//! with this small value tree instead. It covers exactly what the benchmark
//! reports need: objects with ordered keys, arrays, strings, numbers, and
//! booleans, rendered with stable two-space indentation so the artifact
//! diffs cleanly across PRs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Number(f64),
    /// A string (escaped on render).
    String(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; keys keep their insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn string(s: impl Into<String>) -> Self {
        Json::String(s.into())
    }

    /// An integer value (exact for |n| ≤ 2⁵³).
    pub fn int(n: usize) -> Self {
        Json::Number(n as f64)
    }

    /// An empty object builder.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Append a field to an object (panics on non-objects — builder misuse).
    pub fn field(mut self, key: &str, value: Json) -> Self {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Number(n) if n.is_finite() => {
                // Integral values print without a fraction; everything else
                // uses the shortest round-trip form.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Number(_) => out.push_str("null"),
            Json::String(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{key}\": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let doc = Json::object()
            .field("name", Json::string("fig12"))
            .field("ok", Json::Bool(true))
            .field("count", Json::int(3))
            .field("ratio", Json::Number(0.125))
            .field("items", Json::Array(vec![Json::int(1), Json::Null]))
            .field("empty", Json::object());
        let text = doc.render();
        assert!(text.starts_with("{\n"));
        assert!(text.contains("\"name\": \"fig12\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"ratio\": 0.125"));
        assert!(text.contains("\"empty\": {}"));
        assert!(text.ends_with("}\n"));
        // Every line is valid: no trailing commas before closers.
        assert!(!text.contains(",\n}") && !text.contains(",\n]"));
    }

    #[test]
    fn escapes_strings_and_hides_non_finite_numbers() {
        let doc = Json::Array(vec![
            Json::string("a\"b\\c\nd\te"),
            Json::Number(f64::NAN),
            Json::Number(f64::INFINITY),
        ]);
        let text = doc.render();
        assert!(text.contains("\"a\\\"b\\\\c\\nd\\te\""));
        assert_eq!(text.matches("null").count(), 2);
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = Json::Array(vec![]).field("x", Json::Null);
    }
}
