//! Perf-trajectory comparison of Figure-12 artifacts.
//!
//! `exp_fig12_efficiency --compare BENCH_fig12.json` diffs a fresh run
//! against the checked-in trajectory point and prints per-method speedups,
//! so a PR can see perf drift without manual JSON reading. Two artifacts are
//! only comparable when they come from the same machine and the same
//! `--scale/--days/--seed`; the helper checks the scale parameters and warns
//! loudly when they differ.

use crate::json::Json;
use crate::report::Table;

/// One method's timing in both trajectory points.
#[derive(Debug, Clone)]
pub struct Fig12Delta {
    /// Domain the method ran on (`"stock"` / `"flight"`).
    pub domain: String,
    /// Method name (paper spelling).
    pub method: String,
    /// Per-method wall clock in the baseline artifact, seconds.
    pub baseline_s: f64,
    /// Per-method wall clock in the fresh run, seconds.
    pub fresh_s: f64,
    /// Precision in the baseline artifact (must match the fresh run for the
    /// comparison to be like-for-like).
    pub baseline_precision: f64,
    /// Precision in the fresh run.
    pub fresh_precision: f64,
}

impl Fig12Delta {
    /// How many times faster the fresh run is (`> 1` = improvement).
    pub fn speedup(&self) -> f64 {
        if self.fresh_s <= 0.0 {
            f64::INFINITY
        } else {
            self.baseline_s / self.fresh_s
        }
    }

    /// Whether the two runs computed the same result (fusion is
    /// deterministic, so any drift means the comparison is not
    /// like-for-like).
    pub fn same_result(&self) -> bool {
        self.baseline_precision == self.fresh_precision
    }
}

fn methods_of(domain: &Json) -> Vec<(&str, f64, f64)> {
    domain
        .get("methods")
        .and_then(Json::as_array)
        .map(|rows| {
            rows.iter()
                .filter_map(|row| {
                    Some((
                        row.get("method")?.as_str()?,
                        row.get("elapsed_s")?.as_f64()?,
                        row.get("precision")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Match every (domain, method) timing of `fresh` against `baseline`.
/// Methods present in only one artifact are skipped (the registry may grow
/// between PRs); an empty result means the artifacts share nothing.
pub fn fig12_deltas(baseline: &Json, fresh: &Json) -> Vec<Fig12Delta> {
    let empty = Vec::new();
    let baseline_domains = baseline
        .get("domains")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let fresh_domains = fresh
        .get("domains")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let mut deltas = Vec::new();
    for fresh_domain in fresh_domains {
        let Some(name) = fresh_domain.get("domain").and_then(Json::as_str) else {
            continue;
        };
        let Some(base_domain) = baseline_domains
            .iter()
            .find(|d| d.get("domain").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        let base_methods = methods_of(base_domain);
        for (method, fresh_s, fresh_precision) in methods_of(fresh_domain) {
            let Some(&(_, baseline_s, baseline_precision)) =
                base_methods.iter().find(|(m, _, _)| *m == method)
            else {
                continue;
            };
            deltas.push(Fig12Delta {
                domain: name.to_string(),
                method: method.to_string(),
                baseline_s,
                fresh_s,
                baseline_precision,
                fresh_precision,
            });
        }
    }
    deltas
}

/// Whether `baseline` has the shape a Figure-12 comparison needs: an object
/// with a `domains` array containing at least one domain that has a string
/// `domain` name and at least one complete method row (`method`,
/// `elapsed_s`, `precision`).
///
/// `exp_fig12_efficiency --fail-on-regression` runs this **before** the
/// expensive experiment: a baseline that parses but can never produce an
/// overlapping row (truncated by hand, wrong file, schema drift) must fail
/// the gate with a diagnostic instead of letting an empty diff pass it
/// silently.
pub fn baseline_usability(baseline: &Json) -> Result<(), String> {
    let Some(domains) = baseline.get("domains") else {
        return Err("no \"domains\" field (is this a fig12 artifact?)".to_string());
    };
    let Some(domains) = domains.as_array() else {
        return Err("\"domains\" is not an array".to_string());
    };
    if domains.is_empty() {
        return Err("\"domains\" is empty".to_string());
    }
    let usable_rows: usize = domains
        .iter()
        .filter(|d| d.get("domain").and_then(Json::as_str).is_some())
        .map(|d| methods_of(d).len())
        .sum();
    if usable_rows == 0 {
        return Err(
            "no complete (domain, method) row: every method row needs \
             \"method\", \"elapsed_s\", and \"precision\""
                .to_string(),
        );
    }
    Ok(())
}

/// True when the two artifacts were produced with the same scale parameters
/// (seed, scale, days) — the precondition for timings to be comparable.
pub fn same_scale(baseline: &Json, fresh: &Json) -> bool {
    ["seed", "scale", "days"].iter().all(|key| {
        baseline.get(key).and_then(Json::as_f64) == fresh.get(key).and_then(Json::as_f64)
    })
}

/// Speedup floor below which a timing counts as regressed by more than
/// `threshold_pct` percent (e.g. 5.0 → everything slower than 1.05× the
/// baseline time).
fn regression_floor(threshold_pct: f64) -> f64 {
    1.0 / (1.0 + threshold_pct.max(0.0) / 100.0)
}

/// The (domain, method) timings of `fresh` that regressed by more than
/// `threshold_pct` percent against `baseline`. This is the decision
/// procedure behind `exp_fig12_efficiency --fail-on-regression PCT`: the
/// caller exits non-zero when the result is non-empty.
pub fn fig12_regressions(baseline: &Json, fresh: &Json, threshold_pct: f64) -> Vec<Fig12Delta> {
    let floor = regression_floor(threshold_pct);
    fig12_deltas(baseline, fresh)
        .into_iter()
        .filter(|d| d.speedup() < floor)
        .collect()
}

/// Render the per-method speedup table plus per-domain totals.
pub fn print_fig12_comparison(baseline: &Json, fresh: &Json) {
    if !same_scale(baseline, fresh) {
        println!(
            "WARNING: baseline and fresh artifacts use different --seed/--scale/--days;\n\
             timings are NOT comparable.\n"
        );
    }
    let deltas = fig12_deltas(baseline, fresh);
    if deltas.is_empty() {
        println!("No overlapping (domain, method) rows between the two artifacts.");
        return;
    }
    let mut table = Table::new(
        "Figure-12 trajectory: fresh run vs baseline artifact",
        &["domain", "method", "baseline (s)", "fresh (s)", "speedup", "note"],
    );
    let mut domains: Vec<&str> = deltas.iter().map(|d| d.domain.as_str()).collect();
    domains.dedup();
    for domain in domains {
        let rows: Vec<&Fig12Delta> = deltas.iter().filter(|d| d.domain == domain).collect();
        for d in &rows {
            table.row(&[
                d.domain.clone(),
                d.method.clone(),
                format!("{:.4}", d.baseline_s),
                format!("{:.4}", d.fresh_s),
                format!("{:.2}x", d.speedup()),
                if d.same_result() {
                    String::new()
                } else {
                    "PRECISION DRIFT".to_string()
                },
            ]);
        }
        let base_total: f64 = rows.iter().map(|d| d.baseline_s).sum();
        let fresh_total: f64 = rows.iter().map(|d| d.fresh_s).sum();
        table.row(&[
            domain.to_string(),
            "TOTAL".to_string(),
            format!("{base_total:.4}"),
            format!("{fresh_total:.4}"),
            format!(
                "{:.2}x",
                if fresh_total > 0.0 {
                    base_total / fresh_total
                } else {
                    f64::INFINITY
                }
            ),
            String::new(),
        ]);
    }
    table.print();
    let floor = regression_floor(5.0);
    let regressions: Vec<&Fig12Delta> = deltas.iter().filter(|d| d.speedup() < floor).collect();
    if regressions.is_empty() {
        println!("No per-method regressions beyond the 5% noise floor.");
    } else {
        for d in regressions {
            println!(
                "REGRESSION: {}/{} slowed {:.4} s -> {:.4} s ({:.2}x)",
                d.domain,
                d.method,
                d.baseline_s,
                d.fresh_s,
                d.speedup()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(scale: f64, elapsed: f64, precision: f64) -> Json {
        Json::object()
            .field("seed", Json::int(2012))
            .field("scale", Json::Number(scale))
            .field("days", Json::Number(0.25))
            .field(
                "domains",
                Json::Array(vec![Json::object()
                    .field("domain", Json::string("stock"))
                    .field(
                        "methods",
                        Json::Array(vec![Json::object()
                            .field("method", Json::string("Vote"))
                            .field("elapsed_s", Json::Number(elapsed))
                            .field("precision", Json::Number(precision))]),
                    )]),
            )
    }

    #[test]
    fn deltas_pair_up_by_domain_and_method() {
        let baseline = artifact(0.25, 0.010, 0.9);
        let fresh = artifact(0.25, 0.005, 0.9);
        let deltas = fig12_deltas(&baseline, &fresh);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].method, "Vote");
        assert!((deltas[0].speedup() - 2.0).abs() < 1e-12);
        assert!(deltas[0].same_result());
        assert!(same_scale(&baseline, &fresh));
    }

    #[test]
    fn scale_mismatch_and_result_drift_are_flagged() {
        let baseline = artifact(0.25, 0.010, 0.9);
        let fresh = artifact(0.5, 0.010, 0.8);
        assert!(!same_scale(&baseline, &fresh));
        let deltas = fig12_deltas(&baseline, &fresh);
        assert!(!deltas[0].same_result());
    }

    #[test]
    fn regressions_respect_the_threshold() {
        let baseline = artifact(0.25, 0.010, 0.9);
        // 30% slower than baseline.
        let slower = artifact(0.25, 0.013, 0.9);
        // Below a 50% threshold nothing is flagged; above 20% it is.
        assert!(fig12_regressions(&baseline, &slower, 50.0).is_empty());
        let flagged = fig12_regressions(&baseline, &slower, 20.0);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].method, "Vote");
        assert!(flagged[0].speedup() < 1.0);
        // Just inside the threshold (19% slower at a 20% gate) passes.
        let just_inside = artifact(0.25, 0.0119, 0.9);
        assert!(fig12_regressions(&baseline, &just_inside, 20.0).is_empty());
        // A faster fresh run is never a regression, whatever the threshold.
        let faster = artifact(0.25, 0.005, 0.9);
        assert!(fig12_regressions(&baseline, &faster, 0.0).is_empty());
        // A negative threshold behaves like zero tolerance.
        assert_eq!(fig12_regressions(&baseline, &slower, -3.0).len(), 1);
    }

    #[test]
    fn missing_methods_are_skipped_not_fatal() {
        let baseline = artifact(0.25, 0.010, 0.9);
        let empty = Json::object().field("domains", Json::Array(vec![]));
        assert!(fig12_deltas(&baseline, &empty).is_empty());
        assert!(fig12_deltas(&empty, &baseline).is_empty());
    }

    #[test]
    fn usability_accepts_real_artifacts_and_names_whats_wrong() {
        assert!(baseline_usability(&artifact(0.25, 0.010, 0.9)).is_ok());

        // Parsed-but-wrong shapes all fail with a pointed diagnostic.
        let err = baseline_usability(&Json::object()).unwrap_err();
        assert!(err.contains("domains"), "{err}");
        let err = baseline_usability(&Json::Null).unwrap_err();
        assert!(err.contains("domains"), "{err}");
        let err =
            baseline_usability(&Json::object().field("domains", Json::int(3))).unwrap_err();
        assert!(err.contains("not an array"), "{err}");
        let err = baseline_usability(&Json::object().field("domains", Json::Array(vec![])))
            .unwrap_err();
        assert!(err.contains("empty"), "{err}");

        // A domain whose method rows are incomplete has no usable rows.
        let incomplete = Json::object().field(
            "domains",
            Json::Array(vec![Json::object()
                .field("domain", Json::string("stock"))
                .field(
                    "methods",
                    Json::Array(vec![Json::object().field("method", Json::string("Vote"))]),
                )]),
        );
        let err = baseline_usability(&incomplete).unwrap_err();
        assert!(err.contains("elapsed_s"), "{err}");
    }

    #[test]
    fn parses_the_checked_in_artifact_shape() {
        let rendered = artifact(0.25, 0.010, 0.9).render();
        let parsed = Json::parse(&rendered).unwrap();
        assert_eq!(fig12_deltas(&parsed, &parsed).len(), 1);
    }
}
