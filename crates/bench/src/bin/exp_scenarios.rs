//! Adversarial & heavy-tail scenario suite — golden-metrics tables.
//!
//! Every named scenario (`datagen::scenario`) builds a deterministic seeded
//! world and renders one golden-metrics table: per-method precision against
//! the generator truth plus the copy-detection hit/false-positive rates
//! against the planted copy edges. Modes:
//!
//! * default — print every table (honouring `--scenario`, `--scale`,
//!   `--days`, `--seed` overrides for exploration);
//! * `--check` — compare each table bit-for-bit against the checked-in file
//!   under `--golden-dir` (default `tests/golden`) and exit 1 on any diff —
//!   the regression-gate form CI runs;
//! * `--bless` — rewrite the checked-in files from this run (after an
//!   intentional behaviour change; the diff then shows up in review).
//!
//! `--check`/`--bless` refuse explicit `--seed`/`--scale`/`--days`
//! overrides: golden tables are only meaningful at the golden seed and the
//! scenarios' CI-sized default scales.

use bench::ExpArgs;
use datagen::scenario::SCENARIO_NAMES;
use evaluation::{evaluate_scenario_day, render_golden_table};
use std::path::Path;

fn main() {
    let args = ExpArgs::from_env();
    let golden_mode = args.check || args.bless;
    if args.check && args.bless {
        eprintln!("FAIL: --check and --bless are mutually exclusive");
        std::process::exit(2);
    }
    if golden_mode && args.scale_overridden() {
        eprintln!(
            "FAIL: --check/--bless run at the golden seed and scale; \
             drop --seed/--scale/--days"
        );
        std::process::exit(2);
    }

    let names: Vec<&str> = match &args.scenario {
        Some(name) => match SCENARIO_NAMES.iter().find(|n| **n == name.as_str()) {
            Some(n) => vec![*n],
            None => {
                eprintln!(
                    "FAIL: unknown scenario {name:?}; known: {}",
                    SCENARIO_NAMES.join(", ")
                );
                std::process::exit(2);
            }
        },
        None => SCENARIO_NAMES.to_vec(),
    };

    let mut diffs = 0usize;
    for name in names {
        let scenario = args
            .scenario(name)
            .expect("names are filtered against the registry");
        let world = scenario.build();
        let day = world.domain.collection.reference_day();
        let outcome = evaluate_scenario_day(name, &day.snapshot, &day.truth, &world.true_edges);
        let table = render_golden_table(&outcome);
        let path = Path::new(&args.golden_dir).join(format!("{name}.txt"));

        if args.bless {
            if let Err(e) = std::fs::write(&path, &table) {
                eprintln!("FAIL: could not write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("Blessed {}", path.display());
        } else if args.check {
            match std::fs::read_to_string(&path) {
                Ok(golden) if golden == table => {
                    println!("OK {name}");
                }
                Ok(golden) => {
                    diffs += 1;
                    eprintln!("DIFF {name}: fresh run diverged from {}", path.display());
                    for (line_no, (got, want)) in
                        table.lines().zip(golden.lines()).enumerate()
                    {
                        if got != want {
                            eprintln!("  line {}:", line_no + 1);
                            eprintln!("    golden: {want}");
                            eprintln!("    fresh:  {got}");
                        }
                    }
                    if table.lines().count() != golden.lines().count() {
                        eprintln!(
                            "  line counts differ: golden {}, fresh {}",
                            golden.lines().count(),
                            table.lines().count()
                        );
                    }
                }
                Err(e) => {
                    diffs += 1;
                    eprintln!(
                        "DIFF {name}: could not read {}: {e} (run --bless to create it)",
                        path.display()
                    );
                }
            }
        } else {
            println!("{table}");
        }
    }

    if diffs > 0 {
        eprintln!(
            "\nFAIL: {diffs} scenario golden table(s) diverged. If the change is \
             intentional, regenerate with: cargo run --release --bin exp_scenarios -- --bless"
        );
        std::process::exit(1);
    }
}
