//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. the tolerance factor α of Equation 3 (how forgiving value matching is),
//! 2. the `n` false-value assumption of the ACCU family,
//! 3. the similarity weight ρ of ACCUSIM,
//! 4. re-detecting copying every round vs. using the known copy groups
//!    (ACCUCOPY).
//!
//! None of these are separate tables in the paper, but they are the knobs the
//! paper's Section-5 discussion turns on (tolerance/bucketing, the uniform
//! false-value assumption that POPACCU removes, value similarity, and the
//! cost/robustness of copy detection).

use bench::{ExpArgs, Table};
use copydetect::known_copying;
use datagen::generate;
use datamodel::TolerancePolicy;
use evaluation::{precision_recall, EvaluationContext};
use fusion::methods::{Accu, AccuCopy};
use fusion::{FusionMethod, FusionOptions, FusionProblem, FusionScratch};

fn main() {
    let args = ExpArgs::from_env();
    println!(
        "[Ablations] scale={} days={} seed={}\n",
        args.scale, args.days, args.seed
    );

    tolerance_ablation(&args);
    accu_parameter_ablation(&args);
    copy_knowledge_ablation(&args);
}

/// Ablation 1 — tolerance factor α: stricter matching inflates the apparent
/// inconsistency and deflates dominant-value precision.
fn tolerance_ablation(args: &ExpArgs) {
    let mut table = Table::new(
        "Ablation 1: tolerance factor α (stock)",
        &["alpha", "conflicting items", "mean #values", "dominant precision"],
    );
    for alpha in [0.0, 0.001, 0.01, 0.05] {
        let mut config = datagen::stock_config(args.seed).scaled(args.scale, args.days);
        // Regenerate, then re-bucket the reference snapshot under the ablated
        // tolerance policy by rebuilding it from its own observations.
        config.seed = args.seed;
        let domain = generate(&config);
        let day = domain.collection.reference_day();
        let policy = TolerancePolicy {
            alpha,
            ..TolerancePolicy::default()
        };
        let rebuilt = rebuild_with_policy(&day.snapshot, policy);
        let inconsistency = profiling::snapshot_inconsistency(&rebuilt);
        let precision = profiling::dominant_value_precision(&rebuilt, &day.gold);
        table.row(&[
            format!("{alpha}"),
            format!("{:.1}%", inconsistency.fraction_conflicting * 100.0),
            format!("{:.2}", inconsistency.mean_num_values),
            format!("{precision:.3}"),
        ]);
    }
    table.print();
}

fn rebuild_with_policy(
    snapshot: &datamodel::Snapshot,
    policy: TolerancePolicy,
) -> datamodel::Snapshot {
    let mut builder = datamodel::SnapshotBuilder::new(snapshot.day()).with_policy(policy);
    for (item, obs) in snapshot.items() {
        for o in obs {
            builder.add(o.source, item.object, item.attr, o.value.clone());
        }
    }
    builder.build(snapshot.schema_arc())
}

/// 2./3. ACCU family parameters: the assumed number of false values and the
/// similarity weight.
fn accu_parameter_ablation(args: &ExpArgs) {
    let domain = generate(&datagen::stock_config(args.seed).scaled(args.scale, args.days));
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);

    let mut table = Table::new(
        "Ablation 2: ACCUSIM parameters (stock)",
        &["n false values", "similarity weight", "precision"],
    );
    // Reuse one scratch arena across the 9 configurations instead of
    // reallocating per run; results must not depend on the entry point.
    let mut scratch = FusionScratch::new();
    let mut checked = false;
    for n in [2.0, 10.0, 100.0] {
        for rho in [0.0, 0.5, 1.0] {
            let method = Accu {
                n_false_values: n,
                rho,
                ..Accu::accusim()
            };
            let result =
                method.run_with_scratch(&context.problem, &FusionOptions::standard(), &mut scratch);
            if !checked {
                checked = true;
                debug_assert_eq!(
                    result.selection,
                    method.run(&context.problem, &FusionOptions::standard()).selection,
                    "scratch-backed AccuSim must match the plain run"
                );
            }
            let pr = precision_recall(&day.snapshot, &day.gold, &result);
            table.row(&[
                format!("{n}"),
                format!("{rho}"),
                format!("{:.3}", pr.precision),
            ]);
        }
    }
    table.print();
}

/// 4. ACCUCOPY with detected vs. known copying (flight).
fn copy_knowledge_ablation(args: &ExpArgs) {
    let domain = generate(&datagen::flight_config(args.seed).scaled(args.scale, args.days));
    let day = domain.collection.reference_day();
    let problem = FusionProblem::from_snapshot(&day.snapshot);
    let mut table = Table::new(
        "Ablation 3: AccuCopy copy knowledge (flight)",
        &["copy knowledge", "precision", "time (s)"],
    );

    // All three variants share one scratch arena; the selections must be
    // identical to the plain `run` path (asserted on the cheapest variant).
    let mut scratch = FusionScratch::new();
    let detected =
        AccuCopy::default().run_with_scratch(&problem, &FusionOptions::standard(), &mut scratch);
    let pr = precision_recall(&day.snapshot, &day.gold, &detected);
    table.row(&[
        "re-detected every round".to_string(),
        format!("{:.3}", pr.precision),
        format!("{:.2}", detected.elapsed.as_secs_f64()),
    ]);

    let oracle = known_copying(day.snapshot.schema());
    let dense = evaluation::copy_report_to_dense(&oracle, &problem);
    let with_known = AccuCopy::default().run_with_scratch(
        &problem,
        &FusionOptions::standard().with_known_copying(dense),
        &mut scratch,
    );
    let pr_known = precision_recall(&day.snapshot, &day.gold, &with_known);
    table.row(&[
        "known copy groups (Table 5)".to_string(),
        format!("{:.3}", pr_known.precision),
        format!("{:.2}", with_known.elapsed.as_secs_f64()),
    ]);

    let oblivious =
        Accu::accuformat().run_with_scratch(&problem, &FusionOptions::standard(), &mut scratch);
    debug_assert_eq!(
        oblivious.selection,
        Accu::accuformat().run(&problem, &FusionOptions::standard()).selection,
        "scratch-backed AccuFormat must match the plain run"
    );
    let pr_obl = precision_recall(&day.snapshot, &day.gold, &oblivious);
    table.row(&[
        "ignored (AccuFormat)".to_string(),
        format!("{:.3}", pr_obl.precision),
        format!("{:.2}", oblivious.elapsed.as_secs_f64()),
    ]);
    table.print();
}
