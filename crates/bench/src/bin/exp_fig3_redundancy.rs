//! Figure 3 — data-item redundancy: percentage of data items whose redundancy
//! is above x, plus the mean redundancy quoted in the paper's text.

use bench::{format_percent, ExpArgs, Table};
use profiling::{item_redundancy_cdf, redundancy_summary};

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 3");
    let stock_cdf = item_redundancy_cdf(stock.reference_snapshot());
    let flight_cdf = item_redundancy_cdf(flight.reference_snapshot());
    let mut table = Table::new(
        "Figure 3: Data-item redundancy (fraction of items with redundancy >= x)",
        &["x", "stock", "flight"],
    );
    for (s, f) in stock_cdf.iter().zip(&flight_cdf) {
        table.row(&[
            format!("{:.1}", s.threshold),
            format_percent(s.fraction_above),
            format_percent(f.fraction_above),
        ]);
    }
    table.print();

    let stock_summary = redundancy_summary(stock.reference_snapshot());
    let flight_summary = redundancy_summary(flight.reference_snapshot());
    println!(
        "Mean item redundancy: stock {:.2} (paper 0.66), flight {:.2} (paper 0.32)",
        stock_summary.mean_item_redundancy, flight_summary.mean_item_redundancy
    );
    println!(
        "Items with redundancy > 0.5: stock {} (paper 64%), flight {} (paper 29%)",
        format_percent(stock_summary.items_above_half),
        format_percent(flight_summary.items_above_half)
    );
}
