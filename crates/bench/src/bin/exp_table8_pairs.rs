//! Table 8 — comparison of fusion-method pairs: errors fixed and introduced
//! by the advanced method relative to the basic one, and the net precision
//! change.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{compare_methods, EvaluationContext, PAPER_METHOD_PAIRS};

fn report(domain: &GeneratedDomain, table: &mut Table) {
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    for (basic, advanced) in PAPER_METHOD_PAIRS {
        if let Some(cmp) = compare_methods(&context, basic, advanced) {
            table.row(&[
                domain.config.domain.clone(),
                cmp.basic.clone(),
                cmp.advanced.clone(),
                format!("{}", cmp.fixed_errors),
                format!("{}", cmp.new_errors),
                format!("{:+.3}", cmp.delta_precision),
            ]);
        }
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 8");
    let mut table = Table::new(
        "Table 8: comparison of fusion methods (basic vs. advanced)",
        &["domain", "basic", "advanced", "#fixed errs", "#new errs", "dPrec"],
    );
    report(&stock, &mut table);
    report(&flight, &mut table);
    table.print();
    println!("Paper highlights: PooledInvest fixes far more than it breaks over Invest (+.09 / +.167);");
    println!("AccuSimAttr improves over AccuSim on Stock (+.016) but not on Flight (-.011);");
    println!("AccuCopy improves over AccuFormatAttr on Flight (+.11) but hurts on Stock (-.038).");
}
