//! Figure 10 — precision vs. dominance factor: VOTE against the best advanced
//! method in each domain (AccuFormatAttr for Stock, AccuCopy for Flight).

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{precision_by_dominance, EvaluationContext};
use fusion::{method_by_name, FusionOptions, FusionScratch};

fn report(domain: &GeneratedDomain, advanced: &str) {
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    let options = FusionOptions::standard();
    // One scratch arena amortised across both methods; the allocation-free
    // path must stay output-identical to the plain entry point.
    let mut scratch = FusionScratch::new();
    let vote_method = method_by_name("Vote").unwrap();
    let vote = vote_method.run_with_scratch(&context.problem, &options, &mut scratch);
    debug_assert_eq!(
        vote.selection,
        vote_method.run(&context.problem, &options).selection,
        "scratch-backed Vote must match the plain run"
    );
    let adv = method_by_name(advanced).unwrap().run_with_scratch(
        &context.problem,
        &options,
        &mut scratch,
    );
    let vote_points = precision_by_dominance(&context, &vote);
    let adv_points = precision_by_dominance(&context, &adv);

    let mut table = Table::new(
        format!(
            "Figure 10 ({}): precision vs dominance factor (Vote vs {advanced})",
            domain.config.domain
        ),
        &["dominance bin", "items", "Vote", advanced],
    );
    for (v, a) in vote_points.iter().zip(&adv_points) {
        table.row(&[
            format!("[{:.1}, {:.1})", v.factor_low, v.factor_low + 0.1),
            format!("{}", v.items),
            format!("{:.2}", v.precision),
            format!("{:.2}", a.precision),
        ]);
    }
    table.print();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 10");
    report(&stock, "AccuFormatAttr");
    report(&flight, "AccuCopy");
    println!("Paper: the advanced methods' gains concentrate on items with dominance factor");
    println!("       below .5 (Stock) and in [.4, .7) (Flight), where copied wrong values dominate.");
}
