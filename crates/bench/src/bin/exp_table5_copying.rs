//! Table 5 — potential copying between sources: commonality statistics of the
//! planted copy groups, the effect of removing copiers on the precision of
//! dominant values, and what the Bayesian detector recovers.

use bench::{ExpArgs, Table};
use copydetect::CopyDetector;
use datagen::GeneratedDomain;
use datamodel::SourceId;
use profiling::{all_copy_group_stats, dominant_value_precision};

fn report(domain: &GeneratedDomain, table: &mut Table) {
    let day = domain.collection.reference_day();
    let stats = all_copy_group_stats(&day.snapshot, &day.gold, &domain.copy_groups);
    for s in &stats {
        table.row(&[
            domain.config.domain.clone(),
            format!("{}", s.size),
            format!("{:.2}", s.schema_commonality),
            format!("{:.2}", s.object_commonality),
            format!("{:.2}", s.value_commonality),
            format!("{:.2}", s.average_accuracy),
        ]);
    }
}

fn copier_removal(domain: &GeneratedDomain) -> (f64, f64) {
    let day = domain.collection.reference_day();
    let before = dominant_value_precision(&day.snapshot, &day.gold);
    let copiers: Vec<SourceId> = domain
        .copy_groups
        .iter()
        .flat_map(|g| g[1..].to_vec())
        .collect();
    let reduced = day.snapshot.remove_sources(&copiers);
    (before, dominant_value_precision(&reduced, &day.gold))
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 5");
    let mut table = Table::new(
        "Table 5: potential copying between sources (planted groups)",
        &["domain", "size", "schema sim", "object sim", "value sim", "avg accu"],
    );
    report(&stock, &mut table);
    report(&flight, &mut table);
    table.print();
    println!("Paper (stock): groups of 11 (.92 accuracy) and 2 (.75).");
    println!("Paper (flight): groups of 5 (.71), 4 (.53), 3 (.92), 2 (.93), 2 (.61).\n");

    let (stock_before, stock_after) = copier_removal(&stock);
    let (flight_before, flight_after) = copier_removal(&flight);
    println!(
        "Removing copiers changes dominant-value precision: stock {stock_before:.3} -> {stock_after:.3} (paper .908 -> .923)"
    );
    println!(
        "                                                   flight {flight_before:.3} -> {flight_after:.3} (paper .864 -> .927)\n"
    );

    for domain in [&stock, &flight] {
        let day = domain.collection.reference_day();
        let detected = CopyDetector::new()
            .detect(&day.snapshot, &day.gold)
            .groups();
        println!(
            "Detected copy groups in {}: {} (planted: {})",
            domain.config.domain,
            detected.len(),
            domain.copy_groups.len()
        );
    }
}
