//! Table 9 — precision of every fusion method over the whole collection
//! period: average, minimum, and standard deviation of the daily precision.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{evaluate_over_time, evaluate_over_time_delta};
use fusion::DeltaPolicy;
use std::time::Instant;

/// Paper Table-9 averages for reference.
const PAPER_AVERAGE: [(&str, f64, f64); 16] = [
    ("Vote", 0.922, 0.887),
    ("Hub", 0.925, 0.885),
    ("AvgLog", 0.921, 0.868),
    ("Invest", 0.797, 0.786),
    ("PooledInvest", 0.871, 0.979),
    ("2-Estimates", 0.910, 0.639),
    ("3-Estimates", 0.923, 0.718),
    ("Cosine", 0.923, 0.880),
    ("TruthFinder", 0.930, 0.818),
    ("AccuPr", 0.922, 0.893),
    ("PopAccu", 0.912, 0.972),
    ("AccuSim", 0.932, 0.866),
    ("AccuFormat", 0.932, 0.866),
    ("AccuSimAttr", 0.941, 0.956),
    ("AccuFormatAttr", 0.941, 0.956),
    ("AccuCopy", 0.884, 0.987),
];

fn paper_avg(method: &str, flight: bool) -> String {
    PAPER_AVERAGE
        .iter()
        .find(|(m, _, _)| *m == method)
        .map(|(_, s, f)| format!("{:.3}", if flight { *f } else { *s }))
        .unwrap_or_else(|| "-".to_string())
}

fn report(domain: &GeneratedDomain, flight: bool) {
    let rows = evaluate_over_time(&domain.collection, false);
    let mut table = Table::new(
        format!(
            "Table 9 ({}): precision over {} days",
            domain.config.domain,
            domain.collection.num_days()
        ),
        &["method", "avg", "paper avg", "min", "deviation"],
    );
    for row in &rows {
        table.row(&[
            row.method.clone(),
            format!("{:.3}", row.average),
            paper_avg(&row.method, flight),
            format!("{:.3}", row.minimum),
            format!("{:.3}", row.deviation),
        ]);
    }
    table.print();
}

/// The `--delta` leg: re-run the month day-over-day on one warm
/// [`fusion::DeltaEngine`] in exact mode, assert the rows equal the cold
/// sharded pass bit-for-bit, and report warm-vs-cold wall time plus the
/// engine's re-fused item accounting. Generated collections drift daily
/// (values move, so the recomputed tolerances move), which pushes the engine
/// toward its full-refresh fall-back — the leg reports how often that
/// happened rather than hiding it.
fn delta_report(domain: &GeneratedDomain) {
    let t_cold = Instant::now();
    let cold = evaluate_over_time(&domain.collection, false);
    let cold_wall = t_cold.elapsed();

    let t_warm = Instant::now();
    let (warm, usage) = evaluate_over_time_delta(&domain.collection, DeltaPolicy::exact(), 0);
    let warm_wall = t_warm.elapsed();

    for (w, c) in warm.iter().zip(&cold) {
        assert_eq!(
            w.daily_precision, c.daily_precision,
            "delta exact rows diverged from the cold pass for {}",
            w.method
        );
    }

    println!(
        "[delta] {}: warm engine {:.3}s vs cold sharded pass {:.3}s over {} days (rows bit-identical)",
        domain.config.domain,
        warm_wall.as_secs_f64(),
        cold_wall.as_secs_f64(),
        domain.collection.num_days()
    );
    println!(
        "[delta]   re-fused {}/{} item slots ({:.1}%), full refreshes {}/{}, identical days {}, \
         cache hits {}, mean dirty fraction {:.3}, prepare {:.3}s",
        usage.fused_items,
        usage.total_items,
        100.0 * usage.fused_fraction(),
        usage.full_refreshes,
        usage.advances,
        usage.identical_days,
        usage.cache_hits,
        usage.mean_dirty_fraction(),
        usage.prepare.as_secs_f64()
    );
    println!();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 9");
    report(&stock, false);
    report(&flight, true);
    if args.delta {
        delta_report(&stock);
        delta_report(&flight);
    }
    println!("Paper: AccuFormatAttr is the best on Stock over the month (.941);");
    println!("       AccuCopy is the best on Flight (.987).");
}
