//! Table 9 — precision of every fusion method over the whole collection
//! period: average, minimum, and standard deviation of the daily precision.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::evaluate_over_time;

/// Paper Table-9 averages for reference.
const PAPER_AVERAGE: [(&str, f64, f64); 16] = [
    ("Vote", 0.922, 0.887),
    ("Hub", 0.925, 0.885),
    ("AvgLog", 0.921, 0.868),
    ("Invest", 0.797, 0.786),
    ("PooledInvest", 0.871, 0.979),
    ("2-Estimates", 0.910, 0.639),
    ("3-Estimates", 0.923, 0.718),
    ("Cosine", 0.923, 0.880),
    ("TruthFinder", 0.930, 0.818),
    ("AccuPr", 0.922, 0.893),
    ("PopAccu", 0.912, 0.972),
    ("AccuSim", 0.932, 0.866),
    ("AccuFormat", 0.932, 0.866),
    ("AccuSimAttr", 0.941, 0.956),
    ("AccuFormatAttr", 0.941, 0.956),
    ("AccuCopy", 0.884, 0.987),
];

fn paper_avg(method: &str, flight: bool) -> String {
    PAPER_AVERAGE
        .iter()
        .find(|(m, _, _)| *m == method)
        .map(|(_, s, f)| format!("{:.3}", if flight { *f } else { *s }))
        .unwrap_or_else(|| "-".to_string())
}

fn report(domain: &GeneratedDomain, flight: bool) {
    let rows = evaluate_over_time(&domain.collection, false);
    let mut table = Table::new(
        format!(
            "Table 9 ({}): precision over {} days",
            domain.config.domain,
            domain.collection.num_days()
        ),
        &["method", "avg", "paper avg", "min", "deviation"],
    );
    for row in &rows {
        table.row(&[
            row.method.clone(),
            format!("{:.3}", row.average),
            paper_avg(&row.method, flight),
            format!("{:.3}", row.minimum),
            format!("{:.3}", row.deviation),
        ]);
    }
    table.print();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 9");
    report(&stock, false);
    report(&flight, true);
    println!("Paper: AccuFormatAttr is the best on Stock over the month (.941);");
    println!("       AccuCopy is the best on Flight (.987).");
}
