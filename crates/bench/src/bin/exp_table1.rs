//! Table 1 — overview of the data collections: sources, collection period,
//! objects, local/global attributes, and considered data items.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;

fn row(domain: &GeneratedDomain, paper: [&str; 6]) -> Vec<String> {
    let cfg = &domain.config;
    let snapshot = domain.reference_snapshot();
    vec![
        cfg.domain.clone(),
        format!("{} (paper {})", cfg.num_sources(), paper[0]),
        format!("{} days (paper {})", cfg.num_days, paper[1]),
        format!("{}*{} (paper {})", cfg.num_objects, cfg.num_days, paper[2]),
        format!("{} (paper {})", cfg.total_local_attributes, paper[3]),
        format!("{} (paper {})", cfg.total_global_attributes, paper[4]),
        format!(
            "{} items/day, {} considered attrs (paper {})",
            snapshot.num_items(),
            cfg.num_attributes(),
            paper[5]
        ),
    ]
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 1");
    let mut table = Table::new(
        "Table 1: Overview of data collections",
        &["domain", "srcs", "period", "objects", "local attrs", "global attrs", "considered items"],
    );
    table.row(&row(
        &stock,
        ["55", "July 2011 (21)", "1000*21", "333", "153", "16000*21"],
    ));
    table.row(&row(
        &flight,
        ["38", "Dec 2011 (31)", "1200*31", "43", "15", "7200*31"],
    ));
    table.print();
}
