//! Figure 1 — attribute coverage: percentage of global attributes provided by
//! more than 5, 10, 20, 30, 40, 50 sources.

use bench::{format_percent, ExpArgs, Table};
use profiling::coverage::{attribute_coverage_cdf, default_thresholds, fraction_covered_by};

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 1");
    let mut table = Table::new(
        "Figure 1: Attribute coverage (fraction of global attributes provided by > N sources)",
        &["more than N sources", "stock", "flight"],
    );
    let stock_cdf = attribute_coverage_cdf(&stock.global_attribute_providers, &default_thresholds());
    let flight_cdf =
        attribute_coverage_cdf(&flight.global_attribute_providers, &default_thresholds());
    for (s, f) in stock_cdf.iter().zip(&flight_cdf) {
        table.row(&[
            format!("> {}", s.min_sources),
            format_percent(s.fraction_of_attributes),
            format_percent(f.fraction_of_attributes),
        ]);
    }
    table.print();

    println!(
        "Stock attributes provided by at least 1/3 of the sources: {} (paper: 13.7%)",
        format_percent(fraction_covered_by(
            &stock.global_attribute_providers,
            stock.config.num_sources(),
            1.0 / 3.0
        ))
    );
    println!(
        "Flight attributes provided by more than half of the sources: {} (paper: 40%)",
        format_percent(fraction_covered_by(
            &flight.global_attribute_providers,
            flight.config.num_sources(),
            0.5
        ))
    );
}
