//! Figure 2 — object redundancy: percentage of objects whose redundancy
//! (fraction of sources providing them) is above x.

use bench::{format_percent, ExpArgs, Table};
use profiling::object_redundancy_cdf;

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 2");
    let stock_cdf = object_redundancy_cdf(stock.reference_snapshot());
    let flight_cdf = object_redundancy_cdf(flight.reference_snapshot());
    let mut table = Table::new(
        "Figure 2: Object redundancy (fraction of objects with redundancy >= x)",
        &["x", "stock", "flight"],
    );
    for (s, f) in stock_cdf.iter().zip(&flight_cdf) {
        table.row(&[
            format!("{:.1}", s.threshold),
            format_percent(s.fraction_above),
            format_percent(f.fraction_above),
        ]);
    }
    table.print();
    println!("Paper: 83% of stocks have full redundancy; every flight has redundancy over 0.3.");
}
