//! Figure 7 — dominance factors: their distribution over data items and the
//! precision of dominant values per dominance-factor bin.

use bench::{format_percent, ExpArgs, Table};
use profiling::dominance_profile;

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 7");
    let stock_day = stock.collection.reference_day();
    let flight_day = flight.collection.reference_day();
    let stock_profile = dominance_profile(&stock_day.snapshot, &stock_day.gold);
    let flight_profile = dominance_profile(&flight_day.snapshot, &flight_day.gold);

    let mut table = Table::new(
        "Figure 7: dominance-factor distribution and precision of dominant values",
        &[
            "factor bin",
            "stock items",
            "stock precision",
            "flight items",
            "flight precision",
        ],
    );
    for (s, f) in stock_profile.buckets.iter().zip(&flight_profile.buckets) {
        table.row(&[
            format!("[{:.1}, {:.1})", s.factor_low, s.factor_low + 0.1),
            format_percent(s.fraction_of_items),
            format!("{:.2}", s.precision),
            format_percent(f.fraction_of_items),
            format!("{:.2}", f.precision),
        ]);
    }
    table.print();

    println!(
        "Overall precision of dominant values: stock {:.3} (paper 0.908), flight {:.3} (paper 0.864)",
        stock_profile.overall_precision, flight_profile.overall_precision
    );
    println!(
        "Items with dominance factor > 0.5: stock {} (paper 73%), flight {} (paper 82%)",
        format_percent(stock_profile.fraction_above_half),
        format_percent(flight_profile.fraction_above_half)
    );
    println!(
        "Items with dominance factor > 0.9: stock {} (paper 42%), flight {} (paper 42%)",
        format_percent(stock_profile.fraction_above_09),
        format_percent(flight_profile.fraction_above_09)
    );
}
