//! Table 4 — accuracy and coverage of the authoritative sources.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use profiling::authority_report;

fn report(domain: &GeneratedDomain, table: &mut Table) {
    let day = domain.collection.reference_day();
    for auth in authority_report(&day.snapshot, &day.gold) {
        table.row(&[
            domain.config.domain.clone(),
            auth.name.clone(),
            format!("{:.2}", auth.accuracy.unwrap_or(0.0)),
            format!("{:.2}", auth.coverage),
        ]);
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 4");
    let mut table = Table::new(
        "Table 4: accuracy and coverage of authoritative sources",
        &["domain", "source", "accuracy", "coverage"],
    );
    report(&stock, &mut table);
    report(&flight, &mut table);
    table.print();
    println!("Paper (stock): Google Finance .94/.82, Yahoo! Finance .93/.81, NASDAQ .92/.84,");
    println!("               MSN Money .91/.89, Bloomberg .83/.81");
    println!("Paper (flight): Orbitz .98/.87, Travelocity .95/.71, airport average .94/.03");
}
