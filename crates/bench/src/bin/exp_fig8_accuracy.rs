//! Figure 8 — source accuracy: (a) distribution of source accuracy on the
//! reference snapshot, (b) accuracy deviation over the collection period,
//! (c) precision of dominant values over time. Also prints the headline
//! averages quoted in Section 3.3.

use bench::{format_percent, ExpArgs, Table};
use datagen::GeneratedDomain;
use profiling::{
    accuracy_histogram, accuracy_over_time, dominance::dominant_precision_over_time,
    source_accuracies,
};

fn report(domain: &GeneratedDomain, paper_avg_accuracy: f64) {
    let name = &domain.config.domain;
    let day = domain.collection.reference_day();
    let accuracies = source_accuracies(&day.snapshot, &day.gold);

    let hist = accuracy_histogram(&accuracies);
    let mut table = Table::new(
        format!("Figure 8(a) ({name}): source-accuracy distribution"),
        &["accuracy bin", "fraction of sources"],
    );
    for (i, share) in hist.iter().enumerate() {
        table.row(&[
            format!("[{:.1}, {:.1})", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            format_percent(*share),
        ]);
    }
    table.print();

    let values: Vec<f64> = accuracies.iter().filter_map(|a| a.accuracy).collect();
    println!(
        "Mean source accuracy ({name}): {:.2} (paper {:.2})",
        datamodel::mean(&values),
        paper_avg_accuracy
    );

    let over_time = accuracy_over_time(&domain.collection);
    let deviations: Vec<f64> = over_time.iter().map(|s| s.accuracy_deviation).collect();
    let steady = deviations.iter().filter(|d| **d < 0.05).count();
    println!(
        "Figure 8(b) ({name}): mean accuracy deviation {:.3} (paper ~0.05-0.06); {} of {} sources below 0.05",
        datamodel::mean(&deviations),
        steady,
        deviations.len()
    );

    let daily = dominant_precision_over_time(&domain.collection);
    let line: Vec<String> = daily.iter().map(|p| format!("{p:.3}")).collect();
    println!(
        "Figure 8(c) ({name}): precision of dominant values per day: {}",
        line.join(" ")
    );
    println!();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 8");
    report(&stock, 0.86);
    report(&flight, 0.80);
}
