//! Figure 8 — source accuracy: (a) distribution of source accuracy on the
//! reference snapshot, (b) accuracy deviation over the collection period,
//! (c) precision of dominant values over time. Also prints the headline
//! averages quoted in Section 3.3.
//!
//! The per-day measurements behind (b) and (c) are independent, so they are
//! fanned across CPU cores with [`ParallelRunner::map_days`] and merged
//! afterwards — the same numbers the sequential `accuracy_over_time` /
//! `dominant_precision_over_time` loops produce, day order preserved.

use bench::{format_percent, ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::ParallelRunner;
use profiling::{
    accuracy_histogram, accuracy_over_time_from_daily, dominance::dominant_value_precision,
    source_accuracies,
};

fn report(domain: &GeneratedDomain, paper_avg_accuracy: f64) {
    let name = &domain.config.domain;

    // One parallel pass over the days computes the per-source accuracies
    // behind Figures 8(a) and 8(b) and the dominant-value precision of
    // Figure 8(c); the reference day's accuracies are indexed out of the
    // per-day results rather than recomputed.
    let runner = ParallelRunner::new();
    let per_day: Vec<(Vec<profiling::SourceAccuracy>, f64)> =
        runner.map_days(&domain.collection, |day| {
            (
                source_accuracies(&day.snapshot, &day.gold),
                dominant_value_precision(&day.snapshot, &day.gold),
            )
        });
    let (daily_accuracies, daily_dominant): (Vec<_>, Vec<f64>) = per_day.into_iter().unzip();
    let accuracies = &daily_accuracies[domain.collection.reference_day_index()];

    let hist = accuracy_histogram(accuracies);
    let mut table = Table::new(
        format!("Figure 8(a) ({name}): source-accuracy distribution"),
        &["accuracy bin", "fraction of sources"],
    );
    for (i, share) in hist.iter().enumerate() {
        table.row(&[
            format!("[{:.1}, {:.1})", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            format_percent(*share),
        ]);
    }
    table.print();

    let values: Vec<f64> = accuracies.iter().filter_map(|a| a.accuracy).collect();
    println!(
        "Mean source accuracy ({name}): {:.2} (paper {:.2})",
        datamodel::mean(&values),
        paper_avg_accuracy
    );

    let over_time = accuracy_over_time_from_daily(daily_accuracies);
    let deviations: Vec<f64> = over_time.iter().map(|s| s.accuracy_deviation).collect();
    let steady = deviations.iter().filter(|d| **d < 0.05).count();
    println!(
        "Figure 8(b) ({name}): mean accuracy deviation {:.3} (paper ~0.05-0.06); {} of {} sources below 0.05",
        datamodel::mean(&deviations),
        steady,
        deviations.len()
    );

    let line: Vec<String> = daily_dominant.iter().map(|p| format!("{p:.3}")).collect();
    println!(
        "Figure 8(c) ({name}): precision of dominant values per day: {}",
        line.join(" ")
    );
    println!();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 8");
    report(&stock, 0.86);
    report(&flight, 0.80);
}
