//! Figure 8 — source accuracy: (a) distribution of source accuracy on the
//! reference snapshot, (b) accuracy deviation over the collection period,
//! (c) precision of dominant values over time. Also prints the headline
//! averages quoted in Section 3.3.
//!
//! The per-day measurements behind (b) and (c) are independent, so they are
//! fanned across CPU cores with [`ParallelRunner::map_days`] and merged
//! afterwards — the same numbers the sequential `accuracy_over_time` /
//! `dominant_precision_over_time` loops produce, day order preserved.

use bench::{format_percent, ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{same_results, BatchRunner, ParallelRunner};
use profiling::{
    accuracy_histogram, accuracy_over_time_from_daily, dominance::dominant_value_precision,
    source_accuracies,
};
use std::time::Instant;

// Count every heap allocation so the `--batch` mode can report how much
// allocation traffic the warm-arena runner removes (profiling::alloc).
#[global_allocator]
static ALLOC: profiling::CountingAllocator = profiling::CountingAllocator::new();

fn report(domain: &GeneratedDomain, paper_avg_accuracy: f64) {
    let name = &domain.config.domain;

    // One parallel pass over the days computes the per-source accuracies
    // behind Figures 8(a) and 8(b) and the dominant-value precision of
    // Figure 8(c); the reference day's accuracies are indexed out of the
    // per-day results rather than recomputed.
    let runner = ParallelRunner::new();
    let per_day: Vec<(Vec<profiling::SourceAccuracy>, f64)> =
        runner.map_days(&domain.collection, |day| {
            (
                source_accuracies(&day.snapshot, &day.gold),
                dominant_value_precision(&day.snapshot, &day.gold),
            )
        });
    let (daily_accuracies, daily_dominant): (Vec<_>, Vec<f64>) = per_day.into_iter().unzip();
    let accuracies = &daily_accuracies[domain.collection.reference_day_index()];

    let hist = accuracy_histogram(accuracies);
    let mut table = Table::new(
        format!("Figure 8(a) ({name}): source-accuracy distribution"),
        &["accuracy bin", "fraction of sources"],
    );
    for (i, share) in hist.iter().enumerate() {
        table.row(&[
            format!("[{:.1}, {:.1})", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            format_percent(*share),
        ]);
    }
    table.print();

    let values: Vec<f64> = accuracies.iter().filter_map(|a| a.accuracy).collect();
    println!(
        "Mean source accuracy ({name}): {:.2} (paper {:.2})",
        datamodel::mean(&values),
        paper_avg_accuracy
    );

    let over_time = accuracy_over_time_from_daily(daily_accuracies);
    let deviations: Vec<f64> = over_time.iter().map(|s| s.accuracy_deviation).collect();
    let steady = deviations.iter().filter(|d| **d < 0.05).count();
    println!(
        "Figure 8(b) ({name}): mean accuracy deviation {:.3} (paper ~0.05-0.06); {} of {} sources below 0.05",
        datamodel::mean(&deviations),
        steady,
        deviations.len()
    );

    let line: Vec<String> = daily_dominant.iter().map(|p| format!("{p:.3}")).collect();
    println!(
        "Figure 8(c) ({name}): precision of dominant values per day: {}",
        line.join(" ")
    );
    println!();
}

/// `--batch`: the Figure-8-style full-period fusion sweep (all sixteen
/// methods on every collection day) through the per-(day, method) fan-out
/// and through the sharded warm-arena batch runner, checked bit-identical
/// and reported wall-vs-wall with the allocation traffic of each pass.
///
/// Each runner is timed three times in alternating order and the **minimum**
/// wall is reported: a single pass swings ±5-25% on a busy box, which would
/// drown the few-percent single-core arena win in noise (the criterion bench
/// `batch_vs_parallel` tells the same story with proper sampling).
fn batch_report(domain: &GeneratedDomain) {
    let name = &domain.config.domain;
    const ROUNDS: usize = 3;

    // Untimed warm-up so first-touch costs bias neither runner.
    let parallel = ParallelRunner::new().evaluate_collection(&domain.collection);

    let mut parallel_wall = std::time::Duration::MAX;
    let mut batch_wall = std::time::Duration::MAX;
    let mut parallel_allocs = u64::MAX;
    let mut batch_allocs = u64::MAX;
    let mut batch = None;
    for _ in 0..ROUNDS {
        let allocs_before = profiling::allocation_count();
        let start = Instant::now();
        let p = ParallelRunner::new().evaluate_collection(&domain.collection);
        parallel_wall = parallel_wall.min(start.elapsed());
        parallel_allocs = parallel_allocs.min(profiling::allocation_count() - allocs_before);
        assert_eq!(p.days.len(), parallel.days.len());

        let allocs_before = profiling::allocation_count();
        let start = Instant::now();
        let b = BatchRunner::new().evaluate_collection(&domain.collection);
        batch_wall = batch_wall.min(start.elapsed());
        batch_allocs = batch_allocs.min(profiling::allocation_count() - allocs_before);
        batch = Some(b);
    }
    let batch = batch.expect("at least one round ran");

    assert_eq!(batch.days.len(), parallel.days.len());
    for (b, p) in batch.days.iter().zip(&parallel.days) {
        assert!(
            same_results(&b.rows, &p.rows),
            "batch rows diverged from parallel rows on day {}",
            b.day
        );
    }

    println!(
        "Batch sweep ({name}): {} days x 16 methods; batch wall {:.2} s on {} warm shard(s) \
         vs {:.2} s parallel fan-out ({:.2}x; min of {ROUNDS} alternating rounds)",
        batch.days.len(),
        batch_wall.as_secs_f64(),
        batch.num_shards,
        parallel_wall.as_secs_f64(),
        parallel_wall.as_secs_f64() / batch_wall.as_secs_f64().max(f64::MIN_POSITIVE),
    );
    println!(
        "Allocations ({name}): parallel {parallel_allocs}, batch {batch_allocs} \
         ({:.1}% of parallel)\n",
        100.0 * batch_allocs as f64 / (parallel_allocs as f64).max(1.0),
    );
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 8");
    report(&stock, 0.86);
    report(&flight, 0.80);
    if args.batch {
        batch_report(&stock);
        batch_report(&flight);
    }
}
