//! Figure 9 — fusion recall as sources are added in recall order, for a
//! representative method of each category.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{incremental_recall, incremental_recall_delta, EvaluationContext};
use fusion::DeltaPolicy;
use std::time::Instant;

fn report(domain: &GeneratedDomain, methods: &[&str], step: usize) {
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    let series = incremental_recall(&context, methods, step);

    let mut header: Vec<String> = vec!["#sources".to_string()];
    header.extend(series.iter().map(|s| s.method.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Figure 9 ({}): recall as sources are added", domain.config.domain),
        &header_refs,
    );
    let num_points = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..num_points {
        let mut row = vec![format!("{}", series[0].points[i].num_sources)];
        for s in &series {
            row.push(format!("{:.3}", s.points[i].recall));
        }
        table.row(&row);
    }
    table.print();

    for s in &series {
        if let Some(peak) = s.peak() {
            println!(
                "{}: peak recall {:.3} at {} sources, final recall {:.3}",
                s.method,
                peak.recall,
                peak.num_sources,
                s.final_recall()
            );
        }
    }
    println!();
}

/// The `--delta` leg: re-run the prefix ladder on one warm
/// [`fusion::DeltaEngine`] (exact mode). Growing a source prefix is a pure
/// source-axis delta under pinned tolerances, so the engine splices every
/// item the new sources don't touch instead of re-bucketing the whole
/// prefix; the cold pass re-prepares each prefix from scratch. (The two
/// ladders restrict with different tolerance handling — recomputed vs.
/// pinned — so the recall columns are reported, not asserted equal.)
fn delta_report(domain: &GeneratedDomain, methods: &[&str], step: usize) {
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);

    let t_cold = Instant::now();
    let cold = incremental_recall(&context, methods, step);
    let cold_wall = t_cold.elapsed();

    let t_warm = Instant::now();
    let (warm, usage) = incremental_recall_delta(&context, methods, step, DeltaPolicy::exact());
    let warm_wall = t_warm.elapsed();

    println!(
        "[delta] {}: warm engine {:.3}s vs cold per-prefix pass {:.3}s over {} prefixes",
        domain.config.domain,
        warm_wall.as_secs_f64(),
        cold_wall.as_secs_f64(),
        usage.advances
    );
    println!(
        "[delta]   re-fused {}/{} item slots ({:.1}%), full refreshes {}/{}, cache hits {}, \
         mean dirty fraction {:.3}, prepare {:.3}s",
        usage.fused_items,
        usage.total_items,
        100.0 * usage.fused_fraction(),
        usage.full_refreshes,
        usage.advances,
        usage.cache_hits,
        usage.mean_dirty_fraction(),
        usage.prepare.as_secs_f64()
    );
    for (w, c) in warm.iter().zip(&cold) {
        println!(
            "[delta]   {}: pinned-prefix peak {:.3}, cold-prefix peak {:.3}",
            w.method,
            w.peak().map(|p| p.recall).unwrap_or(0.0),
            c.peak().map(|p| p.recall).unwrap_or(0.0)
        );
    }
    println!();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 9");
    // One representative per category, as in the paper's plots.
    let stock_methods = ["Vote", "Hub", "Cosine", "3-Estimates", "AccuFormatAttr", "AccuCopy"];
    let flight_methods = ["Vote", "PooledInvest", "Cosine", "2-Estimates", "PopAccu", "AccuCopy"];
    report(&stock, &stock_methods, 5);
    report(&flight, &flight_methods, 4);
    if args.delta {
        delta_report(&stock, &stock_methods, 5);
        delta_report(&flight, &flight_methods, 4);
    }
    println!("Paper: recall peaks at the 5th source for Stock and the 9th for Flight;");
    println!("       adding the remaining sources does not improve (and can hurt) recall.");
}
