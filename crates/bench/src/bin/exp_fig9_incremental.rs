//! Figure 9 — fusion recall as sources are added in recall order, for a
//! representative method of each category.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{incremental_recall, EvaluationContext};

fn report(domain: &GeneratedDomain, methods: &[&str], step: usize) {
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    let series = incremental_recall(&context, methods, step);

    let mut header: Vec<String> = vec!["#sources".to_string()];
    header.extend(series.iter().map(|s| s.method.clone()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!("Figure 9 ({}): recall as sources are added", domain.config.domain),
        &header_refs,
    );
    let num_points = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..num_points {
        let mut row = vec![format!("{}", series[0].points[i].num_sources)];
        for s in &series {
            row.push(format!("{:.3}", s.points[i].recall));
        }
        table.row(&row);
    }
    table.print();

    for s in &series {
        if let Some(peak) = s.peak() {
            println!(
                "{}: peak recall {:.3} at {} sources, final recall {:.3}",
                s.method,
                peak.recall,
                peak.num_sources,
                s.final_recall()
            );
        }
    }
    println!();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 9");
    // One representative per category, as in the paper's plots.
    report(&stock, &["Vote", "Hub", "Cosine", "3-Estimates", "AccuFormatAttr", "AccuCopy"], 5);
    report(&flight, &["Vote", "PooledInvest", "Cosine", "2-Estimates", "PopAccu", "AccuCopy"], 4);
    println!("Paper: recall peaks at the 5th source for Stock and the 9th for Flight;");
    println!("       adding the remaining sources does not improve (and can hurt) recall.");
}
