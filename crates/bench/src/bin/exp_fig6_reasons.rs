//! Figure 6 — reasons for value inconsistency, attributed from the
//! generator's claim provenance.

use bench::{format_percent, ExpArgs, Table};
use profiling::inconsistency_reasons;

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 6");
    let stock_reasons =
        inconsistency_reasons(stock.reference_snapshot(), stock.reference_provenance());
    let flight_reasons =
        inconsistency_reasons(flight.reference_snapshot(), flight.reference_provenance());

    let paper_stock = [0.46, 0.06, 0.34, 0.03, 0.11];
    let paper_flight = [0.33, 0.0, 0.11, 0.0, 0.56];

    let mut table = Table::new(
        "Figure 6: Reasons for value inconsistency",
        &["reason", "stock", "stock (paper)", "flight", "flight (paper)"],
    );
    for (i, (s, f)) in stock_reasons.iter().zip(&flight_reasons).enumerate() {
        table.row(&[
            s.reason.clone(),
            format_percent(s.share),
            format_percent(paper_stock[i]),
            format_percent(f.share),
            format_percent(paper_flight[i]),
        ]);
    }
    table.print();
}
