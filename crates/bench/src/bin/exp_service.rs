//! Online-service drill: stream a mutation sequence through the
//! [`service::FusionService`] shell the way a deployment would — a producer
//! emitting day diffs over a channel, one ingest thread owning the service,
//! reader threads hammering the published state throughout — and report
//! per-seal cost plus the warm-vs-cold convergence check on the final day.
//!
//! This is the serving-side companion of `exp_delta`: where that binary
//! measures the engine, this one measures the shell around it (ingest
//! idempotency bookkeeping, materialization, publication) and proves the
//! read path never serves a torn or stale-diverged state.
//!
//! Usage: `exp_service [--scale S] [--days N] [--seed K]`

use bench::{ExpArgs, Table};
use datagen::{generate, mutation_stream, stock_config};
use datamodel::SnapshotBuilder;
use fusion::{all_methods, FusionOptions, FusionProblem};
use service::{diff_ops, ApplyOutcome, FusionService, Operation, SealReport};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

const NUM_READERS: usize = 3;

fn main() {
    let args = ExpArgs::from_env();
    let num_days = (args.days * 20.0).round().max(3.0) as usize;
    println!(
        "[Service] scale={} seed={} sealed days={} readers={}\n",
        args.scale, args.seed, num_days, NUM_READERS
    );

    let domain = generate(&stock_config(args.seed).scaled(args.scale, 0.05));
    let base = domain.collection.reference_day().snapshot.clone();
    let stream = mutation_stream(&base, num_days - 1, 0.05, args.seed ^ 0x5e41);

    let schema = base.schema_arc();
    let service = FusionService::new(Arc::clone(&schema));
    let reader = service.reader();
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));

    // Producer (this thread) → channel → ingest thread that owns the
    // service; readers poll the published slot the whole time.
    let (tx, rx) = mpsc::channel::<Vec<Operation>>();
    let ingest = std::thread::spawn(move || {
        let mut service = service;
        let mut reports: Vec<(SealReport, usize)> = Vec::new();
        while let Ok(batch) = rx.recv() {
            let ops = batch.len();
            for op in batch {
                if let ApplyOutcome::Sealed(report) = service.apply(op) {
                    reports.push((report, ops));
                }
            }
        }
        (service, reports)
    });
    let mut readers = Vec::new();
    for _ in 0..NUM_READERS {
        let reader = reader.clone();
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads);
        readers.push(std::thread::spawn(move || {
            let mut last_version = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let state = reader.state();
                assert!(state.version() >= last_version, "version went backwards");
                last_version = state.version();
                if let Some(item) = state.items().first() {
                    let answer = state.answer("Vote", *item).expect("published item answers");
                    assert_eq!(Some(answer.day), state.day());
                }
                reads.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    let mut seq = 0u64;
    let mut prev = SnapshotBuilder::new(0).build(Arc::clone(&schema));
    for (day_index, day) in stream.days.iter().enumerate() {
        let mut batch = diff_ops(&prev, day, seq);
        seq += batch.len() as u64;
        batch.push(Operation::seal(seq, day_index as u32));
        seq += 1;
        tx.send(batch).expect("ingest thread alive");
        prev = day.clone();
    }
    drop(tx);
    let (service, reports) = ingest.join().expect("ingest thread panicked");
    stop.store(true, Ordering::Relaxed);
    for handle in readers {
        handle.join().expect("reader thread panicked");
    }

    let mut table = Table::new(
        "Per-seal cost (ops = diff upserts/retracts + the seal)",
        &["day", "ops", "items", "obs", "dirty", "fuse (ms)", "seal (ms)"],
    );
    for (report, ops) in &reports {
        table.row(&[
            format!("{}", report.day),
            format!("{ops}"),
            format!("{}", report.items),
            format!("{}", report.observations),
            if report.advance.first_day {
                "cold".to_string()
            } else {
                format!("{:.1}%", report.advance.dirty_fraction * 100.0)
            },
            format!("{:.2}", report.fuse.as_secs_f64() * 1e3),
            format!("{:.2}", report.total.as_secs_f64() * 1e3),
        ]);
    }
    table.print();

    let stats = service.stats();
    println!(
        "Ingest: {} applied, {} duplicate, {} stale, {} rejected over {} seals",
        stats.ops_applied, stats.ops_duplicate, stats.ops_stale, stats.ops_rejected, stats.seals
    );
    println!(
        "Engine: {} items fused across {} advances ({} full refreshes); mean seal {:.2} ms",
        stats.delta.fused_items,
        stats.delta.advances,
        stats.delta.full_refreshes,
        stats.mean_seal().as_secs_f64() * 1e3
    );
    println!(
        "Readers: {} lock-cheap reads served during ingest",
        reads.load(Ordering::Relaxed)
    );

    // Convergence: the final published day must carry the cold batch bits
    // for every registry method (exact delta mode's contract, end to end
    // through the shell).
    let state = reader.state();
    let last = stream.days.last().expect("stream has days");
    let cold_problem = FusionProblem::from_snapshot(last);
    let options = FusionOptions::standard();
    let mut diverged = 0;
    for (_, method) in all_methods() {
        let name = method.name();
        let cold = method.run(&cold_problem, &options);
        let cold_sel: Vec<u32> = cold.selection.iter().map(|&s| s as u32).collect();
        let sel_ok = state.selection(&name) == Some(cold_sel.as_slice());
        let trust_ok = state.trust_vector(&name).is_some_and(|served| {
            served.len() == cold.trust.overall.len()
                && served
                    .iter()
                    .zip(&cold.trust.overall)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
        });
        if !(sel_ok && trust_ok) {
            eprintln!("DIVERGED: {name} (selection ok: {sel_ok}, trust ok: {trust_ok})");
            diverged += 1;
        }
    }
    if diverged > 0 {
        eprintln!("FAIL: {diverged} method(s) diverged from the cold batch on the final day");
        std::process::exit(1);
    }
    println!(
        "Convergence: all {} methods bit-identical to the cold batch on day {}.",
        all_methods().len(),
        state.day().expect("final day published")
    );
}
