//! Figure 4 — distributions of the number of values, entropy, and deviation
//! over the data items of one snapshot per domain.

use bench::{format_percent, ExpArgs, Table};
use profiling::snapshot_inconsistency;

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 4");
    let stock_dist = snapshot_inconsistency(stock.reference_snapshot());
    let flight_dist = snapshot_inconsistency(flight.reference_snapshot());

    let mut values = Table::new(
        "Figure 4 (left): number of different values per item",
        &["#values", "stock", "flight"],
    );
    for i in 0..10 {
        let label = if i == 9 { "10+".to_string() } else { format!("{}", i + 1) };
        values.row(&[
            label,
            format_percent(stock_dist.num_values_histogram[i]),
            format_percent(flight_dist.num_values_histogram[i]),
        ]);
    }
    values.print();

    let mut entropy = Table::new(
        "Figure 4 (middle): entropy of the value distribution",
        &["entropy bin", "stock", "flight"],
    );
    for i in 0..11 {
        let label = if i == 10 {
            "[1.0, )".to_string()
        } else {
            format!("[{:.1}, {:.1})", i as f64 / 10.0, (i + 1) as f64 / 10.0)
        };
        entropy.row(&[
            label,
            format_percent(stock_dist.entropy_histogram[i]),
            format_percent(flight_dist.entropy_histogram[i]),
        ]);
    }
    entropy.print();

    let mut deviation = Table::new(
        "Figure 4 (right): deviation (relative for stock, per minute for flight)",
        &["deviation bin", "stock", "flight"],
    );
    for i in 0..11 {
        let label = if i == 10 {
            "[1.0, ) or 10+ min".to_string()
        } else {
            format!("[{:.1}, {:.1})", i as f64 / 10.0, (i + 1) as f64 / 10.0)
        };
        deviation.row(&[
            label,
            format_percent(stock_dist.deviation_histogram[i]),
            format_percent(flight_dist.deviation_histogram[i]),
        ]);
    }
    deviation.print();

    println!(
        "Items with conflicting values: stock {} (paper 83%/70% overall), flight {} (paper 39%)",
        format_percent(stock_dist.fraction_conflicting),
        format_percent(flight_dist.fraction_conflicting)
    );
    println!(
        "Mean #values: stock {:.2} (paper 3.7), flight {:.2} (paper 1.45); mean entropy: stock {:.2} (paper .58), flight {:.2} (paper .24)",
        stock_dist.mean_num_values,
        flight_dist.mean_num_values,
        stock_dist.mean_entropy,
        flight_dist.mean_entropy
    );
}
