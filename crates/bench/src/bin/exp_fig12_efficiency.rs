//! Figure 12 — fusion precision vs. execution time for every method.
//!
//! Absolute times depend on the machine and on the generated-data scale; the
//! paper's claim is about the relative ordering (VOTE fastest, the ATTR
//! variants and AccuCopy slowest) and about longer execution time not
//! guaranteeing better results.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{evaluate_all_methods, EvaluationContext};

fn report(domain: &GeneratedDomain) {
    let day = domain.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);
    let mut rows = evaluate_all_methods(&context);
    rows.sort_by_key(|a| a.elapsed);

    let mut table = Table::new(
        format!(
            "Figure 12 ({}): precision vs execution time ({} items, {} sources)",
            domain.config.domain,
            day.snapshot.num_items(),
            day.snapshot.active_sources().len()
        ),
        &["method", "time (s)", "precision", "rounds"],
    );
    for row in &rows {
        table.row(&[
            row.method.clone(),
            format!("{:.3}", row.elapsed.as_secs_f64()),
            format!("{:.3}", row.precision_without_trust),
            format!("{}", row.rounds),
        ]);
    }
    table.print();
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 12");
    report(&stock);
    report(&flight);
    println!("Paper: VOTE finishes in under a second, most methods within 1-10 s, the ATTR");
    println!("       variants in 100-250 s, and AccuCopy in 855 s on Stock; longer execution");
    println!("       time does not guarantee better results.");
}
