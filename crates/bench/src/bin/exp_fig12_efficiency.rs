//! Figure 12 — fusion precision vs. execution time for every method.
//!
//! Absolute times depend on the machine and on the generated-data scale; the
//! paper's claim is about the relative ordering (VOTE fastest, the ATTR
//! variants and AccuCopy slowest) and about longer execution time not
//! guaranteeing better results.
//!
//! The binary runs the same (method × day) batch twice: once on the timed
//! sequential baseline ([`evaluate_days_sequential`]) and once fanned across
//! CPU cores on the [`ParallelRunner`]. The Figure-12 table is printed from
//! the **sequential** rows, whose per-method timings are measured without
//! core contention; the sequential pass is repeated `--repeats` times
//! (default 3) and each per-method timing is the **median** across repeats,
//! so a one-off scheduler stall cannot masquerade as a perf regression in
//! the trajectory artifact; context preparation is hoisted out of the repeat
//! loop (built once, timed separately, added to the reported sequential
//! wall), so large worlds are not re-prepared N times. The trailing summary reports the measured
//! wall-clock speedup of the fan-out over the sequential pass — the gain a
//! multi-core evaluation pipeline gets over the paper's sequential
//! measurement loop — unless only one thread is available, in which case
//! the "speedup" would merely measure fan-out overhead and is flagged
//! invalid instead of printed. Both passes must agree on every result row
//! (fusion is deterministic); the binary asserts that.
//!
//! The artifact also records which fusion kernel backend the run dispatched
//! to (`avx2+fma` / `scalar`), the detected CPU features, and the thread
//! budget (`rayon_threads` / `available_parallelism`), so trajectory points
//! from machines with different vector units or core counts are not silently
//! compared as like-for-like.
//!
//! Alongside the across-day fan-out, the binary measures **intra-day**
//! parallelism (`fusion::chunking`): the heaviest method (AccuCopy) on the
//! kitchen-sink world, sequential vs chunked across the pool, asserted
//! bit-identical and reported as `intra_day` in the artifact. On a single
//! thread the chunked pass only measures chunking overhead, so — like the
//! fan-out speedup — the ratio is flagged invalid rather than reported.
//! Pass `--scale 10` to run the measurement on the full scale-10
//! kitchen-sink world (~a million observations per day).
//!
//! The artifact also carries a `delta` record: a dirty-fraction sweep (1%,
//! 10%, 50% changed claims per day) comparing the warm
//! [`fusion::DeltaEngine`] against cold per-day re-preparation on a planted
//! mutation stream ([`datagen::mutation_stream`]), exact mode asserted
//! bit-identical and the bounded mode's re-fused item fraction reported.

use bench::{ExpArgs, Json, Table};
use datagen::GeneratedDomain;
use evaluation::{
    evaluate_days_sequential, evaluate_prepared_sequential, prepare_contexts, same_results,
    BatchRunner, ParallelRunner,
};
use std::time::{Duration, Instant};

// Count every heap allocation so the `--batch` mode can report how much
// allocation traffic the warm-arena runner removes (profiling::alloc).
#[global_allocator]
static ALLOC: profiling::CountingAllocator = profiling::CountingAllocator::new();

/// Median of a set of duration samples (mean of the two middles when even).
fn median_duration(samples: &mut [Duration]) -> Duration {
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

fn report(domain: &GeneratedDomain, batch_mode: bool, repeats: usize) -> Json {
    // Evaluate the reference day plus the surrounding days (up to three) in
    // one batch, so the timing summary reflects a realistic multi-snapshot
    // evaluation workload.
    let num_days = domain.collection.num_days();
    let reference = domain.collection.reference_day_index();
    let day_indices: Vec<usize> = (reference.saturating_sub(1)..num_days)
        .take(3)
        .collect();

    // Untimed warm-up of one day so the sequential pass (which runs first)
    // does not absorb the one-time costs — first touch of the snapshot
    // pages, allocator warm-up — that would bias the measured speedup in
    // the fan-out's favor.
    let _ = evaluate_days_sequential(&domain.collection, &day_indices[..1], false);

    // Context preparation (FusionProblem build + trust sampling) is paid
    // ONCE, outside the repeat loop: every repeat of the old
    // `evaluate_days_sequential` call re-seeded the identical preparation
    // inside the timed region, so on scale-10 scenario worlds `--repeats N`
    // rebuilt the same contexts N times. The preparation wall is measured
    // separately and added to the median evaluation wall below, keeping the
    // reported sequential wall comparable with the single parallel pass
    // (whose wall includes its own preparation).
    let allocs_before_prep = profiling::allocation_count();
    let prep_start = Instant::now();
    let contexts = prepare_contexts(&domain.collection, &day_indices, false);
    let prep_wall = prep_start.elapsed();
    let prep_allocs = profiling::allocation_count() - allocs_before_prep;

    // Timed sequential pass, `repeats` times. Fusion is deterministic, so
    // the repeats differ only in timing (asserted below); the reported
    // per-method elapsed and sequential wall-clock are medians across the
    // repeats. Allocation traffic is counted on the first repeat only (plus
    // the one-time preparation), to stay comparable with the single
    // parallel/batch passes.
    let mut walls: Vec<Duration> = Vec::with_capacity(repeats);
    let mut runs = Vec::with_capacity(repeats);
    let mut sequential_allocs = 0u64;
    for rep in 0..repeats {
        let allocs_before_sequential = profiling::allocation_count();
        let sequential_start = Instant::now();
        runs.push(evaluate_prepared_sequential(&contexts));
        walls.push(sequential_start.elapsed());
        if rep == 0 {
            sequential_allocs =
                prep_allocs + profiling::allocation_count() - allocs_before_sequential;
        }
    }
    let mut sequential = runs.pop().expect("--repeats is clamped to at least 1");
    for run in &runs {
        for (seq_day, rep_day) in sequential.iter().zip(run) {
            assert!(
                same_results(&seq_day.rows, &rep_day.rows),
                "sequential repeats diverged on day {}",
                seq_day.day
            );
        }
    }
    for (di, day_eval) in sequential.iter_mut().enumerate() {
        for (ri, row) in day_eval.rows.iter_mut().enumerate() {
            let mut samples: Vec<Duration> =
                runs.iter().map(|run| run[di].rows[ri].elapsed).collect();
            samples.push(row.elapsed);
            row.elapsed = median_duration(&mut samples);
        }
    }
    let sequential_wall = prep_wall + median_duration(&mut walls);

    let allocs_before_parallel = profiling::allocation_count();
    let evaluation = ParallelRunner::new().evaluate_days(&domain.collection, &day_indices);
    let parallel_allocs = profiling::allocation_count() - allocs_before_parallel;
    for (seq_day, par_day) in sequential.iter().zip(&evaluation.days) {
        assert!(
            same_results(&seq_day.rows, &par_day.rows),
            "parallel rows diverged from sequential rows on day {}",
            seq_day.day
        );
    }

    // Figure 12 proper: per-method time vs precision on the reference day,
    // timed on the uncontended sequential pass.
    let reference_rows = &sequential
        .iter()
        .find(|d| day_indices[d.day_index] == reference)
        .expect("reference day evaluated")
        .rows;
    let mut rows: Vec<_> = reference_rows.iter().collect();
    rows.sort_by_key(|a| a.elapsed);

    let day = domain.collection.reference_day();
    let mut table = Table::new(
        format!(
            "Figure 12 ({}): precision vs execution time ({} items, {} sources, median of {} timed repeat{})",
            domain.config.domain,
            day.snapshot.num_items(),
            day.snapshot.active_sources().len(),
            repeats,
            if repeats == 1 { "" } else { "s" },
        ),
        &["method", "time (s)", "precision", "rounds"],
    );
    for row in &rows {
        table.row(&[
            row.method.clone(),
            format!("{:.3}", row.elapsed.as_secs_f64()),
            format!("{:.3}", row.precision_without_trust),
            format!("{}", row.rounds),
        ]);
    }
    table.print();

    // Efficiency of the evaluation pipeline itself: measured sequential
    // wall-clock vs measured parallel wall-clock on the identical batch. On
    // a single thread the ratio only measures fan-out overhead (a
    // misleading "0.9x speedup"), so it is flagged invalid instead of
    // reported as a speedup.
    let measured_speedup = sequential_wall.as_secs_f64() / evaluation.wall_clock.as_secs_f64().max(f64::MIN_POSITIVE);
    let fanout_speedup_valid = evaluation.threads > 1;
    let speedup_note = if fanout_speedup_valid {
        format!("speedup {measured_speedup:.1}x")
    } else {
        "speedup n/a on 1 thread — the ratio would only measure fan-out overhead".to_string()
    };
    println!(
        "Fan-out: {} days x 16 methods on {} threads; wall-clock {:.2} s vs {:.2} s sequential ({}; {:.2} s summed task time)",
        evaluation.days.len(),
        evaluation.threads,
        evaluation.wall_clock.as_secs_f64(),
        sequential_wall.as_secs_f64(),
        speedup_note,
        evaluation.total_method_time.as_secs_f64(),
    );
    let per_day_method_time: Vec<Duration> = sequential
        .iter()
        .map(|d| d.rows.iter().map(|r| r.elapsed).sum())
        .collect();
    for (day_eval, t) in sequential.iter().zip(&per_day_method_time) {
        println!(
            "  day {:>2}: {:.2} s method time, slowest {}",
            day_eval.day,
            t.as_secs_f64(),
            day_eval
                .rows
                .iter()
                .max_by_key(|r| r.elapsed)
                .map(|r| format!("{} ({:.2} s)", r.method, r.elapsed.as_secs_f64()))
                .unwrap_or_default()
        );
    }

    // --batch: the same day selection through the sharded warm-arena
    // runner, checked bit-identical and reported wall-vs-wall with the
    // heap-allocation traffic of each pass.
    let mut batch_json: Option<Json> = None;
    if batch_mode {
        let allocs_before_batch = profiling::allocation_count();
        let batch = BatchRunner::new().evaluate_days(&domain.collection, &day_indices);
        let batch_allocs = profiling::allocation_count() - allocs_before_batch;
        for (seq_day, batch_day) in sequential.iter().zip(&batch.days) {
            assert!(
                same_results(&seq_day.rows, &batch_day.rows),
                "batch rows diverged from sequential rows on day {}",
                seq_day.day
            );
        }
        let wall = batch.wall_clock.as_secs_f64();
        println!(
            "Batch: {} days on {} warm shard(s); wall-clock {:.2} s \
             ({:.2}x vs parallel, {:.2}x vs sequential)",
            batch.days.len(),
            batch.num_shards,
            wall,
            evaluation.wall_clock.as_secs_f64() / wall.max(f64::MIN_POSITIVE),
            sequential_wall.as_secs_f64() / wall.max(f64::MIN_POSITIVE),
        );
        println!(
            "Allocations: sequential {sequential_allocs}, parallel {parallel_allocs}, \
             batch {batch_allocs} ({:.1}% of parallel)",
            100.0 * batch_allocs as f64 / (parallel_allocs as f64).max(1.0),
        );
        batch_json = Some(
            Json::object()
                .field("batch_wall_s", Json::Number(wall))
                .field("batch_shards", Json::int(batch.num_shards))
                .field("batch_allocations", Json::int(batch_allocs as usize))
                .field(
                    "parallel_allocations",
                    Json::int(parallel_allocs as usize),
                ),
        );
    }
    println!();

    // Machine-readable record for the perf trajectory (BENCH_fig12.json):
    // reference-day per-method timings from the uncontended sequential pass,
    // plus the measured pipeline-level wall clocks.
    let methods = Json::Array(
        reference_rows
            .iter()
            .map(|row| {
                Json::object()
                    .field("method", Json::string(&row.method))
                    .field("elapsed_s", Json::Number(row.elapsed.as_secs_f64()))
                    .field("precision", Json::Number(row.precision_without_trust))
                    .field("rounds", Json::int(row.rounds))
            })
            .collect(),
    );
    let mut doc = Json::object()
        .field("domain", Json::string(&domain.config.domain))
        .field("num_items", Json::int(day.snapshot.num_items()))
        .field("num_sources", Json::int(day.snapshot.active_sources().len()))
        .field("days_evaluated", Json::int(day_indices.len()))
        .field("sequential_wall_s", Json::Number(sequential_wall.as_secs_f64()))
        .field(
            "parallel_wall_s",
            Json::Number(evaluation.wall_clock.as_secs_f64()),
        )
        .field("fanout_speedup", Json::Number(measured_speedup))
        .field("fanout_speedup_valid", Json::Bool(fanout_speedup_valid))
        .field("threads", Json::int(evaluation.threads))
        .field("repeats", Json::int(repeats))
        .field("methods", methods);
    if let Some(batch) = batch_json {
        doc = doc.field("batch", batch);
    }
    doc
}

/// Intra-day chunking measurement: the heaviest registry method (AccuCopy)
/// on the kitchen-sink world, run sequentially and chunked across the rayon
/// pool on the same [`fusion::FusionProblem`]. Both runs are asserted
/// bit-identical (chunk boundaries are fixed and merges are ordered, so the
/// chunk count must be invisible in the output); per-pass timings are the
/// median of `repeats` samples. With one thread the chunked pass can only
/// measure chunking overhead, so the speedup is flagged invalid instead of
/// reported — the 1-core analogue of `fanout_speedup_valid`.
fn intra_day_report(args: &ExpArgs, repeats: usize) -> Json {
    let scenario = args
        .scenario("kitchen_sink")
        .expect("kitchen_sink is a registered scenario");
    let world = scenario.build();
    let day = world.domain.collection.reference_day();
    let problem = fusion::FusionProblem::from_snapshot(&day.snapshot);
    let method = fusion::method_by_name("AccuCopy").expect("AccuCopy is registered");
    let threads = evaluation::ChunkPolicy::from_pool().threads();
    // Always exercise the chunked code path in the artifact run, even on one
    // thread (where the timing is flagged invalid below): at least two
    // chunks, at most one per thread once threads > 1.
    let chunks = threads.max(2);
    let sequential_opts = fusion::FusionOptions::standard();
    let chunked_opts = fusion::FusionOptions::standard().with_intra_day_chunks(chunks);

    // Untimed warm-up doubling as the bit-identity assertion.
    let sequential_run = method.run(&problem, &sequential_opts);
    let chunked_run = method.run(&problem, &chunked_opts);
    assert_eq!(
        sequential_run.selection, chunked_run.selection,
        "chunked AccuCopy selection diverged from sequential"
    );
    let seq_bits: Vec<u64> = sequential_run.trust.overall.iter().map(|t| t.to_bits()).collect();
    let chunk_bits: Vec<u64> = chunked_run.trust.overall.iter().map(|t| t.to_bits()).collect();
    assert_eq!(
        seq_bits, chunk_bits,
        "chunked AccuCopy trust bits diverged from sequential"
    );

    let time_pass = |opts: &fusion::FusionOptions| {
        let mut samples: Vec<Duration> = (0..repeats)
            .map(|_| {
                let start = Instant::now();
                let _ = method.run(&problem, opts);
                start.elapsed()
            })
            .collect();
        median_duration(&mut samples)
    };
    let sequential_s = time_pass(&sequential_opts).as_secs_f64();
    let chunked_s = time_pass(&chunked_opts).as_secs_f64();
    let speedup = sequential_s / chunked_s.max(f64::MIN_POSITIVE);
    let valid = threads > 1;
    let note = if valid {
        format!("speedup {speedup:.1}x")
    } else {
        "speedup n/a on 1 thread — the ratio would only measure chunking overhead".to_string()
    };
    println!(
        "Intra-day: AccuCopy on kitchen_sink ({} items, {} observations); \
         sequential {sequential_s:.2} s vs {chunks} chunks on {threads} thread(s) \
         {chunked_s:.2} s ({note})",
        problem.num_items(),
        problem.num_claims(),
    );
    Json::object()
        .field("world", Json::string("kitchen_sink"))
        .field("method", Json::string("AccuCopy"))
        .field("num_items", Json::int(problem.num_items()))
        .field("chunks", Json::int(chunks))
        .field("sequential_s", Json::Number(sequential_s))
        .field("chunked_s", Json::Number(chunked_s))
        .field("intra_day_speedup", Json::Number(speedup))
        .field("intra_day_speedup_valid", Json::Bool(valid))
}

/// Delta-engine measurement: a dirty-fraction sweep (1%, 10%, 50% changed
/// claims per day) over a planted day-over-day mutation stream on a neutral
/// scenario world. For each fraction the same successor days run twice:
/// cold — every day fully re-prepared on a warm [`evaluation::ShardArena`]
/// (the strongest full-refill baseline: allocation-warm, full recompute) —
/// and warm, on one [`fusion::DeltaEngine`] in exact mode (results asserted
/// bit-identical to the cold pass). A bounded-mode pass reports how far the
/// dirty-set frontier shrinks the re-fused item count. Per-pass wall times
/// are medians of `repeats` samples.
fn delta_report(args: &ExpArgs, repeats: usize) -> Json {
    use evaluation::{DeltaUsage, ShardArena};
    use fusion::{DeltaEngine, DeltaPolicy};

    let world = datagen::Scenario::new("delta_sweep").with_seed(args.seed).build();
    let base = &world.domain.collection.reference_day().snapshot;
    let method_names = ["Vote", "Cosine"];
    let methods: Vec<_> = method_names
        .iter()
        .map(|n| fusion::method_by_name(n).expect("delta sweep methods are registered"))
        .collect();
    let options = fusion::FusionOptions::standard();
    let fractions = [0.01, 0.10, 0.50];
    let num_days = 3usize;

    let mut table = Table::new(
        format!(
            "Delta engine: warm re-fusion vs cold re-preparation ({} items, {} days x {} methods)",
            base.num_items(),
            num_days,
            method_names.len()
        ),
        &["dirty", "cold (s)", "warm exact (s)", "speedup", "bounded (s)", "bounded re-fused"],
    );
    let mut sweep = Vec::new();
    for &fraction in &fractions {
        let stream = datagen::mutation_stream(base, num_days, fraction, args.seed);

        // Correctness pass (also the warm-up): exact mode must match the
        // cold full re-preparation bit for bit on every day and method.
        {
            let mut arena = ShardArena::new();
            let mut engine = DeltaEngine::with_policy(DeltaPolicy::exact());
            engine.advance(&stream.days[0]);
            arena.prepare(&stream.days[0]);
            for day in &stream.days[1..] {
                engine.advance(day);
                arena.prepare(day);
                for method in &methods {
                    let (warm, _) = engine.run(method.as_ref(), &options);
                    let cold = arena.run(method.as_ref(), &options);
                    assert_eq!(
                        warm.selection,
                        cold.selection,
                        "delta exact selection diverged ({}, dirty {fraction})",
                        method.name()
                    );
                    let wb: Vec<u64> = warm.trust.overall.iter().map(|t| t.to_bits()).collect();
                    let cb: Vec<u64> = cold.trust.overall.iter().map(|t| t.to_bits()).collect();
                    assert_eq!(
                        wb,
                        cb,
                        "delta exact trust bits diverged ({}, dirty {fraction})",
                        method.name()
                    );
                }
            }
        }

        // Cold baseline: what a pipeline without warm state pays — each
        // successor day builds its problem from scratch and every method
        // runs with a throwaway scratch.
        let mut cold_samples: Vec<Duration> = (0..repeats)
            .map(|_| {
                let start = Instant::now();
                for day in &stream.days[1..] {
                    let problem = fusion::FusionProblem::from_snapshot(day);
                    for method in &methods {
                        let _ = method.run(&problem, &options);
                    }
                }
                start.elapsed()
            })
            .collect();
        let cold_s = median_duration(&mut cold_samples).as_secs_f64();

        // Warm passes: prime on the base day, then time advance + run over
        // the successor days.
        let time_warm = |policy: DeltaPolicy| -> (f64, DeltaUsage) {
            let mut samples: Vec<Duration> = Vec::with_capacity(repeats);
            let mut usage = DeltaUsage::default();
            for rep in 0..repeats {
                let mut engine = DeltaEngine::with_policy(policy.clone());
                engine.advance(&stream.days[0]);
                for method in &methods {
                    let _ = engine.run(method.as_ref(), &options);
                }
                let mut rep_usage = DeltaUsage::default();
                let start = Instant::now();
                for day in &stream.days[1..] {
                    rep_usage.record_advance(&engine.advance(day));
                    for method in &methods {
                        let (_, report) = engine.run(method.as_ref(), &options);
                        rep_usage.record_run(&report);
                    }
                }
                samples.push(start.elapsed());
                if rep == 0 {
                    usage = rep_usage;
                }
            }
            (median_duration(&mut samples).as_secs_f64(), usage)
        };
        let (exact_s, exact_usage) = time_warm(DeltaPolicy::exact());
        let (bounded_s, bounded_usage) = time_warm(DeltaPolicy::bounded());

        let speedup = cold_s / exact_s.max(f64::MIN_POSITIVE);
        table.row(&[
            format!("{:.0}%", 100.0 * fraction),
            format!("{cold_s:.3}"),
            format!("{exact_s:.3}"),
            format!("{speedup:.2}x"),
            format!("{bounded_s:.3}"),
            format!(
                "{}/{} ({:.1}%)",
                bounded_usage.fused_items,
                bounded_usage.total_items,
                100.0 * bounded_usage.fused_fraction()
            ),
        ]);
        sweep.push(
            Json::object()
                .field("dirty_fraction", Json::Number(fraction))
                .field("cold_s", Json::Number(cold_s))
                .field("warm_exact_s", Json::Number(exact_s))
                .field("exact_speedup", Json::Number(speedup))
                .field("warm_bounded_s", Json::Number(bounded_s))
                .field(
                    "bounded_fused_fraction",
                    Json::Number(bounded_usage.fused_fraction()),
                )
                .field("full_refreshes", Json::int(exact_usage.full_refreshes))
                .field(
                    "mean_dirty_fraction",
                    Json::Number(exact_usage.mean_dirty_fraction()),
                ),
        );
    }
    table.print();

    Json::object()
        .field("world", Json::string("delta_sweep"))
        .field("num_items", Json::int(base.num_items()))
        .field("days", Json::int(num_days))
        .field(
            "methods",
            Json::Array(method_names.iter().map(|n| Json::string(*n)).collect()),
        )
        .field("repeats", Json::int(repeats))
        .field("sweep", Json::Array(sweep))
}

fn main() {
    let args = ExpArgs::from_env();
    // The regression gate fails closed, and before any expensive work: a
    // typo'd threshold must not let CI pass (or waste a run) silently.
    if args.fail_on_regression_invalid {
        eprintln!("FAIL: --fail-on-regression requires a finite numeric PCT (e.g. 25)");
        std::process::exit(1);
    }
    if args.fail_on_regression.is_some() && args.compare.is_none() {
        eprintln!("FAIL: --fail-on-regression requires --compare FILE");
        std::process::exit(1);
    }

    // Load the baseline up front — before any expensive work, and before the
    // fresh artifact write below (the checked-in baseline and the default
    // output path are typically the same file; reading after the write would
    // silently diff the fresh run against itself). Under the gate, a
    // baseline that is unreadable, malformed, or shaped so that no
    // (domain, method) row can ever match is an **unusable baseline**: fail
    // closed with a diagnostic now instead of wasting the run.
    let baseline = args.compare.as_ref().map(|path| {
        (
            path.clone(),
            std::fs::read_to_string(path)
                .map_err(|e| e.to_string())
                .and_then(|text| Json::parse(&text)),
        )
    });
    if args.fail_on_regression.is_some() {
        if let Some((path, result)) = &baseline {
            let usable = match result {
                Ok(doc) => bench::baseline_usability(doc),
                Err(e) => Err(e.clone()),
            };
            if let Err(e) = usable {
                eprintln!("FAIL: unusable baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    let (stock, flight) = args.both_domains("Figure 12");
    let stock_json = report(&stock, args.batch, args.repeats);
    let flight_json = report(&flight, args.batch, args.repeats);
    let intra_day = intra_day_report(&args, args.repeats);
    let delta = delta_report(&args, args.repeats);
    println!(
        "Kernels: dispatched to the {} backend (CPU features: {})",
        fusion::kernels::backend_name(),
        fusion::kernels::detected_cpu_features(),
    );
    println!("Paper: VOTE finishes in under a second, most methods within 1-10 s, the ATTR");
    println!("       variants in 100-250 s, and AccuCopy in 855 s on Stock; longer execution");
    println!("       time does not guarantee better results.");

    // Emit the trajectory artifact so per-method timings are comparable
    // across PRs (elapsed fields are machine-dependent; compare like with
    // like). Path override: BENCH_FIG12_OUT.
    let out_path =
        std::env::var("BENCH_FIG12_OUT").unwrap_or_else(|_| "BENCH_fig12.json".to_string());
    let doc = Json::object()
        .field("schema_version", Json::int(1))
        .field("experiment", Json::string("fig12_efficiency"))
        .field("seed", Json::int(args.seed as usize))
        .field("scale", Json::Number(args.scale))
        .field("days", Json::Number(args.days))
        .field(
            "kernel_backend",
            Json::string(fusion::kernels::backend_name()),
        )
        .field(
            "cpu_features",
            Json::string(fusion::kernels::detected_cpu_features()),
        )
        .field(
            "rayon_threads",
            Json::int(evaluation::ChunkPolicy::from_pool().threads()),
        )
        .field(
            "available_parallelism",
            Json::int(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
        )
        .field("intra_day", intra_day)
        .field("delta", delta)
        .field("domains", Json::Array(vec![stock_json, flight_json]));

    match std::fs::write(&out_path, doc.render()) {
        Ok(()) => println!("\nWrote {out_path}"),
        Err(e) => eprintln!("\nCould not write {out_path}: {e}"),
    }

    // Perf trajectory: diff this run against the checked-in baseline. With
    // --fail-on-regression PCT the diff becomes a gate: any per-method
    // slowdown beyond PCT percent (or an unusable baseline) exits non-zero
    // instead of succeeding silently.
    if let Some((baseline_path, result)) = baseline {
        println!();
        match result {
            Ok(baseline) => {
                bench::print_fig12_comparison(&baseline, &doc);
                if let Some(pct) = args.fail_on_regression {
                    if !bench::same_scale(&baseline, &doc) {
                        eprintln!(
                            "FAIL: --fail-on-regression cannot be evaluated: baseline \
                             {baseline_path} uses different --seed/--scale/--days"
                        );
                        std::process::exit(1);
                    }
                    // A usable-shaped baseline can still share zero rows
                    // with this run (e.g. a different registry era). An
                    // empty diff must not read as "gate passed".
                    if bench::fig12_deltas(&baseline, &doc).is_empty() {
                        eprintln!(
                            "FAIL: unusable baseline {baseline_path}: no overlapping \
                             (domain, method) rows with the fresh run"
                        );
                        std::process::exit(1);
                    }
                    let regressions = bench::fig12_regressions(&baseline, &doc, pct);
                    if !regressions.is_empty() {
                        eprintln!(
                            "FAIL: {} per-method regression(s) beyond {pct}% vs {baseline_path}",
                            regressions.len()
                        );
                        std::process::exit(1);
                    }
                    println!("No per-method regressions beyond {pct}% — gate passed.");
                }
            }
            Err(e) => {
                eprintln!("Could not load baseline {baseline_path}: {e}");
                if args.fail_on_regression.is_some() {
                    std::process::exit(1);
                }
            }
        }
    }
}
