//! Figure 11 — error analysis of the best fusion method per domain
//! (AccuFormatAttr for Stock, AccuCopy for Flight): what causes its mistakes.

use bench::{format_percent, ExpArgs, Table};
use copydetect::known_copying;
use datagen::GeneratedDomain;
use evaluation::{analyze_errors, EvaluationContext};

fn report(domain: &GeneratedDomain, method_name: &str, table: &mut Table) {
    let day = domain.collection.reference_day();
    let oracle = known_copying(day.snapshot.schema());
    let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&oracle);
    let method = fusion::method_by_name(method_name).expect("registered method");
    let analysis = analyze_errors(&context, method.as_ref());
    for (cause, count) in &analysis.counts {
        let share = if analysis.total_errors == 0 {
            0.0
        } else {
            *count as f64 / analysis.total_errors as f64
        };
        table.row(&[
            domain.config.domain.clone(),
            analysis.method.clone(),
            cause.clone(),
            format!("{count}"),
            format_percent(share),
        ]);
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Figure 11");
    let mut table = Table::new(
        "Figure 11: error analysis of the best fusion method",
        &["domain", "method", "cause", "errors", "share"],
    );
    report(&stock, "AccuFormatAttr", &mut table);
    report(&flight, "AccuCopy", &mut table);
    table.print();
    println!("Paper (stock): 20% finer granularity, 35% imprecise trustworthiness, 10% copying,");
    println!("               5% similar false values, 5% false from accurate sources, 15% false dominant, 10% none dominant.");
    println!("Paper (flight): 50% imprecise trustworthiness, 10% copying, 5% similar false values, 35% false dominant.");
}
