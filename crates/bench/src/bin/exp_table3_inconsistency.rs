//! Table 3 — attributes with the lowest and highest value inconsistency,
//! measured by number of values, entropy, and deviation.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use profiling::attribute_inconsistency;

fn report(domain: &GeneratedDomain) {
    let name = &domain.config.domain;
    let per_attr = attribute_inconsistency(domain.reference_snapshot());

    for (measure, key) in [
        ("number of values", 0usize),
        ("entropy", 1),
        ("deviation", 2),
    ] {
        let mut sorted = per_attr.clone();
        sorted.sort_by(|a, b| {
            let (x, y) = match key {
                0 => (a.mean_num_values, b.mean_num_values),
                1 => (a.mean_entropy, b.mean_entropy),
                _ => (a.mean_deviation, b.mean_deviation),
            };
            y.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut table = Table::new(
            format!("Table 3 ({name}): attribute inconsistency by {measure}"),
            &["rank", "high-inconsistency attr", "value", "low-inconsistency attr", "value"],
        );
        let n = sorted.len();
        for i in 0..5.min(n) {
            let hi = &sorted[i];
            let lo = &sorted[n - 1 - i];
            let pick = |a: &profiling::AttributeInconsistency| match key {
                0 => a.mean_num_values,
                1 => a.mean_entropy,
                _ => a.mean_deviation,
            };
            table.row(&[
                format!("{}", i + 1),
                hi.name.clone(),
                format!("{:.2}", pick(hi)),
                lo.name.clone(),
                format!("{:.2}", pick(lo)),
            ]);
        }
        table.print();
    }
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 3");
    report(&stock);
    report(&flight);
    println!("Paper (stock): highest inconsistency on Volume, P/E, Market cap, EPS, Yield;");
    println!("               lowest on Previous close, Today's high/low, Last price, Open price.");
    println!("Paper (flight): highest on actual departure/arrival; lowest on scheduled departure and gates.");
}
