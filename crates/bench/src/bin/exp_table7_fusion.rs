//! Table 7 — precision of all sixteen data-fusion methods on one snapshot per
//! domain, with and without sampled source trustworthiness as input, together
//! with the trustworthiness deviation and difference.
//!
//! The sixteen methods are evaluated concurrently on the [`ParallelRunner`]
//! (one task per method); the reported per-method times are still each
//! method's own execution time, so the table matches the sequential runner's
//! output row for row.

use bench::{ExpArgs, Table};
use datagen::GeneratedDomain;
use evaluation::{EvaluationContext, ParallelRunner};

/// The paper's Table-7 precisions (without input trust) for reference.
const PAPER_WITHOUT_TRUST: [(&str, f64, f64); 16] = [
    ("Vote", 0.908, 0.864),
    ("Hub", 0.907, 0.857),
    ("AvgLog", 0.899, 0.839),
    ("Invest", 0.764, 0.754),
    ("PooledInvest", 0.856, 0.921),
    ("2-Estimates", 0.903, 0.754),
    ("3-Estimates", 0.905, 0.708),
    ("Cosine", 0.900, 0.791),
    ("TruthFinder", 0.911, 0.793),
    ("AccuPr", 0.899, 0.868),
    ("PopAccu", 0.892, 0.925),
    ("AccuSim", 0.913, 0.844),
    ("AccuFormat", 0.911, 0.844),
    ("AccuSimAttr", 0.929, 0.833),
    ("AccuFormatAttr", 0.930, 0.833),
    ("AccuCopy", 0.892, 0.943),
];

fn paper_value(method: &str, flight: bool) -> String {
    PAPER_WITHOUT_TRUST
        .iter()
        .find(|(m, _, _)| *m == method)
        .map(|(_, s, f)| format!("{:.3}", if flight { *f } else { *s }))
        .unwrap_or_else(|| "-".to_string())
}

fn report(domain: &GeneratedDomain, flight: bool) {
    let day = domain.collection.reference_day();
    let oracle = copydetect::known_copying(day.snapshot.schema());
    let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&oracle);
    let rows = ParallelRunner::new().evaluate_all_methods(&context);

    let mut table = Table::new(
        format!("Table 7 ({}): precision of data-fusion methods", domain.config.domain),
        &[
            "category",
            "method",
            "prec w. trust",
            "prec w/o trust",
            "paper w/o",
            "trust dev",
            "trust diff",
            "time (s)",
        ],
    );
    for row in &rows {
        table.row(&[
            row.category.clone(),
            row.method.clone(),
            format!("{:.3}", row.precision_with_trust),
            format!("{:.3}", row.precision_without_trust),
            paper_value(&row.method, flight),
            format!("{:.2}", row.trust_deviation),
            format!("{:+.2}", row.trust_difference),
            format!("{:.2}", row.elapsed.as_secs_f64()),
        ]);
    }
    table.print();

    let best = rows
        .iter()
        .max_by(|a, b| {
            a.precision_without_trust
                .partial_cmp(&b.precision_without_trust)
                .unwrap()
        })
        .unwrap();
    let vote = rows.iter().find(|r| r.method == "Vote").unwrap();
    println!(
        "Best without trust: {} ({:.3}); VOTE: {:.3}; improvement {:+.1} points.\n",
        best.method,
        best.precision_without_trust,
        vote.precision_without_trust,
        (best.precision_without_trust - vote.precision_without_trust) * 100.0
    );
}

fn main() {
    let args = ExpArgs::from_env();
    let (stock, flight) = args.both_domains("Table 7");
    report(&stock, false);
    report(&flight, true);
    println!("Paper: AccuFormatAttr is best on Stock (.930), AccuCopy on Flight (.943);");
    println!("       with sampled trust as input AccuCopy is best on both (.958 / .960).");
}
