//! Shared setup for the experiment binaries: command-line scaling arguments
//! and generation of the two paper domains.
//!
//! Every `exp_*` binary accepts the same optional arguments:
//!
//! ```text
//! exp_<name> [--scale S] [--days D] [--seed N] [--compare FILE]
//! ```
//!
//! * `--scale` multiplies the number of objects (default 0.25 — a quarter of
//!   the paper's 1000 stocks / 1200 flights — so the experiments run in
//!   seconds; pass 1.0 to reproduce at full scale);
//! * `--days`  multiplies the number of collection days (default 0.25);
//! * `--seed`  master seed (default 2012, the paper's publication year);
//! * `--compare` (only meaningful to `exp_fig12_efficiency`) diffs the fresh
//!   run against a checked-in `BENCH_fig12.json` trajectory point and prints
//!   per-method speedup/regression.

use datagen::{flight_config, generate, stock_config, GeneratedDomain};

/// Parsed experiment arguments.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Object-count multiplier relative to the paper scale.
    pub scale: f64,
    /// Day-count multiplier relative to the paper scale.
    pub days: f64,
    /// Master seed.
    pub seed: u64,
    /// Baseline artifact to diff a fresh run against
    /// (`exp_fig12_efficiency --compare BENCH_fig12.json`).
    pub compare: Option<String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            days: 0.25,
            seed: 2012,
            compare: None,
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args()` (unknown arguments are ignored).
    pub fn from_env() -> Self {
        let mut parsed = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.scale = v;
                    }
                    i += 1;
                }
                "--days" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.days = v;
                    }
                    i += 1;
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.seed = v;
                    }
                    i += 1;
                }
                "--compare" => {
                    if let Some(v) = args.get(i + 1) {
                        parsed.compare = Some(v.clone());
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        parsed
    }

    /// Generate the Stock domain at the configured scale.
    pub fn stock(&self) -> GeneratedDomain {
        generate(&stock_config(self.seed).scaled(self.scale, self.days))
    }

    /// Generate the Flight domain at the configured scale.
    pub fn flight(&self) -> GeneratedDomain {
        generate(&flight_config(self.seed).scaled(self.scale, self.days))
    }

    /// Generate both domains and print a short banner.
    pub fn both_domains(&self, experiment: &str) -> (GeneratedDomain, GeneratedDomain) {
        println!(
            "[{experiment}] scale={} days={} seed={}  (pass --scale 1.0 --days 1.0 for paper scale)\n",
            self.scale, self.days, self.seed
        );
        (self.stock(), self.flight())
    }
}

/// Format a `(measured, paper)` pair for the report tables.
pub fn vs_paper(measured: f64, paper: f64) -> (String, String) {
    (format!("{measured:.3}"), format!("{paper:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reduced_scale() {
        let args = ExpArgs::default();
        assert!(args.scale < 1.0);
        assert_eq!(args.seed, 2012);
        let stock = generate(&stock_config(args.seed).scaled(0.01, 0.1));
        assert_eq!(stock.config.domain, "stock");
    }

    #[test]
    fn vs_paper_formats_three_decimals() {
        assert_eq!(vs_paper(0.9081, 0.908), ("0.908".into(), "0.908".into()));
    }
}
