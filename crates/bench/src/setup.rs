//! Shared setup for the experiment binaries: command-line scaling arguments
//! and generation of the two paper domains.
//!
//! Every `exp_*` binary accepts the same optional arguments:
//!
//! ```text
//! exp_<name> [--scale S] [--days D] [--seed N] [--compare FILE]
//!            [--batch] [--repeats N] [--fail-on-regression PCT]
//! ```
//!
//! * `--scale` multiplies the number of objects (default 0.25 — a quarter of
//!   the paper's 1000 stocks / 1200 flights — so the experiments run in
//!   seconds; pass 1.0 to reproduce at full scale);
//! * `--days`  multiplies the number of collection days (default 0.25);
//! * `--seed`  master seed (default 2012, the paper's publication year);
//! * `--compare` (only meaningful to `exp_fig12_efficiency`) diffs the fresh
//!   run against a checked-in `BENCH_fig12.json` trajectory point and prints
//!   per-method speedup/regression;
//! * `--batch` (read by `exp_fig8_accuracy` and `exp_fig12_efficiency`)
//!   additionally runs the sharded warm-arena `BatchRunner` on the same
//!   day selection, asserts its rows equal the sequential/parallel passes,
//!   and reports wall-vs-wall speedup plus heap-allocation counts;
//! * `--repeats` (read by `exp_fig12_efficiency`) repeats the timed
//!   sequential pass N times (default 3) and reports the per-method
//!   **median**, which suppresses one-off scheduler noise on shared or
//!   single-core machines;
//! * `--fail-on-regression PCT` (with `--compare`) exits with a non-zero
//!   status when any per-method timing regressed by more than `PCT` percent
//!   against the baseline artifact — the CI-facing form of the trajectory
//!   diff, which otherwise only prints.

use datagen::{flight_config, generate, stock_config, GeneratedDomain};

/// Parsed experiment arguments.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Object-count multiplier relative to the paper scale.
    pub scale: f64,
    /// Day-count multiplier relative to the paper scale.
    pub days: f64,
    /// Master seed.
    pub seed: u64,
    /// Baseline artifact to diff a fresh run against
    /// (`exp_fig12_efficiency --compare BENCH_fig12.json`).
    pub compare: Option<String>,
    /// Also run the sharded warm-arena batch runner and report its
    /// wall-vs-wall speedup and allocation counts (`--batch`).
    pub batch: bool,
    /// Number of timed repeats of the sequential pass; per-method timings
    /// are the **median** across repeats (`--repeats N`, default 3).
    pub repeats: usize,
    /// With `--compare`: exit non-zero when any per-method timing regressed
    /// by more than this many percent (`--fail-on-regression PCT`).
    pub fail_on_regression: Option<f64>,
    /// `--fail-on-regression` was passed with a missing or unparseable PCT.
    /// The gate binaries must treat this as a hard error (fail **closed**) —
    /// silently skipping a CI gate on an operator typo defeats its purpose.
    pub fail_on_regression_invalid: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            days: 0.25,
            seed: 2012,
            compare: None,
            batch: false,
            repeats: 3,
            fail_on_regression: None,
            fail_on_regression_invalid: false,
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args()` (unknown arguments are ignored).
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args)
    }

    /// Parse from an explicit argument vector (index 0 is the program name,
    /// as in `std::env::args()`); unknown arguments are ignored.
    pub fn from_args(args: &[String]) -> Self {
        let mut parsed = Self::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.scale = v;
                    }
                    i += 1;
                }
                "--days" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.days = v;
                    }
                    i += 1;
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.seed = v;
                    }
                    i += 1;
                }
                "--compare" => match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        parsed.compare = Some(v.clone());
                        i += 1;
                    }
                    // Missing or flag-like value: leave the baseline unset
                    // and do NOT swallow the following flag (the
                    // --fail-on-regression gate then fails closed on the
                    // absent --compare).
                    _ => {}
                },
                "--batch" => {
                    parsed.batch = true;
                }
                "--repeats" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                        parsed.repeats = v.max(1);
                        i += 1;
                    }
                }
                "--fail-on-regression" => {
                    match args.get(i + 1).map(|s| s.parse::<f64>()) {
                        Some(Ok(v)) if v.is_finite() => {
                            parsed.fail_on_regression = Some(v);
                            i += 1;
                        }
                        // Missing or malformed PCT: record the error and do
                        // NOT consume the next token, so a following flag
                        // (e.g. `--batch`) still applies.
                        _ => parsed.fail_on_regression_invalid = true,
                    }
                }
                _ => {}
            }
            i += 1;
        }
        parsed
    }

    /// Generate the Stock domain at the configured scale.
    pub fn stock(&self) -> GeneratedDomain {
        generate(&stock_config(self.seed).scaled(self.scale, self.days))
    }

    /// Generate the Flight domain at the configured scale.
    pub fn flight(&self) -> GeneratedDomain {
        generate(&flight_config(self.seed).scaled(self.scale, self.days))
    }

    /// Generate both domains and print a short banner.
    pub fn both_domains(&self, experiment: &str) -> (GeneratedDomain, GeneratedDomain) {
        println!(
            "[{experiment}] scale={} days={} seed={}  (pass --scale 1.0 --days 1.0 for paper scale)\n",
            self.scale, self.days, self.seed
        );
        (self.stock(), self.flight())
    }
}

/// Format a `(measured, paper)` pair for the report tables.
pub fn vs_paper(measured: f64, paper: f64) -> (String, String) {
    (format!("{measured:.3}"), format!("{paper:.3}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reduced_scale() {
        let args = ExpArgs::default();
        assert!(args.scale < 1.0);
        assert_eq!(args.seed, 2012);
        let stock = generate(&stock_config(args.seed).scaled(0.01, 0.1));
        assert_eq!(stock.config.domain, "stock");
    }

    #[test]
    fn vs_paper_formats_three_decimals() {
        assert_eq!(vs_paper(0.9081, 0.908), ("0.908".into(), "0.908".into()));
    }

    fn args_of(parts: &[&str]) -> Vec<String> {
        std::iter::once("exp_test")
            .chain(parts.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn batch_and_regression_flags_parse() {
        let parsed = ExpArgs::from_args(&args_of(&[
            "--batch",
            "--fail-on-regression",
            "7.5",
            "--scale",
            "0.5",
        ]));
        assert!(parsed.batch);
        assert_eq!(parsed.fail_on_regression, Some(7.5));
        assert_eq!(parsed.scale, 0.5);

        let defaults = ExpArgs::from_args(&args_of(&[]));
        assert!(!defaults.batch);
        assert_eq!(defaults.fail_on_regression, None);
        assert!(!defaults.fail_on_regression_invalid);
    }

    /// `--repeats` defaults to 3 medians-worth of passes, parses an explicit
    /// count, and clamps 0 to 1 (a zero-repeat run would report nothing).
    #[test]
    fn repeats_flag_parses_and_clamps() {
        assert_eq!(ExpArgs::from_args(&args_of(&[])).repeats, 3);
        assert_eq!(ExpArgs::from_args(&args_of(&["--repeats", "5"])).repeats, 5);
        assert_eq!(ExpArgs::from_args(&args_of(&["--repeats", "0"])).repeats, 1);
        // Malformed count keeps the default and does not swallow a flag.
        let bad = ExpArgs::from_args(&args_of(&["--repeats", "--batch"]));
        assert_eq!(bad.repeats, 3);
        assert!(bad.batch);
    }

    /// The regression gate must fail **closed**: a malformed or missing PCT
    /// is flagged as invalid (the gate binaries exit non-zero on it), and
    /// the bad token is not swallowed — a following flag still applies.
    #[test]
    fn malformed_regression_threshold_is_flagged_not_ignored() {
        let bad = ExpArgs::from_args(&args_of(&["--fail-on-regression", "5%"]));
        assert_eq!(bad.fail_on_regression, None);
        assert!(bad.fail_on_regression_invalid);

        // The next flag is not consumed as the PCT value.
        let chained = ExpArgs::from_args(&args_of(&["--fail-on-regression", "--batch"]));
        assert_eq!(chained.fail_on_regression, None);
        assert!(chained.fail_on_regression_invalid);
        assert!(chained.batch, "--batch must survive the malformed gate flag");

        // Trailing flag with no value at all.
        let missing = ExpArgs::from_args(&args_of(&["--fail-on-regression"]));
        assert!(missing.fail_on_regression_invalid);

        // Non-finite thresholds are rejected too.
        let nan = ExpArgs::from_args(&args_of(&["--fail-on-regression", "NaN"]));
        assert_eq!(nan.fail_on_regression, None);
        assert!(nan.fail_on_regression_invalid);
    }

    /// `--compare` must not swallow a following flag as its file path.
    #[test]
    fn compare_never_consumes_a_following_flag() {
        let chained = ExpArgs::from_args(&args_of(&["--compare", "--batch"]));
        assert_eq!(chained.compare, None);
        assert!(chained.batch, "--batch must survive the valueless --compare");

        let ok = ExpArgs::from_args(&args_of(&["--compare", "BENCH_fig12.json", "--batch"]));
        assert_eq!(ok.compare.as_deref(), Some("BENCH_fig12.json"));
        assert!(ok.batch);

        let trailing = ExpArgs::from_args(&args_of(&["--compare"]));
        assert_eq!(trailing.compare, None);
    }
}
