//! Shared setup for the experiment binaries: command-line scaling arguments
//! and generation of the two paper domains.
//!
//! Every `exp_*` binary accepts the same optional arguments:
//!
//! ```text
//! exp_<name> [--scale S] [--days D] [--seed N] [--compare FILE]
//!            [--batch] [--delta] [--repeats N] [--fail-on-regression PCT]
//! ```
//!
//! * `--scale` multiplies the number of objects (default 0.25 — a quarter of
//!   the paper's 1000 stocks / 1200 flights — so the experiments run in
//!   seconds; pass 1.0 to reproduce at full scale);
//! * `--days`  multiplies the number of collection days (default 0.25);
//! * `--seed`  master seed (default 2012, the paper's publication year);
//! * `--compare` (only meaningful to `exp_fig12_efficiency`) diffs the fresh
//!   run against a checked-in `BENCH_fig12.json` trajectory point and prints
//!   per-method speedup/regression;
//! * `--batch` (read by `exp_fig8_accuracy` and `exp_fig12_efficiency`)
//!   additionally runs the sharded warm-arena `BatchRunner` on the same
//!   day selection, asserts its rows equal the sequential/parallel passes,
//!   and reports wall-vs-wall speedup plus heap-allocation counts;
//! * `--delta` (read by `exp_fig9_incremental` and `exp_table9_month`)
//!   additionally runs the same workload on one warm [`fusion::DeltaEngine`]
//!   (exact mode), asserts the rows equal the cold pass where the contract
//!   guarantees it, and reports warm-vs-cold wall time plus re-fused item
//!   counts;
//! * `--repeats` (read by `exp_fig12_efficiency`) repeats the timed
//!   sequential pass N times (default 3) and reports the per-method
//!   **median**, which suppresses one-off scheduler noise on shared or
//!   single-core machines;
//! * `--fail-on-regression PCT` (with `--compare`) exits with a non-zero
//!   status when any per-method timing regressed by more than `PCT` percent
//!   against the baseline artifact — the CI-facing form of the trajectory
//!   diff, which otherwise only prints.
//!
//! `exp_scenarios` additionally reads:
//!
//! * `--scenario NAME` — run a single named stress scenario instead of all;
//! * `--check` — compare each rendered golden table against the checked-in
//!   file and exit non-zero on any diff (the regression-gate form);
//! * `--bless` — rewrite the checked-in golden tables from this run;
//! * `--golden-dir DIR` — where the golden tables live (default
//!   `tests/golden`).

use datagen::scenario::{by_name, Scenario};
use datagen::{flight_config, generate, stock_config, GeneratedDomain};

/// Parsed experiment arguments.
#[derive(Debug, Clone)]
pub struct ExpArgs {
    /// Object-count multiplier relative to the paper scale.
    pub scale: f64,
    /// Day-count multiplier relative to the paper scale.
    pub days: f64,
    /// Master seed.
    pub seed: u64,
    /// Baseline artifact to diff a fresh run against
    /// (`exp_fig12_efficiency --compare BENCH_fig12.json`).
    pub compare: Option<String>,
    /// Also run the sharded warm-arena batch runner and report its
    /// wall-vs-wall speedup and allocation counts (`--batch`).
    pub batch: bool,
    /// Number of timed repeats of the sequential pass; per-method timings
    /// are the **median** across repeats (`--repeats N`, default 3).
    pub repeats: usize,
    /// Also run the warm delta-engine leg and report warm-vs-cold wall time
    /// plus re-fused item counts (`--delta`, read by `exp_fig9_incremental`
    /// and `exp_table9_month`).
    pub delta: bool,
    /// With `--compare`: exit non-zero when any per-method timing regressed
    /// by more than this many percent (`--fail-on-regression PCT`).
    pub fail_on_regression: Option<f64>,
    /// `--fail-on-regression` was passed with a missing or unparseable PCT.
    /// The gate binaries must treat this as a hard error (fail **closed**) —
    /// silently skipping a CI gate on an operator typo defeats its purpose.
    pub fail_on_regression_invalid: bool,
    /// Run only this named stress scenario (`--scenario NAME`,
    /// `exp_scenarios`).
    pub scenario: Option<String>,
    /// Compare rendered golden tables against the checked-in files and exit
    /// non-zero on any diff (`--check`, `exp_scenarios`).
    pub check: bool,
    /// Rewrite the checked-in golden tables (`--bless`, `exp_scenarios`).
    pub bless: bool,
    /// Directory holding the golden tables (`--golden-dir`, default
    /// `tests/golden`).
    pub golden_dir: String,
    /// `--scale`/`--days`/`--seed` were passed explicitly (as opposed to
    /// defaulted). `exp_scenarios` refuses explicit overrides in `--check`/
    /// `--bless` mode — golden tables are only meaningful at the golden
    /// seed and scale.
    pub scale_explicit: bool,
    /// `--days` was passed explicitly; see [`scale_explicit`](Self::scale_explicit).
    pub days_explicit: bool,
    /// `--seed` was passed explicitly; see [`scale_explicit`](Self::scale_explicit).
    pub seed_explicit: bool,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: 0.25,
            days: 0.25,
            seed: 2012,
            compare: None,
            batch: false,
            repeats: 3,
            delta: false,
            fail_on_regression: None,
            fail_on_regression_invalid: false,
            scenario: None,
            check: false,
            bless: false,
            golden_dir: "tests/golden".to_string(),
            scale_explicit: false,
            days_explicit: false,
            seed_explicit: false,
        }
    }
}

impl ExpArgs {
    /// Parse from `std::env::args()` (unknown arguments are ignored).
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_args(&args)
    }

    /// Parse from an explicit argument vector (index 0 is the program name,
    /// as in `std::env::args()`); unknown arguments are ignored.
    pub fn from_args(args: &[String]) -> Self {
        let mut parsed = Self::default();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.scale = v;
                        parsed.scale_explicit = true;
                    }
                    i += 1;
                }
                "--days" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.days = v;
                        parsed.days_explicit = true;
                    }
                    i += 1;
                }
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        parsed.seed = v;
                        parsed.seed_explicit = true;
                    }
                    i += 1;
                }
                "--compare" => match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        parsed.compare = Some(v.clone());
                        i += 1;
                    }
                    // Missing or flag-like value: leave the baseline unset
                    // and do NOT swallow the following flag (the
                    // --fail-on-regression gate then fails closed on the
                    // absent --compare).
                    _ => {}
                },
                "--batch" => {
                    parsed.batch = true;
                }
                "--delta" => {
                    parsed.delta = true;
                }
                "--repeats" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                        parsed.repeats = v.max(1);
                        i += 1;
                    }
                }
                "--scenario" => match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        parsed.scenario = Some(v.clone());
                        i += 1;
                    }
                    // Missing or flag-like value: leave unset, don't swallow
                    // the following flag (exp_scenarios then runs all
                    // scenarios, which is the safe default).
                    _ => {}
                },
                "--check" => {
                    parsed.check = true;
                }
                "--bless" => {
                    parsed.bless = true;
                }
                "--golden-dir" => match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        parsed.golden_dir = v.clone();
                        i += 1;
                    }
                    _ => {}
                },
                "--fail-on-regression" => {
                    match args.get(i + 1).map(|s| s.parse::<f64>()) {
                        Some(Ok(v)) if v.is_finite() => {
                            parsed.fail_on_regression = Some(v);
                            i += 1;
                        }
                        // Missing or malformed PCT: record the error and do
                        // NOT consume the next token, so a following flag
                        // (e.g. `--batch`) still applies.
                        _ => parsed.fail_on_regression_invalid = true,
                    }
                }
                _ => {}
            }
            i += 1;
        }
        parsed
    }

    /// Generate the Stock domain at the configured scale.
    pub fn stock(&self) -> GeneratedDomain {
        generate(&stock_config(self.seed).scaled(self.scale, self.days))
    }

    /// Generate the Flight domain at the configured scale.
    pub fn flight(&self) -> GeneratedDomain {
        generate(&flight_config(self.seed).scaled(self.scale, self.days))
    }

    /// True when any of `--seed`/`--scale`/`--days` was passed explicitly
    /// (the golden `--check`/`--bless` modes refuse overrides).
    pub fn scale_overridden(&self) -> bool {
        self.scale_explicit || self.days_explicit || self.seed_explicit
    }

    /// The named stress scenario, at its golden defaults or with the
    /// explicitly passed overrides applied. For scenarios, `--scale` is the
    /// object multiplier over the paper's 1000 objects (so `--scale 10`
    /// reaches ~160k items/day) and `--days` is an **absolute** day count.
    pub fn scenario(&self, name: &str) -> Option<Scenario> {
        let mut scenario = by_name(name)?;
        if self.seed_explicit {
            scenario = scenario.with_seed(self.seed);
        }
        if self.scale_explicit {
            scenario = scenario.scaled_to(self.scale);
        }
        if self.days_explicit {
            scenario = scenario.over_days(self.days.round().max(1.0) as u32);
        }
        Some(scenario)
    }

    /// Generate both domains and print a short banner.
    pub fn both_domains(&self, experiment: &str) -> (GeneratedDomain, GeneratedDomain) {
        println!(
            "[{experiment}] scale={} days={} seed={}  (pass --scale 1.0 --days 1.0 for paper scale)\n",
            self.scale, self.days, self.seed
        );
        (self.stock(), self.flight())
    }
}

/// Format a `(measured, paper)` pair for the report tables.
pub fn vs_paper(measured: f64, paper: f64) -> (String, String) {
    (format!("{measured:.3}"), format!("{paper:.3}"))
}

/// The long-row capacity world the `vote_plane` kernel gate re-runs on: the
/// `scale10_capacity` scenario (extra high-coverage sources lengthen every
/// item's provider row to ~75+ entries) at the given object scale over one
/// day. At `scale = 10.0` this is the full ~160k-items/day workload; benches
/// use a smaller scale to keep setup time sane.
pub fn long_row_scenario(scale: f64) -> Scenario {
    by_name("scale10_capacity")
        .expect("scale10_capacity is a registered scenario")
        .scaled_to(scale)
        .over_days(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reduced_scale() {
        let args = ExpArgs::default();
        assert!(args.scale < 1.0);
        assert_eq!(args.seed, 2012);
        let stock = generate(&stock_config(args.seed).scaled(0.01, 0.1));
        assert_eq!(stock.config.domain, "stock");
    }

    #[test]
    fn vs_paper_formats_three_decimals() {
        assert_eq!(vs_paper(0.9081, 0.908), ("0.908".into(), "0.908".into()));
    }

    fn args_of(parts: &[&str]) -> Vec<String> {
        std::iter::once("exp_test")
            .chain(parts.iter().copied())
            .map(String::from)
            .collect()
    }

    #[test]
    fn batch_and_regression_flags_parse() {
        let parsed = ExpArgs::from_args(&args_of(&[
            "--batch",
            "--delta",
            "--fail-on-regression",
            "7.5",
            "--scale",
            "0.5",
        ]));
        assert!(parsed.batch);
        assert!(parsed.delta);
        assert_eq!(parsed.fail_on_regression, Some(7.5));
        assert_eq!(parsed.scale, 0.5);

        let defaults = ExpArgs::from_args(&args_of(&[]));
        assert!(!defaults.batch);
        assert!(!defaults.delta);
        assert_eq!(defaults.fail_on_regression, None);
        assert!(!defaults.fail_on_regression_invalid);
    }

    /// `--repeats` defaults to 3 medians-worth of passes, parses an explicit
    /// count, and clamps 0 to 1 (a zero-repeat run would report nothing).
    #[test]
    fn repeats_flag_parses_and_clamps() {
        assert_eq!(ExpArgs::from_args(&args_of(&[])).repeats, 3);
        assert_eq!(ExpArgs::from_args(&args_of(&["--repeats", "5"])).repeats, 5);
        assert_eq!(ExpArgs::from_args(&args_of(&["--repeats", "0"])).repeats, 1);
        // Malformed count keeps the default and does not swallow a flag.
        let bad = ExpArgs::from_args(&args_of(&["--repeats", "--batch"]));
        assert_eq!(bad.repeats, 3);
        assert!(bad.batch);
    }

    /// The regression gate must fail **closed**: a malformed or missing PCT
    /// is flagged as invalid (the gate binaries exit non-zero on it), and
    /// the bad token is not swallowed — a following flag still applies.
    #[test]
    fn malformed_regression_threshold_is_flagged_not_ignored() {
        let bad = ExpArgs::from_args(&args_of(&["--fail-on-regression", "5%"]));
        assert_eq!(bad.fail_on_regression, None);
        assert!(bad.fail_on_regression_invalid);

        // The next flag is not consumed as the PCT value.
        let chained = ExpArgs::from_args(&args_of(&["--fail-on-regression", "--batch"]));
        assert_eq!(chained.fail_on_regression, None);
        assert!(chained.fail_on_regression_invalid);
        assert!(chained.batch, "--batch must survive the malformed gate flag");

        // Trailing flag with no value at all.
        let missing = ExpArgs::from_args(&args_of(&["--fail-on-regression"]));
        assert!(missing.fail_on_regression_invalid);

        // Non-finite thresholds are rejected too.
        let nan = ExpArgs::from_args(&args_of(&["--fail-on-regression", "NaN"]));
        assert_eq!(nan.fail_on_regression, None);
        assert!(nan.fail_on_regression_invalid);
    }

    #[test]
    fn scenario_flags_parse() {
        let parsed = ExpArgs::from_args(&args_of(&[
            "--scenario",
            "copier_ring",
            "--check",
            "--golden-dir",
            "tests/golden",
        ]));
        assert_eq!(parsed.scenario.as_deref(), Some("copier_ring"));
        assert!(parsed.check);
        assert!(!parsed.bless);
        assert_eq!(parsed.golden_dir, "tests/golden");
        assert!(!parsed.scale_overridden());

        // Valueless --scenario / --golden-dir must not swallow a flag.
        let chained = ExpArgs::from_args(&args_of(&["--scenario", "--bless"]));
        assert_eq!(chained.scenario, None);
        assert!(chained.bless);
        let dir = ExpArgs::from_args(&args_of(&["--golden-dir", "--check"]));
        assert_eq!(dir.golden_dir, "tests/golden");
        assert!(dir.check);
    }

    #[test]
    fn explicit_scale_overrides_are_tracked_and_applied() {
        let defaults = ExpArgs::from_args(&args_of(&[]));
        assert!(!defaults.scale_overridden());
        let golden = defaults.scenario("copier_ring").unwrap();
        assert_eq!(golden, datagen::scenario::by_name("copier_ring").unwrap());

        let scaled = ExpArgs::from_args(&args_of(&["--scale", "10", "--days", "2"]));
        assert!(scaled.scale_overridden());
        let s = scaled.scenario("scale10_capacity").unwrap();
        assert_eq!(s.config().num_objects, 10_000);
        assert_eq!(s.num_days, 2);
        assert!(scaled.scenario("nonsense").is_none());
    }

    #[test]
    fn long_row_scenario_lengthens_rows() {
        let s = long_row_scenario(0.5);
        let cfg = s.config();
        assert_eq!(cfg.num_objects, 500);
        assert_eq!(cfg.num_days, 1);
        assert_eq!(cfg.num_sources(), 80);
    }

    /// `--compare` must not swallow a following flag as its file path.
    #[test]
    fn compare_never_consumes_a_following_flag() {
        let chained = ExpArgs::from_args(&args_of(&["--compare", "--batch"]));
        assert_eq!(chained.compare, None);
        assert!(chained.batch, "--batch must survive the valueless --compare");

        let ok = ExpArgs::from_args(&args_of(&["--compare", "BENCH_fig12.json", "--batch"]));
        assert_eq!(ok.compare.as_deref(), Some("BENCH_fig12.json"));
        assert!(ok.batch);

        let trailing = ExpArgs::from_args(&args_of(&["--compare"]));
        assert_eq!(trailing.compare, None);
    }
}
