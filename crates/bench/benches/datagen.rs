//! Criterion micro-benchmark of the Deep-Web data generators themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{flight_config, generate, stock_config};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datagen");
    group.bench_function("stock_small", |b| {
        let config = stock_config(2012).scaled(0.02, 0.1);
        b.iter(|| generate(&config))
    });
    group.bench_function("flight_small", |b| {
        let config = flight_config(2012).scaled(0.02, 0.1);
        b.iter(|| generate(&config))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_generation
}
criterion_main!(benches);
