//! Criterion benchmarks of intra-day (within-snapshot) parallel fusion —
//! the `fusion::chunking` layer behind the Figure-12 efficiency story.
//!
//! One method on one day is the unit the paper times; chunking cuts that
//! day's candidate axis into contiguous item ranges and runs them on the
//! rayon pool, so a single heavy method (AccuPr, AccuCopy) can saturate the
//! cores that the across-day fan-out leaves idle on few-big-days workloads.
//! The benches compare:
//!
//! * `sequential` — the unchunked baseline (`intra_day_chunks = 0`);
//! * `chunked_t{1,2,4}` — the chunked path under `RAYON_NUM_THREADS` ∈
//!   {1, 2, 4} (the rayon stand-in reads the variable per call, so the legs
//!   are meaningful within one process). The t1 leg prices the pure
//!   chunking overhead; t2/t4 show the scaling on multicore hosts;
//! * `kernel_*` — the chunked path under each kernel backend (dispatched
//!   and forced-scalar), preserving the backend comparison the other
//!   benches run.
//!
//! The world is the kitchen-sink scenario (every adversarial knob stacked)
//! at its CI-sized golden scale; `--scale 10` on `exp_fig12_efficiency`
//! covers the full-size measurement. A correctness guard asserts the
//! chunked runs are bit-identical to sequential before anything is timed.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::scenario::by_name;
use fusion::kernels::{self, Backend};
use fusion::{method_by_name, FusionMethod, FusionOptions, FusionProblem};

const THREAD_LEGS: [usize; 3] = [1, 2, 4];

fn kitchen_sink_problem() -> FusionProblem {
    let world = by_name("kitchen_sink")
        .expect("kitchen_sink is a registered scenario")
        .build();
    let day = world.domain.collection.reference_day();
    FusionProblem::from_snapshot(&day.snapshot)
}

/// Bit-identity guard: a timing comparison of the chunked and sequential
/// paths is only meaningful if they compute the same thing.
fn assert_chunk_invariant(method: &dyn FusionMethod, problem: &FusionProblem, chunks: usize) {
    let sequential = method.run(problem, &FusionOptions::standard());
    let chunked = method.run(
        problem,
        &FusionOptions::standard().with_intra_day_chunks(chunks),
    );
    assert_eq!(
        sequential.selection,
        chunked.selection,
        "chunked {} selection diverged from sequential",
        method.name()
    );
    let seq_bits: Vec<u64> = sequential.trust.overall.iter().map(|t| t.to_bits()).collect();
    let chunk_bits: Vec<u64> = chunked.trust.overall.iter().map(|t| t.to_bits()).collect();
    assert_eq!(
        seq_bits,
        chunk_bits,
        "chunked {} trust bits diverged from sequential",
        method.name()
    );
}

fn bench_intra_day(c: &mut Criterion) {
    let problem = kitchen_sink_problem();
    let methods = [
        method_by_name("AccuPr").expect("AccuPr is registered"),
        method_by_name("AccuCopy").expect("AccuCopy is registered"),
    ];
    for method in &methods {
        assert_chunk_invariant(method.as_ref(), &problem, 4);
    }

    let sequential = FusionOptions::standard();
    let mut group = c.benchmark_group("intra_day");
    for method in &methods {
        group.bench_function(format!("{}/sequential", method.name()), |b| {
            b.iter(|| method.run(&problem, &sequential))
        });
        for threads in THREAD_LEGS {
            // One chunk per thread, with a floor of two so the t1 leg still
            // exercises (and prices) the chunked code path.
            let opts = FusionOptions::standard().with_intra_day_chunks(threads.max(2));
            std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
            group.bench_function(format!("{}/chunked_t{threads}", method.name()), |b| {
                b.iter(|| method.run(&problem, &opts))
            });
        }
        std::env::remove_var("RAYON_NUM_THREADS");
    }
    group.finish();
}

/// The kernel-backend legs: the chunked path dispatches into the same
/// per-range kernels as the sequential one, so a backend regression shows
/// up here exactly as it does in the `vote_plane` benches.
fn bench_backends(c: &mut Criterion) {
    let problem = kitchen_sink_problem();
    let method = method_by_name("AccuCopy").expect("AccuCopy is registered");
    let opts = FusionOptions::standard().with_intra_day_chunks(4);
    let dispatched = kernels::backend();

    let mut group = c.benchmark_group("intra_day_backends");
    for backend in [dispatched, Backend::Scalar] {
        let effective = kernels::force_backend(backend);
        group.bench_function(
            format!("AccuCopy/chunked_kernel_{}", kernels::backend_name()),
            |b| b.iter(|| method.run(&problem, &opts)),
        );
        // Avoid a duplicate benchmark id when scalar is also the dispatched
        // backend (force_backend downgrades on CPUs without AVX2+FMA).
        if effective == Backend::Scalar && dispatched == Backend::Scalar {
            break;
        }
    }
    kernels::force_backend(dispatched);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_intra_day, bench_backends
}
criterion_main!(benches);
