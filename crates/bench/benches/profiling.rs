//! Criterion micro-benchmarks of the Section-3 profiling measurements:
//! redundancy, inconsistency, dominance, and source accuracy on one snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{generate, stock_config};
use profiling::{
    dominance_profile, redundancy_summary, snapshot_inconsistency, source_accuracies,
};

fn bench_profiling(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let day = stock.collection.reference_day();

    let mut group = c.benchmark_group("profiling");
    group.bench_function("redundancy_summary", |b| {
        b.iter(|| redundancy_summary(&day.snapshot))
    });
    group.bench_function("snapshot_inconsistency", |b| {
        b.iter(|| snapshot_inconsistency(&day.snapshot))
    });
    group.bench_function("dominance_profile", |b| {
        b.iter(|| dominance_profile(&day.snapshot, &day.gold))
    });
    group.bench_function("source_accuracies", |b| {
        b.iter(|| source_accuracies(&day.snapshot, &day.gold))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_profiling
}
criterion_main!(benches);
