//! Criterion guard and micro-benchmark for the sharded batch runner: the
//! multi-day evaluation through the warm-arena `BatchRunner` vs the
//! per-(day, method) `ParallelRunner` fan-out vs the sequential baseline,
//! plus the cost of a warm in-place problem refill vs a cold preparation.
//!
//! The correctness guard (batch rows == parallel rows == sequential rows)
//! runs before any timing, so the timing comparison can never silently
//! compare different computations.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{generate, stock_config};
use evaluation::{evaluate_days_sequential, same_results, BatchRunner, ParallelRunner, ShardArena};
use fusion::kernels::{self, Backend};
use fusion::FusionProblem;

fn bench_batch_vs_parallel(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.02, 0.2));
    let day_indices: Vec<usize> = (0..stock.collection.num_days()).collect();

    // Correctness guard first: all three runners must agree bit-identically.
    let sequential = evaluate_days_sequential(&stock.collection, &day_indices, false);
    let parallel = ParallelRunner::new().evaluate_days(&stock.collection, &day_indices);
    let batch = BatchRunner::new().evaluate_days(&stock.collection, &day_indices);
    for ((s, p), b) in sequential.iter().zip(&parallel.days).zip(&batch.days) {
        assert!(
            same_results(&s.rows, &p.rows) && same_results(&s.rows, &b.rows),
            "runners diverged on day {} of the guard collection",
            s.day
        );
    }

    let mut group = c.benchmark_group("batch_vs_parallel");
    group.bench_function("sequential_multi_day", |b| {
        b.iter(|| evaluate_days_sequential(&stock.collection, &day_indices, false))
    });
    group.bench_function("parallel_multi_day", |b| {
        let runner = ParallelRunner::new();
        b.iter(|| runner.evaluate_days(&stock.collection, &day_indices))
    });
    group.bench_function("batch_multi_day", |b| {
        let runner = BatchRunner::new();
        b.iter(|| runner.evaluate_days(&stock.collection, &day_indices))
    });
    // End-to-end kernel comparison: the same batch evaluation with the
    // dispatched SIMD kernels vs the scalar fallback pinned — the
    // whole-pipeline view of the ISSUE-6 keep/drop gate (`vote_plane` has
    // the per-kernel view).
    let dispatched = kernels::backend();
    group.bench_function(
        format!("batch_multi_day/kernel_{}", kernels::backend_name()),
        |b| {
            kernels::force_backend(dispatched);
            let runner = BatchRunner::new();
            b.iter(|| runner.evaluate_days(&stock.collection, &day_indices))
        },
    );
    group.bench_function("batch_multi_day/kernel_scalar", |b| {
        kernels::force_backend(Backend::Scalar);
        let runner = BatchRunner::new();
        b.iter(|| runner.evaluate_days(&stock.collection, &day_indices));
        kernels::force_backend(dispatched);
    });
    group.finish();
}

fn bench_arena_refill(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let snapshot = stock.reference_snapshot();

    let mut group = c.benchmark_group("problem_refill");
    group.bench_function("cold_from_snapshot", |b| {
        b.iter(|| FusionProblem::from_snapshot(snapshot))
    });
    group.bench_function("warm_arena_refill", |b| {
        let mut arena = ShardArena::new();
        arena.prepare(snapshot);
        b.iter(|| arena.prepare(snapshot).num_claims())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_batch_vs_parallel, bench_arena_refill
}
criterion_main!(benches);
