//! Criterion micro-benchmarks of the fusion methods (the cost side of
//! Figure 12): per-method end-to-end fusion time on a reduced Stock and
//! Flight snapshot, the cost of problem preparation, and the sequential
//! vs. parallel evaluation-runner guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{flight_config, generate, stock_config};
use evaluation::{evaluate_all_methods, same_results, EvaluationContext, ParallelRunner};
use fusion::{all_methods, FusionOptions, FusionProblem};

fn bench_methods(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let flight = generate(&flight_config(2012).scaled(0.03, 0.1));
    let stock_problem = FusionProblem::from_snapshot(stock.reference_snapshot());
    let flight_problem = FusionProblem::from_snapshot(flight.reference_snapshot());
    let options = FusionOptions::standard();

    let mut group = c.benchmark_group("fusion_methods");
    for (domain, problem) in [("stock", &stock_problem), ("flight", &flight_problem)] {
        for (_, method) in all_methods() {
            group.bench_with_input(
                BenchmarkId::new(method.name(), domain),
                problem,
                |b, problem| b.iter(|| method.run(problem, &options)),
            );
        }
    }
    group.finish();
}

fn bench_preparation(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    c.bench_function("problem_preparation_stock", |b| {
        b.iter(|| FusionProblem::from_snapshot(stock.reference_snapshot()))
    });
}

/// Guard: the parallel runner must produce the same rows as the sequential
/// runner on the same seeded snapshot — and this bench shows what the
/// fan-out buys in wall-clock. Both runners evaluate all sixteen methods
/// with and without sampled trust.
fn bench_runners(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let day = stock.collection.reference_day();
    let context = EvaluationContext::new(&day.snapshot, &day.gold);

    // Correctness guard first: a timing comparison of two runners is only
    // meaningful if they compute the same thing.
    let sequential = evaluate_all_methods(&context);
    let parallel = ParallelRunner::new().evaluate_all_methods(&context);
    assert!(
        same_results(&sequential, &parallel),
        "parallel runner diverged from sequential runner on the guard snapshot"
    );

    let mut group = c.benchmark_group("evaluation_runner");
    group.bench_function("sequential_16_methods", |b| {
        b.iter(|| evaluate_all_methods(&context))
    });
    group.bench_function("parallel_16_methods", |b| {
        let runner = ParallelRunner::new();
        b.iter(|| runner.evaluate_all_methods(&context))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_methods, bench_preparation, bench_runners
}
criterion_main!(benches);
