//! Criterion micro-benchmarks of the fusion methods (the cost side of
//! Figure 12): per-method end-to-end fusion time on a reduced Stock and
//! Flight snapshot, plus the cost of problem preparation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::{flight_config, generate, stock_config};
use fusion::{all_methods, FusionOptions, FusionProblem};

fn bench_methods(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let flight = generate(&flight_config(2012).scaled(0.03, 0.1));
    let stock_problem = FusionProblem::from_snapshot(stock.reference_snapshot());
    let flight_problem = FusionProblem::from_snapshot(flight.reference_snapshot());
    let options = FusionOptions::standard();

    let mut group = c.benchmark_group("fusion_methods");
    for (domain, problem) in [("stock", &stock_problem), ("flight", &flight_problem)] {
        for (_, method) in all_methods() {
            group.bench_with_input(
                BenchmarkId::new(method.name(), domain),
                problem,
                |b, problem| b.iter(|| method.run(problem, &options)),
            );
        }
    }
    group.finish();
}

fn bench_preparation(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    c.bench_function("problem_preparation_stock", |b| {
        b.iter(|| FusionProblem::from_snapshot(stock.reference_snapshot()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_methods, bench_preparation
}
criterion_main!(benches);
