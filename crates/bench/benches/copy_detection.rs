//! Criterion micro-benchmark of pairwise copy detection, the dominant cost of
//! ACCUCOPY (the paper reports 855 s on the Stock snapshot versus seconds for
//! the other methods) — both the snapshot-level `copydetect` detector and the
//! fusion-internal dense path (`detect_copying`, and one full `AccuCopy::run`
//! so the tentpole's win stays measurable in-repo).

use criterion::{criterion_group, criterion_main, Criterion};
use copydetect::CopyDetector;
use datagen::{flight_config, generate, stock_config};
use fusion::methods::{detect_copying, AccuCopy, CoClaims};
use fusion::{FusionMethod, FusionOptions, FusionProblem};

fn bench_copy_detection(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let flight = generate(&flight_config(2012).scaled(0.03, 0.1));

    let mut group = c.benchmark_group("copy_detection");
    group.bench_function("stock", |b| {
        let day = stock.collection.reference_day();
        b.iter(|| CopyDetector::new().detect(&day.snapshot, &day.gold))
    });
    group.bench_function("flight", |b| {
        let day = flight.collection.reference_day();
        b.iter(|| CopyDetector::new().detect(&day.snapshot, &day.gold))
    });
    group.finish();
}

/// The fusion-loop detection path: one-shot `detect_copying` (index build +
/// score), the per-round `CoClaims::rescore` alone, and a full `AccuCopy::run`
/// (detection × rounds + independence-discounted voting).
fn bench_fusion_detection(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let problem = FusionProblem::from_snapshot(stock.reference_snapshot());
    let dominant = vec![0usize; problem.num_items()];
    let method = AccuCopy::default();

    let mut group = c.benchmark_group("fusion_copy_detection");
    group.bench_function("detect_copying_stock", |b| {
        b.iter(|| detect_copying(&problem, &dominant, 0.8, 0.1, 10))
    });
    group.bench_function("rescore_stock", |b| {
        let co = CoClaims::build(&problem, 10);
        let mut errors = vec![0.0; problem.num_sources()];
        let mut out = fusion::CopyMatrix::new(problem.num_sources());
        b.iter(|| co.rescore(&problem, &dominant, 0.8, 0.1, &mut errors, &mut out, None, None))
    });
    group.bench_function("accucopy_run_stock", |b| {
        b.iter(|| method.run(&problem, &FusionOptions::standard()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_copy_detection, bench_fusion_detection
}
criterion_main!(benches);
