//! Criterion micro-benchmark of pairwise copy detection, the dominant cost of
//! ACCUCOPY (the paper reports 855 s on the Stock snapshot versus seconds for
//! the other methods).

use criterion::{criterion_group, criterion_main, Criterion};
use copydetect::CopyDetector;
use datagen::{flight_config, generate, stock_config};

fn bench_copy_detection(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.03, 0.1));
    let flight = generate(&flight_config(2012).scaled(0.03, 0.1));

    let mut group = c.benchmark_group("copy_detection");
    group.bench_function("stock", |b| {
        let day = stock.collection.reference_day();
        b.iter(|| CopyDetector::new().detect(&day.snapshot, &day.gold))
    });
    group.bench_function("flight", |b| {
        let day = flight.collection.reference_day();
        b.iter(|| CopyDetector::new().detect(&day.snapshot, &day.gold))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_copy_detection
}
criterion_main!(benches);
