//! Criterion micro-benchmark of the flat vote plane: the
//! `weighted_votes`-equivalent trust-weighted accumulation every web-link
//! round performs, on the default-scale Stock problem, for both trust
//! layouts — overall (one `Vec<f64>` gather) and per-attribute (`*ATTR`,
//! flat SoA `source * num_attrs + attr` reads).
//!
//! Since the explicit SIMD kernel layer landed, each walk is benchmarked
//! three ways, which is the ISSUE-6 keep/drop gate for the kernels ("only
//! keep it if it beats the autovectorizer"):
//!
//! - `kernel/<dispatched>` — the plane methods as shipped, dispatching to
//!   the AVX2+FMA kernels where the CPU supports them;
//! - `kernel_scalar` — the same entry points with
//!   [`fusion::kernels::force_backend`] pinning the portable fallback;
//! - `autovec` — an inline reimplementation of the pre-kernel nested-view
//!   loop, left to the compiler's autovectorizer.
//!
//! The `argmax` bench covers the per-round selection walk over the same
//! offsets.
//!
//! The `vote_plane_long_rows` group re-runs the CSR-walk gate on the
//! `scale10_capacity` scenario world (80 high-coverage sources, ~75-provider
//! rows vs the base Stock's ~40) — the ROADMAP asks whether longer provider
//! rows flip the PR-6 verdict that dropped the gather-based lock-step
//! kernels.

use criterion::{criterion_group, criterion_main, BenchmarkGroup, Criterion};
use datagen::{generate, stock_config};
use fusion::kernels::{self, Backend};
use fusion::{FusionProblem, TrustEstimate, VotePlane};

/// The pre-kernel accumulation loop, verbatim: nested item/candidate views,
/// `trust.of` per provider, `.map().sum()` per candidate — what the
/// autovectorizer sees without the explicit kernels.
fn autovec_accumulate(
    values: &mut [f64],
    offsets: &[u32],
    problem: &FusionProblem,
    trust: &TrustEstimate,
) {
    for (i, item) in problem.items().enumerate() {
        let attr = item.attr();
        let out = &mut values[offsets[i] as usize..offsets[i + 1] as usize];
        for (slot, cand) in out.iter_mut().zip(item.candidates()) {
            *slot = cand
                .providers()
                .iter()
                .map(|&s| trust.of(s as usize, attr))
                .sum();
        }
    }
}

/// The pre-kernel argmax loop, verbatim.
fn autovec_argmax(offsets: &[u32], values: &[f64], selection: &mut Vec<usize>) {
    selection.clear();
    selection.extend(offsets.windows(2).map(|w| {
        let item_votes = &values[w[0] as usize..w[1] as usize];
        let mut best = 0usize;
        let mut best_vote = f64::NEG_INFINITY;
        for (i, &v) in item_votes.iter().enumerate() {
            if v > best_vote + 1e-12 {
                best = i;
                best_vote = v;
            }
        }
        best
    }));
}

/// Non-uniform trust estimates so the gathers read realistic values.
fn make_trusts(problem: &FusionProblem) -> (TrustEstimate, TrustEstimate) {
    let mut overall = TrustEstimate::uniform(problem.num_sources(), problem.num_attrs, 0.8, false);
    for (s, t) in overall.overall.iter_mut().enumerate() {
        *t = 0.5 + 0.4 * ((s % 7) as f64 / 7.0);
    }
    let mut per_attr = TrustEstimate::uniform(problem.num_sources(), problem.num_attrs, 0.8, true);
    if let Some(pa) = per_attr.per_attr.as_mut() {
        for s in 0..problem.num_sources() {
            for a in 0..problem.num_attrs {
                pa.set(s, a, 0.5 + 0.4 * (((s + a) % 5) as f64 / 5.0));
            }
        }
    }
    (overall, per_attr)
}

/// The three-way CSR-walk gate (dispatched kernel vs pinned scalar vs
/// autovectorized pre-kernel loop) over one prepared problem: the
/// trust-weighted accumulation in both trust layouts, the argmax selection,
/// and the per-source claim-score sums.
fn csr_walk_benches(group: &mut BenchmarkGroup<'_>, problem: &FusionProblem) {
    let (overall, per_attr) = make_trusts(problem);
    let dispatched = kernels::backend();

    for (trust, label) in [(&overall, "overall_trust"), (&per_attr, "per_attribute_trust")] {
        group.bench_function(
            format!("weighted_votes_{label}/kernel_{}", kernels::backend_name()),
            |b| {
                kernels::force_backend(dispatched);
                let mut plane = VotePlane::for_problem(problem);
                b.iter(|| {
                    plane.accumulate_weighted_votes(problem, trust);
                    plane.values().iter().sum::<f64>()
                })
            },
        );
        group.bench_function(format!("weighted_votes_{label}/kernel_scalar"), |b| {
            kernels::force_backend(Backend::Scalar);
            let mut plane = VotePlane::for_problem(problem);
            b.iter(|| {
                plane.accumulate_weighted_votes(problem, trust);
                plane.values().iter().sum::<f64>()
            });
            kernels::force_backend(dispatched);
        });
        group.bench_function(format!("weighted_votes_{label}/autovec"), |b| {
            let mut values = vec![0.0; problem.num_candidates()];
            let offsets = problem.item_cand_offsets().to_vec();
            b.iter(|| {
                autovec_accumulate(&mut values, &offsets, problem, trust);
                values.iter().sum::<f64>()
            })
        });
    }

    let mut plane = VotePlane::for_problem(problem);
    plane.accumulate_weighted_votes(problem, &overall);
    group.bench_function(
        format!("argmax_selection_into/kernel_{}", kernels::backend_name()),
        |b| {
            kernels::force_backend(dispatched);
            let mut selection = Vec::new();
            b.iter(|| {
                plane.argmax_into(&mut selection);
                selection.len()
            })
        },
    );
    group.bench_function("argmax_selection_into/kernel_scalar", |b| {
        kernels::force_backend(Backend::Scalar);
        let mut selection = Vec::new();
        b.iter(|| {
            plane.argmax_into(&mut selection);
            selection.len()
        });
        kernels::force_backend(dispatched);
    });
    group.bench_function("argmax_selection_into/autovec", |b| {
        let mut selection = Vec::new();
        b.iter(|| {
            autovec_argmax(plane.offsets(), plane.values(), &mut selection);
            selection.len()
        })
    });

    let claims: Vec<Vec<(u32, u32)>> = problem
        .claims_by_source()
        .map(<[(u32, u32)]>::to_vec)
        .collect();
    group.bench_function(
        format!("sum_claim_scores/kernel_{}", kernels::backend_name()),
        |b| {
            kernels::force_backend(dispatched);
            b.iter(|| {
                claims
                    .iter()
                    .map(|cl| kernels::sum_claim_scores(cl, plane.offsets(), plane.values()))
                    .sum::<f64>()
            })
        },
    );
    group.bench_function("sum_claim_scores/kernel_scalar", |b| {
        kernels::force_backend(Backend::Scalar);
        b.iter(|| {
            claims
                .iter()
                .map(|cl| kernels::sum_claim_scores(cl, plane.offsets(), plane.values()))
                .sum::<f64>()
        });
        kernels::force_backend(dispatched);
    });
    group.bench_function("sum_claim_scores/autovec", |b| {
        b.iter(|| {
            claims
                .iter()
                .map(|cl| {
                    cl.iter()
                        .map(|&(i, c)| plane.get(i as usize, c as usize))
                        .sum::<f64>()
                })
                .sum::<f64>()
        })
    });
}

fn bench_vote_plane(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.25, 0.1));
    let problem = FusionProblem::from_snapshot(stock.reference_snapshot());
    let dispatched = kernels::backend();

    let mut group = c.benchmark_group("vote_plane");
    csr_walk_benches(&mut group, &problem);

    // Elementwise rescalers over the full contiguous plane (the web-link /
    // IR per-round normalization), kernel backends vs the pre-kernel loops.
    let (overall, _) = make_trusts(&problem);
    let mut plane = VotePlane::for_problem(&problem);
    plane.accumulate_weighted_votes(&problem, &overall);
    let mut scratch = plane.values().to_vec();
    group.bench_function(
        format!("normalize_by_max/kernel_{}", kernels::backend_name()),
        |b| {
            kernels::force_backend(dispatched);
            b.iter(|| {
                scratch.copy_from_slice(plane.values());
                fusion::types::normalize_by_max(&mut scratch);
                scratch[0]
            })
        },
    );
    group.bench_function("normalize_by_max/kernel_scalar", |b| {
        kernels::force_backend(Backend::Scalar);
        b.iter(|| {
            scratch.copy_from_slice(plane.values());
            fusion::types::normalize_by_max(&mut scratch);
            scratch[0]
        });
        kernels::force_backend(dispatched);
    });
    group.bench_function("normalize_by_max/autovec", |b| {
        b.iter(|| {
            scratch.copy_from_slice(plane.values());
            let max = scratch.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if max > 0.0 {
                for x in scratch.iter_mut() {
                    *x /= max;
                }
            }
            scratch[0]
        })
    });
    group.bench_function(
        format!("rescale_to_unit/kernel_{}", kernels::backend_name()),
        |b| {
            kernels::force_backend(dispatched);
            b.iter(|| {
                scratch.copy_from_slice(plane.values());
                fusion::types::rescale_to_unit(&mut scratch);
                scratch[0]
            })
        },
    );
    group.bench_function("rescale_to_unit/kernel_scalar", |b| {
        kernels::force_backend(Backend::Scalar);
        b.iter(|| {
            scratch.copy_from_slice(plane.values());
            fusion::types::rescale_to_unit(&mut scratch);
            scratch[0]
        });
        kernels::force_backend(dispatched);
    });
    group.bench_function("rescale_to_unit/autovec", |b| {
        b.iter(|| {
            scratch.copy_from_slice(plane.values());
            let min = scratch.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = scratch.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if min.is_finite() && max.is_finite() {
                let range = max - min;
                for x in scratch.iter_mut() {
                    *x = if range > 1e-12 { (*x - min) / range } else { 0.5 };
                }
            }
            scratch[0]
        })
    });

    // The copy-detection LLR accumulation over synthetic co-claim entries
    // shaped like a dense source pair (branchless SIMD compare/blend vs the
    // branchy scalar loop).
    let entries: Vec<(u32, u32, u32)> = (0..4096)
        .map(|k| ((k % 1024) as u32, (k % 5) as u32, ((k / 3) % 5) as u32))
        .collect();
    let selection: Vec<usize> = (0..1024).map(|i| i % 5).collect();
    group.bench_function(
        format!("accumulate_pair_llr/kernel_{}", kernels::backend_name()),
        |b| {
            kernels::force_backend(dispatched);
            b.iter(|| kernels::accumulate_pair_llr(&entries, &selection, -0.3, -0.05))
        },
    );
    group.bench_function("accumulate_pair_llr/kernel_scalar", |b| {
        kernels::force_backend(Backend::Scalar);
        b.iter(|| kernels::accumulate_pair_llr(&entries, &selection, -0.3, -0.05));
        kernels::force_backend(dispatched);
    });
    group.finish();
}

/// The long-row re-run of the CSR-walk gate: the `scale10_capacity` scenario
/// at object scale 1.0 (16k items/day, 80 sources, near-full coverage) — the
/// provider rows the ROADMAP asked about.
fn bench_vote_plane_long_rows(c: &mut Criterion) {
    let world = bench::long_row_scenario(1.0).build();
    let problem = FusionProblem::from_snapshot(world.domain.reference_snapshot());
    let providers: usize = problem.claims_by_source().map(<[_]>::len).sum();
    eprintln!(
        "[vote_plane_long_rows] {} items, {} sources, {:.1} providers/item",
        problem.num_items(),
        problem.num_sources(),
        providers as f64 / problem.num_items() as f64,
    );
    let mut group = c.benchmark_group("vote_plane_long_rows");
    csr_walk_benches(&mut group, &problem);
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_vote_plane, bench_vote_plane_long_rows
}
criterion_main!(benches);
