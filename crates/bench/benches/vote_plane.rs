//! Criterion micro-benchmark of the flat vote plane: the
//! `weighted_votes`-equivalent trust-weighted accumulation every web-link
//! round performs, on the default-scale Stock problem, for both trust
//! layouts — overall (one `Vec<f64>` gather) and per-attribute (`*ATTR`,
//! flat SoA `source * num_attrs + attr` reads).
//!
//! This is the loop the CSR layout exists for: one contiguous
//! gather-multiply-add per candidate, no per-item heap hops. The `argmax`
//! bench covers the per-round selection walk over the same offsets.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{generate, stock_config};
use fusion::{FusionProblem, TrustEstimate, VotePlane};

fn bench_vote_plane(c: &mut Criterion) {
    let stock = generate(&stock_config(2012).scaled(0.25, 0.1));
    let problem = FusionProblem::from_snapshot(stock.reference_snapshot());

    // Non-uniform trust so the gather reads realistic values.
    let mut overall = TrustEstimate::uniform(problem.num_sources(), problem.num_attrs, 0.8, false);
    for (s, t) in overall.overall.iter_mut().enumerate() {
        *t = 0.5 + 0.4 * ((s % 7) as f64 / 7.0);
    }
    let mut per_attr = TrustEstimate::uniform(problem.num_sources(), problem.num_attrs, 0.8, true);
    if let Some(pa) = per_attr.per_attr.as_mut() {
        for s in 0..problem.num_sources() {
            for a in 0..problem.num_attrs {
                pa.set(s, a, 0.5 + 0.4 * (((s + a) % 5) as f64 / 5.0));
            }
        }
    }

    let mut group = c.benchmark_group("vote_plane");
    group.bench_function("weighted_votes_overall_trust", |b| {
        let mut plane = VotePlane::for_problem(&problem);
        b.iter(|| {
            plane.accumulate_weighted_votes(&problem, &overall);
            plane.values().iter().sum::<f64>()
        })
    });
    group.bench_function("weighted_votes_per_attribute_trust", |b| {
        let mut plane = VotePlane::for_problem(&problem);
        b.iter(|| {
            plane.accumulate_weighted_votes(&problem, &per_attr);
            plane.values().iter().sum::<f64>()
        })
    });
    group.bench_function("argmax_selection_into", |b| {
        let mut plane = VotePlane::for_problem(&problem);
        plane.accumulate_weighted_votes(&problem, &overall);
        let mut selection = Vec::new();
        b.iter(|| {
            plane.argmax_into(&mut selection);
            selection.len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_vote_plane
}
criterion_main!(benches);
