//! CLI regression tests for the `exp_fig12_efficiency` perf gate.
//!
//! The gate must fail **closed and fast**: a baseline that cannot possibly
//! be diffed against the fresh run (malformed JSON, wrong artifact shape)
//! exits 1 with an `unusable baseline` diagnostic before any expensive
//! fusion work runs — proven here by asserting the output artifact is
//! never written.

use std::path::PathBuf;
use std::process::Command;

fn gate_run(baseline_contents: &str, tag: &str) -> (std::process::Output, PathBuf, PathBuf) {
    let dir = std::env::temp_dir();
    let baseline = dir.join(format!("fig12_gate_{tag}_{}.json", std::process::id()));
    let out = dir.join(format!("fig12_gate_{tag}_out_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&out);
    std::fs::write(&baseline, baseline_contents).expect("write baseline fixture");
    let output = Command::new(env!("CARGO_BIN_EXE_exp_fig12_efficiency"))
        .args([
            "--compare",
            baseline.to_str().unwrap(),
            "--fail-on-regression",
            "25",
        ])
        .env("BENCH_FIG12_OUT", &out)
        .output()
        .expect("spawn exp_fig12_efficiency");
    (output, baseline, out)
}

#[test]
fn malformed_json_baseline_fails_closed_before_running() {
    let (output, baseline, out) = gate_run("{ not json", "malformed");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "malformed baseline must exit 1 (stderr: {stderr})"
    );
    assert!(
        stderr.contains("unusable baseline"),
        "diagnostic must name the unusable baseline, got: {stderr}"
    );
    assert!(
        !out.exists(),
        "gate must fail before the expensive run writes {}",
        out.display()
    );
    let _ = std::fs::remove_file(&baseline);
}

#[test]
fn wrong_shape_baseline_fails_closed_before_running() {
    // Parses fine, but has no "domains" array — a fig10/ablation artifact
    // (or a stray `{}`) can never yield an overlapping (domain, method) row.
    let (output, baseline, out) = gate_run("{}", "shape");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "wrong-shape baseline must exit 1 (stderr: {stderr})"
    );
    assert!(
        stderr.contains("unusable baseline"),
        "diagnostic must name the unusable baseline, got: {stderr}"
    );
    assert!(
        !out.exists(),
        "gate must fail before the expensive run writes {}",
        out.display()
    );
    let _ = std::fs::remove_file(&baseline);
}
