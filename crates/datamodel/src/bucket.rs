//! Bucketing of conflicting values on one data item.
//!
//! Section 3.2 of the paper: when measuring value distributions, values whose
//! difference falls within the attribute tolerance τ(A) are grouped together.
//! Starting from the dominant value v0, the buckets are
//! `(v0 - 3τ/2, v0 - τ/2], (v0 - τ/2, v0 + τ/2], (v0 + τ/2, v0 + 3τ/2], ...`
//! — i.e. each value lands in the bucket whose center `v0 + k·τ` it is
//! closest to.
//!
//! Every measurement (number of values, entropy, dominance factor) and every
//! fusion method operates on these buckets rather than on raw values.

use crate::ids::{AttrId, SourceId};
use crate::tolerance::ToleranceContext;
use crate::value::{Value, ValueKind};
use std::collections::HashMap;

/// A group of tolerance-equivalent values on one data item, together with the
/// sources providing them.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueBucket {
    /// Representative value of the bucket (the most frequently provided exact
    /// value inside the bucket).
    pub representative: Value,
    /// Sources providing a value in this bucket, in ascending id order.
    pub providers: Vec<SourceId>,
}

impl ValueBucket {
    /// Number of sources providing this bucket's value.
    #[inline]
    pub fn support(&self) -> usize {
        self.providers.len()
    }
}

/// Bucketing configuration for one attribute: the absolute tolerance and the
/// similarity scale derived from a [`ToleranceContext`].
#[derive(Debug, Clone, Copy)]
pub struct Bucketing {
    /// Absolute tolerance τ(A).
    pub tolerance: f64,
    /// Scale used to normalize distances for similarity computations.
    pub similarity_scale: f64,
}

impl Bucketing {
    /// Bucketing parameters for `attr` under `ctx`.
    pub fn for_attr(ctx: &ToleranceContext, attr: AttrId) -> Self {
        Self {
            tolerance: ctx.tolerance(attr),
            similarity_scale: ctx.similarity_scale(attr),
        }
    }

    /// Group the `(source, value)` observations of one data item into buckets,
    /// sorted by descending support (ties broken by representative ordering so
    /// the result is deterministic). The first bucket is therefore the
    /// *dominant value* of the item.
    pub fn bucket(&self, observations: &[(SourceId, Value)]) -> Vec<ValueBucket> {
        if observations.is_empty() {
            return Vec::new();
        }
        let kind = observations[0].1.kind();
        let mut buckets = match kind {
            ValueKind::Text => self.bucket_text(observations),
            ValueKind::Number | ValueKind::Time => self.bucket_numeric(observations),
        };
        for b in &mut buckets {
            b.providers.sort_unstable();
        }
        buckets.sort_by(|a, b| {
            b.support()
                .cmp(&a.support())
                .then_with(|| compare_values(&a.representative, &b.representative))
        });
        buckets
    }

    fn bucket_text(&self, observations: &[(SourceId, Value)]) -> Vec<ValueBucket> {
        let mut groups: HashMap<String, Vec<SourceId>> = HashMap::new();
        let mut repr: HashMap<String, Value> = HashMap::new();
        for (src, v) in observations {
            let key = match v {
                Value::Text(s) => s.clone(),
                other => other.to_string(),
            };
            groups.entry(key.clone()).or_default().push(*src);
            repr.entry(key).or_insert_with(|| v.clone());
        }
        groups
            .into_iter()
            .map(|(key, providers)| ValueBucket {
                representative: repr.remove(&key).expect("representative recorded"),
                providers,
            })
            .collect()
    }

    fn bucket_numeric(&self, observations: &[(SourceId, Value)]) -> Vec<ValueBucket> {
        // Count exact duplicates to find the anchor (dominant raw value).
        let numeric: Vec<(SourceId, f64, &Value)> = observations
            .iter()
            .filter_map(|(s, v)| v.as_f64().map(|x| (*s, x, v)))
            .collect();
        if numeric.is_empty() {
            return Vec::new();
        }
        let anchor = dominant_raw_value(&numeric);

        if self.tolerance <= 0.0 {
            // Exact grouping on the raw numeric value.
            let mut groups: Vec<(f64, ValueBucket)> = Vec::new();
            for (src, x, v) in &numeric {
                match groups.iter_mut().find(|(gx, _)| gx == x) {
                    Some((_, b)) => b.providers.push(*src),
                    None => groups.push((
                        *x,
                        ValueBucket {
                            representative: (*v).clone(),
                            providers: vec![*src],
                        },
                    )),
                }
            }
            return groups.into_iter().map(|(_, b)| b).collect();
        }

        // Bucket index k = round((v - anchor) / τ): the bucket of center anchor + kτ.
        let mut groups: HashMap<i64, Vec<(SourceId, f64, &Value)>> = HashMap::new();
        for entry in &numeric {
            let k = ((entry.1 - anchor) / self.tolerance).round() as i64;
            groups.entry(k).or_default().push(*entry);
        }
        groups
            .into_values()
            .map(|members| {
                let representative = bucket_representative(&members);
                ValueBucket {
                    representative,
                    providers: members.into_iter().map(|(s, _, _)| s).collect(),
                }
            })
            .collect()
    }
}

/// The raw value provided by the most sources, used as the anchor v0 of the
/// bucket grid. Ties are broken by proximity to the median of all raw values
/// (then by the smaller value) so that the grid is centered where most of the
/// mass is and the result stays deterministic.
fn dominant_raw_value(numeric: &[(SourceId, f64, &Value)]) -> f64 {
    let raw: Vec<f64> = numeric.iter().map(|(_, x, _)| *x).collect();
    let med = crate::stats::median(&raw);
    let mut counts: Vec<(f64, usize)> = Vec::new();
    for (_, x, _) in numeric {
        match counts.iter_mut().find(|(v, _)| v == x) {
            Some((_, c)) => *c += 1,
            None => counts.push((*x, 1)),
        }
    }
    counts
        .into_iter()
        .max_by(|(va, ca), (vb, cb)| {
            let da = (va - med).abs();
            let db = (vb - med).abs();
            ca.cmp(cb)
                .then_with(|| db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| vb.partial_cmp(va).unwrap_or(std::cmp::Ordering::Equal))
        })
        .map(|(v, _)| v)
        .unwrap_or(0.0)
}

/// The most frequent exact value inside a bucket, cloned as the bucket
/// representative. Ties are broken by proximity to the bucket's median value
/// (then by the smaller value).
fn bucket_representative(members: &[(SourceId, f64, &Value)]) -> Value {
    let raw: Vec<f64> = members.iter().map(|(_, x, _)| *x).collect();
    let med = crate::stats::median(&raw);
    let mut counts: Vec<(f64, usize, &Value)> = Vec::new();
    for (_, x, v) in members {
        match counts.iter_mut().find(|(cx, _, _)| cx == x) {
            Some((_, c, _)) => *c += 1,
            None => counts.push((*x, 1, v)),
        }
    }
    counts
        .into_iter()
        .max_by(|(va, ca, _), (vb, cb, _)| {
            let da = (va - med).abs();
            let db = (vb - med).abs();
            ca.cmp(cb)
                .then_with(|| db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| vb.partial_cmp(va).unwrap_or(std::cmp::Ordering::Equal))
        })
        .map(|(_, _, v)| v.clone())
        .expect("bucket is non-empty")
}

fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.to_string().cmp(&b.to_string()),
    }
}

/// Convenience wrapper: bucket the observations of one data item of attribute
/// `attr` under tolerance context `ctx`.
pub fn bucket_values(
    observations: &[(SourceId, Value)],
    attr: AttrId,
    ctx: &ToleranceContext,
) -> Vec<ValueBucket> {
    Bucketing::for_attr(ctx, attr).bucket(observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerance::TolerancePolicy;

    fn obs(values: &[f64]) -> Vec<(SourceId, Value)> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| (SourceId(i as u32), Value::number(*v)))
            .collect()
    }

    #[test]
    fn close_values_share_a_bucket() {
        let b = Bucketing {
            tolerance: 1.0,
            similarity_scale: 100.0,
        };
        let buckets = b.bucket(&obs(&[100.0, 100.4, 99.8, 105.0]));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 3);
        assert_eq!(buckets[1].support(), 1);
        assert_eq!(buckets[0].representative, Value::number(100.0));
    }

    #[test]
    fn zero_tolerance_gives_exact_groups() {
        let b = Bucketing {
            tolerance: 0.0,
            similarity_scale: 1.0,
        };
        let buckets = b.bucket(&obs(&[1.0, 1.0, 1.000001, 2.0]));
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].support(), 2);
    }

    #[test]
    fn text_values_group_by_normalized_string() {
        let b = Bucketing {
            tolerance: 0.0,
            similarity_scale: 1.0,
        };
        let observations = vec![
            (SourceId(0), Value::text("B12")),
            (SourceId(1), Value::text("b12")),
            (SourceId(2), Value::text("C3")),
        ];
        let buckets = b.bucket(&observations);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 2);
        assert_eq!(buckets[0].representative, Value::text("b12"));
    }

    #[test]
    fn dominant_bucket_comes_first_with_deterministic_ties() {
        let b = Bucketing {
            tolerance: 0.5,
            similarity_scale: 1.0,
        };
        // Two buckets of support 2: ordering must be deterministic (smaller repr first).
        let buckets = b.bucket(&obs(&[10.0, 10.0, 20.0, 20.0]));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 2);
        assert_eq!(buckets[0].representative, Value::number(10.0));
    }

    #[test]
    fn empty_input_gives_no_buckets() {
        let b = Bucketing {
            tolerance: 1.0,
            similarity_scale: 1.0,
        };
        assert!(b.bucket(&[]).is_empty());
    }

    #[test]
    fn time_values_bucket_with_minute_tolerance() {
        let b = Bucketing {
            tolerance: 10.0,
            similarity_scale: 10.0,
        };
        let observations = vec![
            (SourceId(0), Value::time(600)),
            (SourceId(1), Value::time(604)),
            (SourceId(2), Value::time(630)),
        ];
        let buckets = b.bucket(&observations);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 2);
    }

    #[test]
    fn convenience_function_uses_context() {
        use crate::schema::{AttrKind, DomainSchema};
        let mut schema = DomainSchema::new("stock");
        let a = schema.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        let ctx = ToleranceContext::from_values(
            &schema,
            &[vec![Value::number(100.0), Value::number(101.0)]],
            TolerancePolicy::default(),
        );
        let buckets = bucket_values(
            &[
                (SourceId(0), Value::number(100.0)),
                (SourceId(1), Value::number(100.5)),
            ],
            a,
            &ctx,
        );
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].support(), 2);
    }

    #[test]
    fn every_provider_appears_in_exactly_one_bucket() {
        let b = Bucketing {
            tolerance: 2.0,
            similarity_scale: 1.0,
        };
        let observations = obs(&[1.0, 2.0, 3.0, 7.0, 8.0, 20.0]);
        let buckets = b.bucket(&observations);
        let mut seen: Vec<SourceId> = buckets.iter().flat_map(|b| b.providers.clone()).collect();
        seen.sort_unstable();
        let mut expected: Vec<SourceId> = observations.iter().map(|(s, _)| *s).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }
}
