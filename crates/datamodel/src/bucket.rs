//! Bucketing of conflicting values on one data item.
//!
//! Section 3.2 of the paper: when measuring value distributions, values whose
//! difference falls within the attribute tolerance τ(A) are grouped together.
//! Starting from the dominant value v0, the buckets are
//! `(v0 - 3τ/2, v0 - τ/2], (v0 - τ/2, v0 + τ/2], (v0 + τ/2, v0 + 3τ/2], ...`
//! — i.e. each value lands in the bucket whose center `v0 + k·τ` it is
//! closest to.
//!
//! Every measurement (number of values, entropy, dominance factor) and every
//! fusion method operates on these buckets rather than on raw values.

use crate::ids::{AttrId, SourceId};
use crate::snapshot::Observation;
use crate::tolerance::ToleranceContext;
use crate::value::{Value, ValueKind};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A group of tolerance-equivalent values on one data item, together with the
/// sources providing them.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueBucket {
    /// Representative value of the bucket (the most frequently provided exact
    /// value inside the bucket).
    pub representative: Value,
    /// Sources providing a value in this bucket, in ascending id order.
    pub providers: Vec<SourceId>,
}

impl ValueBucket {
    /// Number of sources providing this bucket's value.
    #[inline]
    pub fn support(&self) -> usize {
        self.providers.len()
    }
}

/// Bucketing configuration for one attribute: the absolute tolerance and the
/// similarity scale derived from a [`ToleranceContext`].
#[derive(Debug, Clone, Copy)]
pub struct Bucketing {
    /// Absolute tolerance τ(A).
    pub tolerance: f64,
    /// Scale used to normalize distances for similarity computations.
    pub similarity_scale: f64,
}

impl Bucketing {
    /// Bucketing parameters for `attr` under `ctx`.
    pub fn for_attr(ctx: &ToleranceContext, attr: AttrId) -> Self {
        Self {
            tolerance: ctx.tolerance(attr),
            similarity_scale: ctx.similarity_scale(attr),
        }
    }

    /// Group the `(source, value)` observations of one data item into buckets,
    /// sorted by descending support (ties broken by representative ordering so
    /// the result is deterministic). The first bucket is therefore the
    /// *dominant value* of the item.
    pub fn bucket(&self, observations: &[(SourceId, Value)]) -> Vec<ValueBucket> {
        if observations.is_empty() {
            return Vec::new();
        }
        let kind = observations[0].1.kind();
        let mut buckets = match kind {
            ValueKind::Text => self.bucket_text(observations),
            ValueKind::Number | ValueKind::Time => self.bucket_numeric(observations),
        };
        for b in &mut buckets {
            b.providers.sort_unstable();
        }
        buckets.sort_by(|a, b| {
            b.support()
                .cmp(&a.support())
                .then_with(|| compare_values(&a.representative, &b.representative))
        });
        buckets
    }

    fn bucket_text(&self, observations: &[(SourceId, Value)]) -> Vec<ValueBucket> {
        let mut groups: HashMap<String, Vec<SourceId>> = HashMap::new();
        let mut repr: HashMap<String, Value> = HashMap::new();
        for (src, v) in observations {
            let key = match v {
                Value::Text(s) => s.clone(),
                other => other.to_string(),
            };
            groups.entry(key.clone()).or_default().push(*src);
            repr.entry(key).or_insert_with(|| v.clone());
        }
        groups
            .into_iter()
            .map(|(key, providers)| ValueBucket {
                representative: repr.remove(&key).expect("representative recorded"),
                providers,
            })
            .collect()
    }

    fn bucket_numeric(&self, observations: &[(SourceId, Value)]) -> Vec<ValueBucket> {
        // Count exact duplicates to find the anchor (dominant raw value).
        let numeric: Vec<(SourceId, f64, &Value)> = observations
            .iter()
            .filter_map(|(s, v)| v.as_f64().map(|x| (*s, x, v)))
            .collect();
        if numeric.is_empty() {
            return Vec::new();
        }
        let anchor = dominant_raw_value(&numeric);

        if self.tolerance <= 0.0 {
            // Exact grouping on the raw numeric value.
            let mut groups: Vec<(f64, ValueBucket)> = Vec::new();
            for (src, x, v) in &numeric {
                match groups.iter_mut().find(|(gx, _)| gx == x) {
                    Some((_, b)) => b.providers.push(*src),
                    None => groups.push((
                        *x,
                        ValueBucket {
                            representative: (*v).clone(),
                            providers: vec![*src],
                        },
                    )),
                }
            }
            return groups.into_iter().map(|(_, b)| b).collect();
        }

        // Bucket index k = round((v - anchor) / τ): the bucket of center anchor + kτ.
        let mut groups: HashMap<i64, Vec<(SourceId, f64, &Value)>> = HashMap::new();
        for entry in &numeric {
            let k = ((entry.1 - anchor) / self.tolerance).round() as i64;
            groups.entry(k).or_default().push(*entry);
        }
        groups
            .into_values()
            .map(|members| {
                let representative = bucket_representative(&members);
                ValueBucket {
                    representative,
                    providers: members.into_iter().map(|(s, _, _)| s).collect(),
                }
            })
            .collect()
    }
}

/// The raw value provided by the most sources, used as the anchor v0 of the
/// bucket grid. Ties are broken by proximity to the median of all raw values
/// (then by the smaller value) so that the grid is centered where most of the
/// mass is and the result stays deterministic.
fn dominant_raw_value(numeric: &[(SourceId, f64, &Value)]) -> f64 {
    let raw: Vec<f64> = numeric.iter().map(|(_, x, _)| *x).collect();
    let med = crate::stats::median(&raw);
    let mut counts: Vec<(f64, usize)> = Vec::new();
    for (_, x, _) in numeric {
        match counts.iter_mut().find(|(v, _)| v == x) {
            Some((_, c)) => *c += 1,
            None => counts.push((*x, 1)),
        }
    }
    counts
        .into_iter()
        .max_by(|(va, ca), (vb, cb)| {
            let da = (va - med).abs();
            let db = (vb - med).abs();
            ca.cmp(cb)
                .then_with(|| db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| vb.partial_cmp(va).unwrap_or(std::cmp::Ordering::Equal))
        })
        .map(|(v, _)| v)
        .unwrap_or(0.0)
}

/// The most frequent exact value inside a bucket, cloned as the bucket
/// representative. Ties are broken by proximity to the bucket's median value
/// (then by the smaller value).
fn bucket_representative(members: &[(SourceId, f64, &Value)]) -> Value {
    let raw: Vec<f64> = members.iter().map(|(_, x, _)| *x).collect();
    let med = crate::stats::median(&raw);
    let mut counts: Vec<(f64, usize, &Value)> = Vec::new();
    for (_, x, v) in members {
        match counts.iter_mut().find(|(cx, _, _)| cx == x) {
            Some((_, c, _)) => *c += 1,
            None => counts.push((*x, 1, v)),
        }
    }
    counts
        .into_iter()
        .max_by(|(va, ca, _), (vb, cb, _)| {
            let da = (va - med).abs();
            let db = (vb - med).abs();
            ca.cmp(cb)
                .then_with(|| db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| vb.partial_cmp(va).unwrap_or(std::cmp::Ordering::Equal))
        })
        .map(|(_, _, v)| v.clone())
        .expect("bucket is non-empty")
}

fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.to_string().cmp(&b.to_string()),
    }
}

/// Reusable scratch for bucketing a *stream* of data items without per-item
/// allocation.
///
/// [`Bucketing::bucket`] (and [`crate::Snapshot::buckets`] on top of it)
/// allocates a dozen-plus temporaries per item — on a paper-scale snapshot
/// that is ~150k allocations per preparation, the dominant allocation
/// traffic of the whole evaluation pipeline. A `Bucketer` owns all of those
/// temporaries plus a recycling pool for the output buckets' provider
/// vectors, so the warm-arena preparation path
/// (`fusion::ProblemBuilder::prepare`) re-buckets day after day with
/// near-zero steady-state allocation.
///
/// The output of [`bucket_into`](Self::bucket_into) is **identical** to
/// [`Bucketing::bucket`] on the same observations — same grouping, same
/// representatives (including first-seen tie-breaks), same ordering — which
/// a property test pins against random inputs.
#[derive(Debug, Default)]
pub struct Bucketer {
    /// `(source, raw value, observation index)` of the numeric observations,
    /// in observation order.
    numeric: Vec<(SourceId, f64, u32)>,
    /// Distinct raw values with counts and first-occurrence observation
    /// index, in first-seen order (anchor and representative elections).
    counts: Vec<(f64, usize, u32)>,
    /// Scratch for medians (sorted copy of the finite values).
    sorted: Vec<f64>,
    /// Raw values feeding a median.
    raw: Vec<f64>,
    /// First-seen distinct group keys (bucket-grid indices).
    group_keys: Vec<i64>,
    /// First-seen distinct exact values (zero-tolerance grouping).
    group_vals: Vec<f64>,
    /// Group index per numeric entry / per observation (text path).
    group_of: Vec<u32>,
    /// Observation index of each text group's first member.
    text_firsts: Vec<u32>,
    /// Recycled provider vectors.
    pool: Vec<Vec<SourceId>>,
}

impl Bucketer {
    /// An empty bucketer; buffers grow to the widest item seen and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Group the observations of one data item into `out` (cleared first,
    /// its buckets' provider vectors recycled), producing exactly what
    /// [`Bucketing::bucket`] produces for the same `(source, value)` pairs:
    /// buckets sorted by descending support with deterministic ties,
    /// providers ascending.
    pub fn bucket_into(
        &mut self,
        cfg: &Bucketing,
        observations: &[Observation],
        out: &mut Vec<ValueBucket>,
    ) {
        for bucket in out.drain(..) {
            let mut providers = bucket.providers;
            providers.clear();
            self.pool.push(providers);
        }
        if observations.is_empty() {
            return;
        }
        match observations[0].value.kind() {
            ValueKind::Text => self.bucket_text_into(observations, out),
            ValueKind::Number | ValueKind::Time => self.bucket_numeric_into(cfg, observations, out),
        }
        for b in out.iter_mut() {
            b.providers.sort_unstable();
        }
        out.sort_by(|a, b| {
            b.support()
                .cmp(&a.support())
                .then_with(|| compare_values(&a.representative, &b.representative))
        });
    }

    fn bucket_numeric_into(
        &mut self,
        cfg: &Bucketing,
        observations: &[Observation],
        out: &mut Vec<ValueBucket>,
    ) {
        self.numeric.clear();
        for (i, o) in observations.iter().enumerate() {
            if let Some(x) = o.value.as_f64() {
                self.numeric.push((o.source, x, i as u32));
            }
        }
        if self.numeric.is_empty() {
            return;
        }

        self.group_of.clear();
        if cfg.tolerance <= 0.0 {
            // Exact grouping on the raw numeric value, first-seen order; the
            // representative is the first member's value.
            self.group_vals.clear();
            for &(_, x, _) in &self.numeric {
                let g = match self.group_vals.iter().position(|v| *v == x) {
                    Some(g) => g,
                    None => {
                        self.group_vals.push(x);
                        self.group_vals.len() - 1
                    }
                };
                self.group_of.push(g as u32);
            }
            for g in 0..self.group_vals.len() {
                let mut providers = self.pool.pop().unwrap_or_default();
                let mut first: Option<u32> = None;
                for (&(source, _, idx), &gi) in self.numeric.iter().zip(&self.group_of) {
                    if gi as usize == g {
                        first.get_or_insert(idx);
                        providers.push(source);
                    }
                }
                out.push(ValueBucket {
                    representative: observations[first.expect("non-empty group") as usize]
                        .value
                        .clone(),
                    providers,
                });
            }
            return;
        }

        // Anchor election (dominant_raw_value): distinct-value counts in
        // first-seen order, winner by count, then proximity to the median,
        // then the smaller value.
        self.raw.clear();
        self.raw.extend(self.numeric.iter().map(|&(_, x, _)| x));
        let med = median_into(&mut self.sorted, &self.raw);
        self.counts.clear();
        for &(_, x, _) in &self.numeric {
            match self.counts.iter_mut().find(|(v, _, _)| *v == x) {
                Some((_, c, _)) => *c += 1,
                None => self.counts.push((x, 1, 0)),
            }
        }
        let anchor = self.counts[max_count_index(&self.counts, med)].0;

        // Bucket index k = round((v - anchor) / τ), groups in first-seen
        // order (members stay in observation order within each group).
        self.group_keys.clear();
        for &(_, x, _) in &self.numeric {
            let k = ((x - anchor) / cfg.tolerance).round() as i64;
            let g = match self.group_keys.iter().position(|key| *key == k) {
                Some(g) => g,
                None => {
                    self.group_keys.push(k);
                    self.group_keys.len() - 1
                }
            };
            self.group_of.push(g as u32);
        }

        for g in 0..self.group_keys.len() {
            // Representative election (bucket_representative): most frequent
            // exact value of the group, ties by proximity to the group
            // median then the smaller value; the first member providing the
            // winning value is cloned.
            self.raw.clear();
            for (&(_, x, _), &gi) in self.numeric.iter().zip(&self.group_of) {
                if gi as usize == g {
                    self.raw.push(x);
                }
            }
            let group_med = median_into(&mut self.sorted, &self.raw);
            self.counts.clear();
            for (&(_, x, idx), &gi) in self.numeric.iter().zip(&self.group_of) {
                if gi as usize == g {
                    match self.counts.iter_mut().find(|(v, _, _)| *v == x) {
                        Some((_, c, _)) => *c += 1,
                        None => self.counts.push((x, 1, idx)),
                    }
                }
            }
            let representative_obs = self.counts[max_count_index(&self.counts, group_med)].2;

            let mut providers = self.pool.pop().unwrap_or_default();
            for (&(source, _, _), &gi) in self.numeric.iter().zip(&self.group_of) {
                if gi as usize == g {
                    providers.push(source);
                }
            }
            out.push(ValueBucket {
                representative: observations[representative_obs as usize].value.clone(),
                providers,
            });
        }
    }

    fn bucket_text_into(&mut self, observations: &[Observation], out: &mut Vec<ValueBucket>) {
        // Group by the exact key string the map-based path uses (the text
        // itself, or the display form for non-text values mixed into a text
        // item), first-seen order; the caller's final sort normalizes the
        // bucket order exactly like the map-based path.
        self.group_of.clear();
        self.text_firsts.clear();
        for (i, o) in observations.iter().enumerate() {
            let g = self
                .text_firsts
                .iter()
                .position(|&f| text_key_eq(&observations[f as usize].value, &o.value));
            match g {
                Some(g) => self.group_of.push(g as u32),
                None => {
                    self.text_firsts.push(i as u32);
                    self.group_of.push((self.text_firsts.len() - 1) as u32);
                }
            }
        }
        for (g, &first) in self.text_firsts.iter().enumerate() {
            let mut providers = self.pool.pop().unwrap_or_default();
            for (i, &gi) in self.group_of.iter().enumerate() {
                if gi as usize == g {
                    providers.push(observations[i].source);
                }
            }
            out.push(ValueBucket {
                representative: observations[first as usize].value.clone(),
                providers,
            });
        }
    }
}

/// Whether two values share the text-path grouping key (`Value::Text`
/// contents, display form otherwise) without materializing the key strings
/// for the all-text common case.
fn text_key_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Text(x), Value::Text(y)) => x == y,
        _ => a.to_string() == b.to_string(),
    }
}

/// [`crate::stats::median`] into a reusable sort buffer: same filtering of
/// non-finite values, same even/odd behavior, no allocation once warm.
fn median_into(sorted: &mut Vec<f64>, xs: &[f64]) -> f64 {
    sorted.clear();
    sorted.extend(xs.iter().copied().filter(|x| x.is_finite()));
    if sorted.is_empty() {
        return 0.0;
    }
    // Plain f64s: an unstable sort yields the same sorted array as the
    // stable sort `stats::median` uses, hence the same median.
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Index of the winning `(value, count, _)` entry under the election
/// comparator shared by `dominant_raw_value` and `bucket_representative`:
/// highest count, ties to the value closest to `med`, then to the smaller
/// value — replicating `Iterator::max_by` (the *last* maximal element wins).
fn max_count_index(counts: &[(f64, usize, u32)], med: f64) -> usize {
    let mut best = 0usize;
    for candidate in 1..counts.len() {
        let (va, ca, _) = counts[best];
        let (vb, cb, _) = counts[candidate];
        let da = (va - med).abs();
        let db = (vb - med).abs();
        let ord = ca
            .cmp(&cb)
            .then_with(|| db.partial_cmp(&da).unwrap_or(Ordering::Equal))
            .then_with(|| vb.partial_cmp(&va).unwrap_or(Ordering::Equal));
        if ord != Ordering::Greater {
            best = candidate;
        }
    }
    best
}

/// Convenience wrapper: bucket the observations of one data item of attribute
/// `attr` under tolerance context `ctx`.
pub fn bucket_values(
    observations: &[(SourceId, Value)],
    attr: AttrId,
    ctx: &ToleranceContext,
) -> Vec<ValueBucket> {
    Bucketing::for_attr(ctx, attr).bucket(observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tolerance::TolerancePolicy;

    fn obs(values: &[f64]) -> Vec<(SourceId, Value)> {
        values
            .iter()
            .enumerate()
            .map(|(i, v)| (SourceId(i as u32), Value::number(*v)))
            .collect()
    }

    #[test]
    fn close_values_share_a_bucket() {
        let b = Bucketing {
            tolerance: 1.0,
            similarity_scale: 100.0,
        };
        let buckets = b.bucket(&obs(&[100.0, 100.4, 99.8, 105.0]));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 3);
        assert_eq!(buckets[1].support(), 1);
        assert_eq!(buckets[0].representative, Value::number(100.0));
    }

    #[test]
    fn zero_tolerance_gives_exact_groups() {
        let b = Bucketing {
            tolerance: 0.0,
            similarity_scale: 1.0,
        };
        let buckets = b.bucket(&obs(&[1.0, 1.0, 1.000001, 2.0]));
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].support(), 2);
    }

    #[test]
    fn text_values_group_by_normalized_string() {
        let b = Bucketing {
            tolerance: 0.0,
            similarity_scale: 1.0,
        };
        let observations = vec![
            (SourceId(0), Value::text("B12")),
            (SourceId(1), Value::text("b12")),
            (SourceId(2), Value::text("C3")),
        ];
        let buckets = b.bucket(&observations);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 2);
        assert_eq!(buckets[0].representative, Value::text("b12"));
    }

    #[test]
    fn dominant_bucket_comes_first_with_deterministic_ties() {
        let b = Bucketing {
            tolerance: 0.5,
            similarity_scale: 1.0,
        };
        // Two buckets of support 2: ordering must be deterministic (smaller repr first).
        let buckets = b.bucket(&obs(&[10.0, 10.0, 20.0, 20.0]));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 2);
        assert_eq!(buckets[0].representative, Value::number(10.0));
    }

    #[test]
    fn empty_input_gives_no_buckets() {
        let b = Bucketing {
            tolerance: 1.0,
            similarity_scale: 1.0,
        };
        assert!(b.bucket(&[]).is_empty());
    }

    #[test]
    fn time_values_bucket_with_minute_tolerance() {
        let b = Bucketing {
            tolerance: 10.0,
            similarity_scale: 10.0,
        };
        let observations = vec![
            (SourceId(0), Value::time(600)),
            (SourceId(1), Value::time(604)),
            (SourceId(2), Value::time(630)),
        ];
        let buckets = b.bucket(&observations);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 2);
    }

    #[test]
    fn convenience_function_uses_context() {
        use crate::schema::{AttrKind, DomainSchema};
        let mut schema = DomainSchema::new("stock");
        let a = schema.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        let ctx = ToleranceContext::from_values(
            &schema,
            &[vec![Value::number(100.0), Value::number(101.0)]],
            TolerancePolicy::default(),
        );
        let buckets = bucket_values(
            &[
                (SourceId(0), Value::number(100.0)),
                (SourceId(1), Value::number(100.5)),
            ],
            a,
            &ctx,
        );
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].support(), 2);
    }

    fn observations_of(pairs: &[(SourceId, Value)]) -> Vec<Observation> {
        pairs
            .iter()
            .map(|(source, value)| Observation {
                source: *source,
                value: value.clone(),
            })
            .collect()
    }

    /// One warm bucketer, fed wildly different item shapes back to back,
    /// must reproduce `Bucketing::bucket` exactly on every one — the
    /// invariant the warm-arena preparation path rests on.
    #[test]
    fn bucketer_reuse_matches_one_shot_bucketing() {
        let numeric_cfg = Bucketing {
            tolerance: 1.0,
            similarity_scale: 100.0,
        };
        let zero_tol = Bucketing {
            tolerance: 0.0,
            similarity_scale: 1.0,
        };
        let items: Vec<(Bucketing, Vec<(SourceId, Value)>)> = vec![
            (numeric_cfg, obs(&[100.0, 100.4, 99.8, 105.0])),
            (numeric_cfg, vec![]),
            (zero_tol, obs(&[1.0, 1.0, 1.000001, 2.0])),
            (
                zero_tol,
                vec![
                    (SourceId(0), Value::text("B12")),
                    (SourceId(1), Value::text("b12")),
                    (SourceId(2), Value::text("C3")),
                ],
            ),
            (
                numeric_cfg,
                vec![
                    (SourceId(0), Value::time(600)),
                    (SourceId(1), Value::time(604)),
                    (SourceId(2), Value::time(630)),
                ],
            ),
            // Rounded values whose representative election must pick the
            // first-seen member of the winning exact value.
            (
                numeric_cfg,
                vec![
                    (SourceId(0), Value::rounded_number(8.0, 1.0)),
                    (SourceId(1), Value::number(8.0)),
                    (SourceId(2), Value::number(8.0)),
                ],
            ),
            (numeric_cfg, obs(&[10.0, 10.0, 20.0, 20.0])),
            (numeric_cfg, obs(&[42.0])),
        ];

        let mut bucketer = Bucketer::new();
        let mut out = Vec::new();
        for (cfg, pairs) in &items {
            let expected = cfg.bucket(pairs);
            bucketer.bucket_into(cfg, &observations_of(pairs), &mut out);
            assert_eq!(out, expected, "warm bucketer diverged on {pairs:?}");
        }
        // And a second sweep over the same items (fully warm buffers).
        for (cfg, pairs) in &items {
            bucketer.bucket_into(cfg, &observations_of(pairs), &mut out);
            assert_eq!(out, cfg.bucket(pairs));
        }
    }

    #[test]
    fn every_provider_appears_in_exactly_one_bucket() {
        let b = Bucketing {
            tolerance: 2.0,
            similarity_scale: 1.0,
        };
        let observations = obs(&[1.0, 2.0, 3.0, 7.0, 8.0, 20.0]);
        let buckets = b.bucket(&observations);
        let mut seen: Vec<SourceId> = buckets.iter().flat_map(|b| b.providers.clone()).collect();
        seen.sort_unstable();
        let mut expected: Vec<SourceId> = observations.iter().map(|(s, _)| *s).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }
}
