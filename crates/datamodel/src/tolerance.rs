//! Tolerance policy (Equation 3 of the paper) and the per-attribute tolerance
//! context used throughout profiling and fusion.
//!
//! The paper is "fairly tolerant to slightly different values": times match
//! within 10 minutes, and a numeric attribute `A` matches within
//! `τ(A) = α · Median(V̄(A))` where `V̄(A)` is the set of all values provided
//! for `A` and `α = 0.01` by default.

use crate::ids::AttrId;
use crate::schema::{AttrKind, DomainSchema};
use crate::stats::median;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Default tolerance factor α of Equation 3.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Tolerance for time attributes, in minutes (paper, Section 3.2).
pub const TIME_TOLERANCE_MINUTES: f64 = 10.0;

/// Configuration of the tolerance computation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TolerancePolicy {
    /// The α factor of Equation 3 applied to the median of numeric values.
    pub alpha: f64,
    /// Tolerance applied to time values, in minutes.
    pub time_tolerance_minutes: f64,
}

impl Default for TolerancePolicy {
    fn default() -> Self {
        Self {
            alpha: DEFAULT_ALPHA,
            time_tolerance_minutes: TIME_TOLERANCE_MINUTES,
        }
    }
}

impl TolerancePolicy {
    /// A strict policy with (numerically) zero tolerance, useful in tests.
    pub fn strict() -> Self {
        Self {
            alpha: 0.0,
            time_tolerance_minutes: 0.0,
        }
    }
}

/// Per-attribute absolute tolerances computed from observed data.
///
/// Built once per snapshot with [`ToleranceContext::from_values`]; the
/// profiling and fusion crates then ask for the absolute tolerance of any
/// attribute via [`ToleranceContext::tolerance`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ToleranceContext {
    policy: TolerancePolicy,
    /// Absolute tolerance per attribute, indexed by `AttrId::index()`.
    per_attr: Vec<f64>,
    /// Typical magnitude per attribute (median of |values|), used as the
    /// similarity scale by `AccuSim`-style methods.
    scale: Vec<f64>,
}

impl ToleranceContext {
    /// Compute tolerances from all values observed for each attribute.
    ///
    /// `values_per_attr[a]` must hold every value any source provided for
    /// attribute `a` in the snapshot (duplicates included); the schema drives
    /// whether an attribute uses the numeric α·median rule or the fixed time
    /// tolerance. Text attributes get tolerance 0 (exact match after
    /// normalization).
    pub fn from_values(
        schema: &DomainSchema,
        values_per_attr: &[Vec<Value>],
        policy: TolerancePolicy,
    ) -> Self {
        let mut per_attr = vec![0.0; schema.num_attributes()];
        let mut scale = vec![1.0; schema.num_attributes()];
        for attr in &schema.attributes {
            let idx = attr.id.index();
            let observed: Vec<f64> = values_per_attr
                .get(idx)
                .map(|vs| vs.iter().filter_map(Value::as_f64).collect())
                .unwrap_or_default();
            match attr.kind {
                AttrKind::Numeric { scale: s } => {
                    let med = if observed.is_empty() {
                        s
                    } else {
                        median(&observed).abs()
                    };
                    per_attr[idx] = policy.alpha * med;
                    scale[idx] = if med > 0.0 { med } else { s.max(1.0) };
                }
                AttrKind::Time => {
                    per_attr[idx] = policy.time_tolerance_minutes;
                    scale[idx] = policy.time_tolerance_minutes.max(1.0);
                }
                AttrKind::Categorical { .. } => {
                    per_attr[idx] = 0.0;
                    scale[idx] = 1.0;
                }
            }
        }
        Self {
            policy,
            per_attr,
            scale,
        }
    }

    /// A context with explicit per-attribute tolerances (mainly for tests).
    pub fn explicit(per_attr: Vec<f64>, policy: TolerancePolicy) -> Self {
        let scale = per_attr.iter().map(|t| t.max(1.0)).collect();
        Self {
            policy,
            per_attr,
            scale,
        }
    }

    /// The policy the context was built with.
    pub fn policy(&self) -> TolerancePolicy {
        self.policy
    }

    /// Absolute tolerance τ(A) for attribute `attr` (Equation 3). Attributes
    /// unknown to the context (out of range) get zero tolerance.
    pub fn tolerance(&self, attr: AttrId) -> f64 {
        self.per_attr.get(attr.index()).copied().unwrap_or(0.0)
    }

    /// Similarity scale for attribute `attr`: roughly the magnitude of its
    /// values, used to normalize distances in `Value::similarity`.
    pub fn similarity_scale(&self, attr: AttrId) -> f64 {
        self.scale.get(attr.index()).copied().unwrap_or(1.0)
    }

    /// Tolerance-aware value equality for attribute `attr`.
    pub fn values_match(&self, attr: AttrId, a: &Value, b: &Value) -> bool {
        a.matches(b, self.tolerance(attr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrKind;

    fn schema() -> DomainSchema {
        let mut s = DomainSchema::new("stock");
        s.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        s.add_attribute("Actual departure", AttrKind::Time, false);
        s.add_attribute("Gate", AttrKind::Categorical { cardinality: 30 }, false);
        s
    }

    #[test]
    fn numeric_tolerance_is_alpha_times_median() {
        let schema = schema();
        let values = vec![
            vec![
                Value::number(100.0),
                Value::number(102.0),
                Value::number(98.0),
            ],
            vec![],
            vec![],
        ];
        let ctx =
            ToleranceContext::from_values(&schema, &values, TolerancePolicy::default());
        assert!((ctx.tolerance(AttrId(0)) - 1.0).abs() < 1e-12);
        assert!(ctx.values_match(AttrId(0), &Value::number(100.0), &Value::number(100.9)));
        assert!(!ctx.values_match(AttrId(0), &Value::number(100.0), &Value::number(101.5)));
    }

    #[test]
    fn time_tolerance_is_ten_minutes() {
        let schema = schema();
        let ctx = ToleranceContext::from_values(
            &schema,
            &[vec![], vec![Value::time(600)], vec![]],
            TolerancePolicy::default(),
        );
        assert_eq!(ctx.tolerance(AttrId(1)), 10.0);
        assert!(ctx.values_match(AttrId(1), &Value::time(600), &Value::time(610)));
        assert!(!ctx.values_match(AttrId(1), &Value::time(600), &Value::time(611)));
    }

    #[test]
    fn text_requires_exact_match() {
        let schema = schema();
        let ctx = ToleranceContext::from_values(
            &schema,
            &[vec![], vec![], vec![Value::text("B12")]],
            TolerancePolicy::default(),
        );
        assert_eq!(ctx.tolerance(AttrId(2)), 0.0);
        assert!(ctx.values_match(AttrId(2), &Value::text("B12"), &Value::text("b12")));
        assert!(!ctx.values_match(AttrId(2), &Value::text("B12"), &Value::text("B13")));
    }

    #[test]
    fn missing_values_fall_back_to_schema_scale() {
        let schema = schema();
        let ctx = ToleranceContext::from_values(
            &schema,
            &[vec![], vec![], vec![]],
            TolerancePolicy::default(),
        );
        // α * schema scale (100) = 1.0
        assert!((ctx.tolerance(AttrId(0)) - 1.0).abs() < 1e-12);
        // Unknown attribute -> 0.
        assert_eq!(ctx.tolerance(AttrId(55)), 0.0);
    }

    #[test]
    fn strict_policy_disables_tolerance() {
        let schema = schema();
        let ctx = ToleranceContext::from_values(
            &schema,
            &[vec![Value::number(100.0)], vec![], vec![]],
            TolerancePolicy::strict(),
        );
        assert_eq!(ctx.tolerance(AttrId(0)), 0.0);
        assert_eq!(ctx.tolerance(AttrId(1)), 0.0);
    }
}
