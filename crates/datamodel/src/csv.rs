//! Plain-CSV import/export of observation tables and gold standards.
//!
//! The paper's original data sets were distributed as delimited text files
//! (one claim per line). This module lets the library run over real crawled
//! data in that spirit, without pulling in an external CSV dependency:
//!
//! * observation files: `source,object,attribute,value` — one claim per line;
//! * gold files: `object,attribute,value` — one reference value per line.
//!
//! Values are parsed according to the attribute kind declared in the
//! [`DomainSchema`]: numeric attributes accept plain numbers with optional
//! thousands separators and `K`/`M`/`B` suffixes (the normalization the paper
//! performs manually), time attributes accept minutes or `HH:MM`, categorical
//! attributes are taken verbatim.

use crate::gold::GoldStandard;
use crate::ids::{AttrId, ObjectId, SourceId};
use crate::schema::{AttrKind, DomainSchema};
use crate::snapshot::{Snapshot, SnapshotBuilder};
use crate::value::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// An error produced while parsing CSV claims.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number the error occurred on (0 for structural errors).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError {
        line,
        message: message.into(),
    }
}

/// Incrementally maps external string identifiers to dense ids.
#[derive(Debug, Default)]
struct Interner {
    map: BTreeMap<String, u32>,
}

impl Interner {
    fn get_or_insert(&mut self, key: &str) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(key.to_string()).or_insert(next)
    }

    fn get(&self, key: &str) -> Option<u32> {
        self.map.get(key).copied()
    }
}

/// Parses claim files against a fixed schema, interning source and object
/// names as it goes.
#[derive(Debug)]
pub struct CsvReader {
    schema: DomainSchema,
    attr_by_name: BTreeMap<String, AttrId>,
    sources: Interner,
    objects: Interner,
}

impl CsvReader {
    /// Create a reader for a schema whose attributes are already declared.
    /// Source entries are added to the schema as they are first seen.
    pub fn new(schema: DomainSchema) -> Self {
        let attr_by_name = schema
            .attributes
            .iter()
            .map(|a| (normalize_key(&a.name), a.id))
            .collect();
        Self {
            schema,
            attr_by_name,
            sources: Interner::default(),
            objects: Interner::default(),
        }
    }

    /// Parse one observation file (claims) into a [`Snapshot`] for `day`.
    ///
    /// Lines are `source,object,attribute,value`; empty lines and lines
    /// starting with `#` are skipped. Unknown attributes are an error.
    pub fn read_snapshot(&mut self, day: u32, text: &str) -> Result<Snapshot, CsvError> {
        let mut builder = SnapshotBuilder::new(day);
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields = split_fields(line, 4).map_err(|m| err(line_no, m))?;
            let source = self.intern_source(&fields[0]);
            let object = ObjectId(self.objects.get_or_insert(fields[1].trim()));
            let attr = self.lookup_attr(&fields[2], line_no)?;
            let value = self.parse_value(attr, &fields[3], line_no)?;
            builder.add(source, object, attr, value);
        }
        Ok(builder.build(Arc::new(self.schema.clone())))
    }

    /// Parse one gold-standard file (`object,attribute,value`).
    pub fn read_gold(&mut self, text: &str) -> Result<GoldStandard, CsvError> {
        let mut gold = GoldStandard::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields = split_fields(line, 3).map_err(|m| err(line_no, m))?;
            let object = match self.objects.get(fields[0].trim()) {
                Some(id) => ObjectId(id),
                None => ObjectId(self.objects.get_or_insert(fields[0].trim())),
            };
            let attr = self.lookup_attr(&fields[1], line_no)?;
            let value = self.parse_value(attr, &fields[2], line_no)?;
            gold.insert(crate::ids::ItemId::new(object, attr), value);
        }
        Ok(gold)
    }

    /// The (possibly source-augmented) schema.
    pub fn schema(&self) -> &DomainSchema {
        &self.schema
    }

    fn intern_source(&mut self, name: &str) -> SourceId {
        let name = name.trim();
        match self
            .schema
            .sources
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
        {
            Some(s) => s.id,
            None => {
                self.sources.get_or_insert(name);
                self.schema.add_source(name, false)
            }
        }
    }

    fn lookup_attr(&self, name: &str, line: usize) -> Result<AttrId, CsvError> {
        self.attr_by_name
            .get(&normalize_key(name))
            .copied()
            .ok_or_else(|| err(line, format!("unknown attribute '{}'", name.trim())))
    }

    fn parse_value(&self, attr: AttrId, raw: &str, line: usize) -> Result<Value, CsvError> {
        let raw = raw.trim();
        match self.schema.attribute(attr).kind {
            AttrKind::Numeric { .. } => parse_number(raw)
                .map(|(v, granularity)| {
                    if granularity > 0.0 {
                        Value::rounded_number(v, granularity)
                    } else {
                        Value::number(v)
                    }
                })
                .ok_or_else(|| err(line, format!("invalid number '{raw}'"))),
            AttrKind::Time => parse_time(raw)
                .map(Value::time)
                .ok_or_else(|| err(line, format!("invalid time '{raw}'"))),
            AttrKind::Categorical { .. } => Ok(Value::text(raw)),
        }
    }
}

/// Render a snapshot back to the claim-file format (inverse of
/// [`CsvReader::read_snapshot`]), mainly for round-trip tests and debugging.
pub fn write_snapshot(snapshot: &Snapshot) -> String {
    let mut out = String::from("# source,object,attribute,value\n");
    for (item, obs) in snapshot.items() {
        let attr_name = &snapshot.schema().attribute(item.attr).name;
        for o in obs {
            let source_name = &snapshot.schema().source(o.source).name;
            out.push_str(&format!(
                "{source_name},{},{attr_name},{}\n",
                item.object.0, o.value
            ));
        }
    }
    out
}

fn normalize_key(s: &str) -> String {
    s.trim().to_lowercase()
}

fn split_fields(line: &str, expected: usize) -> Result<Vec<String>, String> {
    let fields: Vec<String> = line.splitn(expected, ',').map(|f| f.to_string()).collect();
    if fields.len() != expected {
        return Err(format!(
            "expected {expected} comma-separated fields, found {}",
            fields.len()
        ));
    }
    Ok(fields)
}

/// Parse a numeric string with optional thousands separators, `$`/`%` noise,
/// and `K`/`M`/`B` suffixes. Returns `(value, granularity)` where the
/// granularity reflects the suffix rounding (e.g. `"6.7M"` has granularity
/// 100 000 because one decimal of a million is shown).
fn parse_number(raw: &str) -> Option<(f64, f64)> {
    let cleaned: String = raw
        .chars()
        .filter(|c| !matches!(c, ',' | '$' | '%' | ' '))
        .collect();
    if cleaned.is_empty() {
        return None;
    }
    let (body, multiplier) = match cleaned.chars().last().map(|c| c.to_ascii_uppercase()) {
        Some('K') => (&cleaned[..cleaned.len() - 1], 1e3),
        Some('M') => (&cleaned[..cleaned.len() - 1], 1e6),
        Some('B') => (&cleaned[..cleaned.len() - 1], 1e9),
        _ => (cleaned.as_str(), 1.0),
    };
    let value: f64 = body.parse().ok()?;
    if multiplier == 1.0 {
        return Some((value, 0.0));
    }
    // Granularity: one unit of the least-significant shown digit.
    let decimals = body.split('.').nth(1).map(|d| d.len() as i32).unwrap_or(0);
    let granularity = multiplier * 10f64.powi(-decimals);
    Some((value * multiplier, granularity))
}

/// Parse a time as raw minutes or `HH:MM` (24-hour).
fn parse_time(raw: &str) -> Option<i64> {
    if let Ok(minutes) = raw.parse::<i64>() {
        return Some(minutes);
    }
    let (h, m) = raw.split_once(':')?;
    let hours: i64 = h.trim().parse().ok()?;
    let minutes: i64 = m.trim().parse().ok()?;
    if !(0..24).contains(&hours) || !(0..60).contains(&minutes) {
        return None;
    }
    Some(hours * 60 + minutes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ItemId;

    fn schema() -> DomainSchema {
        let mut s = DomainSchema::new("stock");
        s.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        s.add_attribute("Volume", AttrKind::Numeric { scale: 1e6 }, false);
        s.add_attribute("Scheduled departure", AttrKind::Time, false);
        s.add_attribute("Departure gate", AttrKind::Categorical { cardinality: 40 }, false);
        s
    }

    #[test]
    fn parses_claims_and_gold() {
        let mut reader = CsvReader::new(schema());
        let snapshot = reader
            .read_snapshot(
                0,
                "# comment\n\
                 yahoo,AAPL,Last price,399.20\n\
                 google,AAPL,Last price,$399.25\n\
                 yahoo,AAPL,Volume,6{COMMA}700{COMMA}000\n\
                 stocksmart,AAPL,Volume,6.7M\n\
                 orbitz,AA119,Scheduled departure,18:15\n\
                 orbitz,AA119,Departure gate, D30 \n"
                    .replace("{COMMA}", ",")
                    .as_str(),
            )
            .expect("valid claims");
        assert_eq!(snapshot.num_observations(), 6);
        assert_eq!(snapshot.active_sources().len(), 4);

        let gold = reader
            .read_gold("AAPL,Last price,399.22\nAA119,Scheduled departure,1095\n")
            .expect("valid gold");
        assert_eq!(gold.len(), 2);
        // The two price claims fall within the 1% tolerance of the gold value.
        let price_item = ItemId::new(ObjectId(0), AttrId(0));
        for o in snapshot.observations(price_item) {
            assert_eq!(gold.judge(&snapshot, price_item, &o.value), Some(true));
        }
    }

    #[test]
    fn number_normalization_matches_paper_examples() {
        // "6.7M", "6,700,000" and "6700000" are the same value.
        assert_eq!(parse_number("6.7M").unwrap().0, 6_700_000.0);
        assert_eq!(parse_number("6,700,000").unwrap().0, 6_700_000.0);
        assert_eq!(parse_number("6700000").unwrap().0, 6_700_000.0);
        // Suffix granularity: one decimal of a million.
        assert_eq!(parse_number("6.7M").unwrap().1, 100_000.0);
        assert_eq!(parse_number("76B").unwrap().0, 76e9);
        assert!(parse_number("n/a").is_none());
    }

    #[test]
    fn time_parsing() {
        assert_eq!(parse_time("18:15"), Some(1095));
        assert_eq!(parse_time("1095"), Some(1095));
        assert_eq!(parse_time("25:00"), None);
        assert_eq!(parse_time("xx"), None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut reader = CsvReader::new(schema());
        let result = reader.read_snapshot(0, "yahoo,AAPL,Last price,399.20\nbad line\n");
        let error = result.unwrap_err();
        assert_eq!(error.line, 2);
        assert!(error.to_string().contains("line 2"));

        let unknown = reader
            .read_snapshot(0, "yahoo,AAPL,Unknown attr,1.0\n")
            .unwrap_err();
        assert!(unknown.message.contains("unknown attribute"));

        let bad_number = reader
            .read_snapshot(0, "yahoo,AAPL,Last price,abc\n")
            .unwrap_err();
        assert!(bad_number.message.contains("invalid number"));
    }

    #[test]
    fn round_trip_through_writer() {
        let mut reader = CsvReader::new(schema());
        let text = "yahoo,AAPL,Last price,399.2\ngoogle,AAPL,Last price,400.1\n";
        let snapshot = reader.read_snapshot(0, text).unwrap();
        let written = write_snapshot(&snapshot);
        let mut second = CsvReader::new(schema());
        let reparsed = second.read_snapshot(0, &written).unwrap();
        assert_eq!(reparsed.num_observations(), snapshot.num_observations());
        assert_eq!(reparsed.num_items(), snapshot.num_items());
    }
}
