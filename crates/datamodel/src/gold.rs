//! Gold standards: the reference truth used to evaluate fusion output.
//!
//! The paper builds gold standards in two ways:
//! * **Stock**: voting over five authoritative sources (NASDAQ, Yahoo!
//!   Finance, Google Finance, MSN Money, Bloomberg), only on items provided
//!   by at least three of them;
//! * **Flight**: trusting the data provided by the three airline websites on
//!   100 randomly selected flights.
//!
//! [`GoldStandard::from_authority_voting`] reproduces the first procedure;
//! generators can also emit the *true world* directly as a gold standard,
//! which lets experiments quantify how imperfect the paper-style gold
//! standard is (a point Section 5 of the paper raises).

use crate::bucket::Bucketing;
use crate::ids::{ItemId, SourceId};
use crate::snapshot::Snapshot;
use crate::value::Value;
use std::collections::BTreeMap;

/// A mapping from data items to their reference (true) values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GoldStandard {
    values: BTreeMap<ItemId, Value>,
}

impl GoldStandard {
    /// An empty gold standard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build directly from an item → value mapping.
    pub fn from_values(values: BTreeMap<ItemId, Value>) -> Self {
        Self { values }
    }

    /// Build a gold standard the way the paper does for Stock: take the
    /// authority sources' values on each item, keep items provided by at
    /// least `min_providers` of them, and record the majority (dominant
    /// bucket) value.
    pub fn from_authority_voting(
        snapshot: &Snapshot,
        authorities: &[SourceId],
        min_providers: usize,
    ) -> Self {
        let mut values = BTreeMap::new();
        for (item, obs) in snapshot.items() {
            let authority_obs: Vec<(SourceId, Value)> = obs
                .iter()
                .filter(|o| authorities.contains(&o.source))
                .map(|o| (o.source, o.value.clone()))
                .collect();
            if authority_obs.len() < min_providers {
                continue;
            }
            let buckets =
                Bucketing::for_attr(snapshot.tolerance(), item.attr).bucket(&authority_obs);
            if let Some(top) = buckets.first() {
                values.insert(*item, top.representative.clone());
            }
        }
        Self { values }
    }

    /// Record (or overwrite) the reference value of one item.
    pub fn insert(&mut self, item: ItemId, value: Value) {
        self.values.insert(item, value);
    }

    /// Reference value for `item`, if the gold standard covers it.
    pub fn get(&self, item: ItemId) -> Option<&Value> {
        self.values.get(&item)
    }

    /// Whether the gold standard covers `item`.
    pub fn contains(&self, item: ItemId) -> bool {
        self.values.contains_key(&item)
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the gold standard is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(item, value)` pairs in item order.
    pub fn iter(&self) -> impl Iterator<Item = (&ItemId, &Value)> {
        self.values.iter()
    }

    /// Items covered by the gold standard, in order.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.values.keys().copied()
    }

    /// Whether `candidate` is consistent with the gold standard on `item`,
    /// under the snapshot's per-attribute tolerance. Returns `None` when the
    /// gold standard does not cover the item (such items are excluded from
    /// precision computations, as in the paper).
    pub fn judge(
        &self,
        snapshot: &Snapshot,
        item: ItemId,
        candidate: &Value,
    ) -> Option<bool> {
        self.get(item).map(|truth| {
            let tol = snapshot.tolerance().tolerance(item.attr);
            truth.matches(candidate, tol) || candidate.subsumes(truth)
        })
    }

    /// Restrict to the items also present in `other` (useful to compare
    /// paper-style gold standards against the generator's true world).
    pub fn intersect_items(&self, other: &GoldStandard) -> GoldStandard {
        GoldStandard {
            values: self
                .values
                .iter()
                .filter(|(item, _)| other.contains(**item))
                .map(|(item, v)| (*item, v.clone()))
                .collect(),
        }
    }

    /// Fraction of items of `self` whose value agrees with `other` under
    /// `snapshot`'s tolerance (items missing from `other` are skipped).
    /// Returns `None` when there is no overlap.
    pub fn agreement_with(&self, other: &GoldStandard, snapshot: &Snapshot) -> Option<f64> {
        let mut total = 0usize;
        let mut agree = 0usize;
        for (item, value) in self.iter() {
            if let Some(matches) = other.judge(snapshot, *item, value) {
                total += 1;
                if matches {
                    agree += 1;
                }
            }
        }
        if total == 0 {
            None
        } else {
            Some(agree as f64 / total as f64)
        }
    }
}

impl FromIterator<(ItemId, Value)> for GoldStandard {
    fn from_iter<T: IntoIterator<Item = (ItemId, Value)>>(iter: T) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AttrId, ObjectId};
    use crate::schema::{AttrKind, DomainSchema};
    use crate::snapshot::SnapshotBuilder;
    use std::sync::Arc;

    fn snapshot() -> Snapshot {
        let mut s = DomainSchema::new("stock");
        s.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        s.add_source("auth0", true);
        s.add_source("auth1", true);
        s.add_source("auth2", true);
        s.add_source("other", false);
        let schema = Arc::new(s);
        let mut b = SnapshotBuilder::new(0);
        let item_obj = ObjectId(0);
        b.add(SourceId(0), item_obj, AttrId(0), Value::number(100.0));
        b.add(SourceId(1), item_obj, AttrId(0), Value::number(100.1));
        b.add(SourceId(2), item_obj, AttrId(0), Value::number(107.0));
        b.add(SourceId(3), item_obj, AttrId(0), Value::number(55.0));
        // Second object covered by only two authorities.
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(50.0));
        b.add(SourceId(1), ObjectId(1), AttrId(0), Value::number(50.0));
        b.build(schema)
    }

    #[test]
    fn authority_voting_takes_majority_bucket() {
        let snap = snapshot();
        let gold = GoldStandard::from_authority_voting(
            &snap,
            &[SourceId(0), SourceId(1), SourceId(2)],
            3,
        );
        assert_eq!(gold.len(), 1);
        let item = ItemId::new(ObjectId(0), AttrId(0));
        assert_eq!(gold.get(item), Some(&Value::number(100.0)));
        // The second object has only two authority providers, below threshold.
        assert!(!gold.contains(ItemId::new(ObjectId(1), AttrId(0))));
    }

    #[test]
    fn judge_respects_tolerance_and_coverage() {
        let snap = snapshot();
        let item = ItemId::new(ObjectId(0), AttrId(0));
        let mut gold = GoldStandard::new();
        gold.insert(item, Value::number(100.0));
        assert_eq!(gold.judge(&snap, item, &Value::number(100.5)), Some(true));
        assert_eq!(gold.judge(&snap, item, &Value::number(103.0)), Some(false));
        assert_eq!(
            gold.judge(&snap, ItemId::new(ObjectId(9), AttrId(0)), &Value::number(1.0)),
            None
        );
    }

    #[test]
    fn judge_accepts_coarser_formatting() {
        let snap = snapshot();
        let item = ItemId::new(ObjectId(0), AttrId(0));
        let mut gold = GoldStandard::new();
        gold.insert(item, Value::number(103.4));
        // A candidate rounded to tens subsumes the truth even though the
        // absolute difference exceeds the tolerance.
        let coarse = Value::rounded_number(100.0, 10.0);
        assert_eq!(gold.judge(&snap, item, &coarse), Some(true));
    }

    #[test]
    fn agreement_and_intersection() {
        let snap = snapshot();
        let item0 = ItemId::new(ObjectId(0), AttrId(0));
        let item1 = ItemId::new(ObjectId(1), AttrId(0));
        let truth: GoldStandard = [(item0, Value::number(100.0)), (item1, Value::number(50.0))]
            .into_iter()
            .collect();
        let paper_gold: GoldStandard = [(item0, Value::number(107.0))].into_iter().collect();
        assert_eq!(paper_gold.agreement_with(&truth, &snap), Some(0.0));
        let restricted = truth.intersect_items(&paper_gold);
        assert_eq!(restricted.len(), 1);
        assert!(restricted.contains(item0));
        assert_eq!(truth.agreement_with(&GoldStandard::new(), &snap), None);
    }

    #[test]
    fn basic_container_behaviour() {
        let mut gold = GoldStandard::new();
        assert!(gold.is_empty());
        gold.insert(ItemId::new(ObjectId(0), AttrId(0)), Value::text("x"));
        assert_eq!(gold.len(), 1);
        assert_eq!(gold.items().count(), 1);
        assert_eq!(gold.iter().count(), 1);
    }
}
