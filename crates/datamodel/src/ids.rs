//! Strongly-typed identifiers for sources, objects, attributes, and data items.
//!
//! All identifiers are small integer newtypes so they can be used as dense
//! indices into `Vec`-backed tables without hashing overhead, while remaining
//! impossible to mix up at compile time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a data source (a Deep-Web site in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub u32);

/// Identifier of a real-world object (a stock symbol on a day, a flight on a day).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

/// Identifier of a *global* attribute (after manual schema matching in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u16);

/// A data item: a particular attribute of a particular object.
///
/// The paper assumes each data item is associated with a single true value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId {
    /// The object this item belongs to.
    pub object: ObjectId,
    /// The attribute this item describes.
    pub attr: AttrId,
}

impl SourceId {
    /// Index form for dense `Vec` lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ObjectId {
    /// Index form for dense `Vec` lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl AttrId {
    /// Index form for dense `Vec` lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ItemId {
    /// Convenience constructor.
    #[inline]
    pub fn new(object: ObjectId, attr: AttrId) -> Self {
        Self { object, attr }
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.object, self.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_ordered_and_hashable() {
        let a = SourceId(1);
        let b = SourceId(2);
        assert!(a < b);
        let mut set = HashSet::new();
        set.insert(a);
        set.insert(b);
        set.insert(SourceId(1));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn item_id_composition() {
        let item = ItemId::new(ObjectId(7), AttrId(3));
        assert_eq!(item.object, ObjectId(7));
        assert_eq!(item.attr, AttrId(3));
        assert_eq!(item.to_string(), "O7:A3");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(SourceId(42).index(), 42);
        assert_eq!(ObjectId(7).index(), 7);
        assert_eq!(AttrId(3).index(), 3);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SourceId(5).to_string(), "S5");
        assert_eq!(ObjectId(5).to_string(), "O5");
        assert_eq!(AttrId(5).to_string(), "A5");
    }

    // The original seed test round-tripped ItemId through serde_json, which
    // is unavailable in the offline build (see third_party/README.md). The
    // serde derives now resolve to the stub's marker traits, so assert at
    // compile time that every id type carries them; the behavioral round
    // trip comes back with the real serde.
    #[test]
    fn serde_markers_are_derived() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<SourceId>();
        assert_serde::<ObjectId>();
        assert_serde::<AttrId>();
        assert_serde::<ItemId>();
    }
}
