//! Multi-day data collections.
//!
//! The paper collects one snapshot per day over a month (every weekday of
//! July 2011 for Stock, every day of December 2011 for Flight) and reports
//! both per-snapshot measurements and their evolution over time. A
//! [`Collection`] bundles the per-day snapshots together with a paper-style
//! gold standard and, when produced by a generator, the actual true world.

use crate::gold::GoldStandard;
use crate::schema::DomainSchema;
use crate::snapshot::Snapshot;
use std::sync::Arc;

/// Data for one collection day.
#[derive(Debug, Clone)]
pub struct CollectionDay {
    /// The observation table.
    pub snapshot: Snapshot,
    /// The paper-style gold standard (voting over authority sources or
    /// trusting designated sources).
    pub gold: GoldStandard,
    /// The generator's true world, when known. Empty for real crawled data.
    pub truth: GoldStandard,
}

/// A multi-day data collection for one domain.
#[derive(Debug, Clone)]
pub struct Collection {
    schema: Arc<DomainSchema>,
    days: Vec<CollectionDay>,
}

impl Collection {
    /// Create a collection over `schema` with no days yet.
    pub fn new(schema: Arc<DomainSchema>) -> Self {
        Self {
            schema,
            days: Vec::new(),
        }
    }

    /// Append one day of data.
    pub fn push_day(&mut self, snapshot: Snapshot, gold: GoldStandard, truth: GoldStandard) {
        self.days.push(CollectionDay {
            snapshot,
            gold,
            truth,
        });
    }

    /// The domain schema.
    pub fn schema(&self) -> &DomainSchema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<DomainSchema> {
        Arc::clone(&self.schema)
    }

    /// Number of collection days.
    pub fn num_days(&self) -> usize {
        self.days.len()
    }

    /// Whether the collection has no days.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// Data for day `i` (panics when out of range).
    pub fn day(&self, i: usize) -> &CollectionDay {
        &self.days[i]
    }

    /// Iterate over all days in order.
    pub fn days(&self) -> impl Iterator<Item = &CollectionDay> {
        self.days.iter()
    }

    /// Index of the day the paper-style detailed analyses use. The paper
    /// picks a mid-period day (7/7/2011 for Stock, 12/8/2011 for Flight), so
    /// the middle day of the collection is used; this also guarantees that
    /// out-of-date data can exist (day 0 has no earlier day to be stale
    /// relative to).
    pub fn reference_day_index(&self) -> usize {
        self.days.len() / 2
    }

    /// The day the paper-style detailed analyses use (see
    /// [`Collection::reference_day_index`]).
    pub fn reference_day(&self) -> &CollectionDay {
        self.day(self.reference_day_index())
    }

    /// Total number of observations across all days.
    pub fn total_observations(&self) -> usize {
        self.days.iter().map(|d| d.snapshot.num_observations()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{AttrId, ObjectId, SourceId};
    use crate::schema::AttrKind;
    use crate::snapshot::SnapshotBuilder;
    use crate::value::Value;

    fn schema() -> Arc<DomainSchema> {
        let mut s = DomainSchema::new("stock");
        s.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        s.add_source("A", true);
        Arc::new(s)
    }

    #[test]
    fn push_and_iterate_days() {
        let schema = schema();
        let mut collection = Collection::new(Arc::clone(&schema));
        assert!(collection.is_empty());
        for day in 0..3 {
            let mut b = SnapshotBuilder::new(day);
            b.add(
                SourceId(0),
                ObjectId(0),
                AttrId(0),
                Value::number(100.0 + day as f64),
            );
            let snap = b.build(Arc::clone(&schema));
            collection.push_day(snap, GoldStandard::new(), GoldStandard::new());
        }
        assert_eq!(collection.num_days(), 3);
        assert_eq!(collection.total_observations(), 3);
        assert_eq!(collection.reference_day_index(), 1);
        assert_eq!(collection.reference_day().snapshot.day(), 1);
        let days: Vec<u32> = collection.days().map(|d| d.snapshot.day()).collect();
        assert_eq!(days, vec![0, 1, 2]);
        assert_eq!(collection.schema().domain, "stock");
    }
}
