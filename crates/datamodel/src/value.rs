//! Typed attribute values with normalization, similarity, and formatting.
//!
//! The paper (Section 2.1) distinguishes heterogeneity at the *value level*:
//! a provided value may be exactly the true value, a close/differently
//! formatted representation of it, or plainly wrong. This module models:
//!
//! * [`Value`] — a normalized value: a floating-point number, a time in
//!   minutes, or free text;
//! * [`Granularity`] — the rounding unit a source used to format a numeric
//!   value (e.g. "6.7M" has a granularity of 100 000), used by the
//!   `AccuFormat` family of fusion methods;
//! * similarity between values (used by `TruthFinder` / `AccuSim`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an attribute value. Drives tolerance, similarity, and deviation
/// computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Real-valued numeric data (prices, volumes, percentages...).
    Number,
    /// Time-of-day / timestamp data measured in minutes.
    Time,
    /// Categorical or free-text data (gate numbers, names...).
    Text,
}

/// Rounding granularity of a formatted numeric value.
///
/// A source that reports `"76M"` is treated as providing the value
/// `76_000_000` at granularity `1_000_000`: it is a *partial* provider of any
/// finer-grained value that rounds to the same number (paper, Section 4.1,
/// "Formatting of values").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Granularity(pub f64);

impl Granularity {
    /// Exact values: no rounding was applied by the source.
    pub const EXACT: Granularity = Granularity(0.0);

    /// Whether this granularity denotes an exact (non-rounded) value.
    #[inline]
    pub fn is_exact(self) -> bool {
        self.0 <= 0.0
    }

    /// Round `x` to this granularity.
    #[inline]
    pub fn round(self, x: f64) -> f64 {
        if self.is_exact() {
            x
        } else {
            (x / self.0).round() * self.0
        }
    }

    /// True when `self` is a coarser (larger rounding unit) granularity than `other`.
    #[inline]
    pub fn coarser_than(self, other: Granularity) -> bool {
        if self.is_exact() {
            false
        } else if other.is_exact() {
            true
        } else {
            self.0 > other.0
        }
    }
}

impl Default for Granularity {
    fn default() -> Self {
        Granularity::EXACT
    }
}

/// A normalized attribute value provided by a source (or recorded as truth).
///
/// Values are stored *after* the normalization step the paper applies
/// manually ("6.7M", "6,700,000", and "6700000" are considered as the same
/// value): numeric strings become [`Value::Number`], times become minutes in
/// [`Value::Time`], everything else is trimmed, lower-cased [`Value::Text`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A numeric value together with the granularity the source formatted it at.
    Number {
        /// The (possibly rounded) numeric value.
        value: f64,
        /// The rounding unit the source applied; `Granularity::EXACT` if none.
        granularity: Granularity,
    },
    /// A time value in minutes (since midnight for times of day, or since an
    /// arbitrary epoch for timestamps — only differences matter).
    Time(i64),
    /// Normalized free text.
    Text(String),
}

impl Value {
    /// An exact (non-rounded) numeric value.
    pub fn number(value: f64) -> Self {
        Value::Number {
            value,
            granularity: Granularity::EXACT,
        }
    }

    /// A numeric value the source rounded to `granularity`.
    pub fn rounded_number(value: f64, granularity: f64) -> Self {
        let g = Granularity(granularity);
        Value::Number {
            value: g.round(value),
            granularity: g,
        }
    }

    /// A time value in minutes.
    pub fn time(minutes: i64) -> Self {
        Value::Time(minutes)
    }

    /// A text value; normalizes by trimming and lower-casing, and collapsing
    /// internal whitespace runs to single spaces.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(normalize_text(s.as_ref()))
    }

    /// The kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Number { .. } => ValueKind::Number,
            Value::Time(_) => ValueKind::Time,
            Value::Text(_) => ValueKind::Text,
        }
    }

    /// Numeric view of the value, when one exists (numbers and times).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number { value, .. } => Some(*value),
            Value::Time(m) => Some(*m as f64),
            Value::Text(_) => None,
        }
    }

    /// Granularity of a numeric value (`EXACT` for times and text).
    pub fn granularity(&self) -> Granularity {
        match self {
            Value::Number { granularity, .. } => *granularity,
            _ => Granularity::EXACT,
        }
    }

    /// Whether this value, interpreted as a coarse/rounded representation,
    /// *subsumes* `finer` — i.e. rounding `finer` at this value's granularity
    /// yields this value (within a small epsilon).
    ///
    /// Used by the `AccuFormat` methods: the provider of `"8M"` is treated as
    /// a partial provider of `7,528,396` only when the coarse value is what
    /// the fine value rounds to, which is *not* the case here (it rounds to
    /// 8M only when granularity is 1M and the fine value is within 0.5M).
    pub fn subsumes(&self, finer: &Value) -> bool {
        match (self, finer) {
            (
                Value::Number {
                    value: coarse,
                    granularity: g,
                },
                Value::Number {
                    value: fine,
                    granularity: gf,
                },
            ) => {
                if g.is_exact() || !g.coarser_than(*gf) {
                    return false;
                }
                let rounded = g.round(*fine);
                relative_close(rounded, *coarse, 1e-9)
            }
            _ => false,
        }
    }

    /// Similarity in `[0, 1]` between two values of the same kind.
    ///
    /// * numbers: `exp(-|a-b| / scale)` where `scale` is the provided
    ///   per-attribute scale (typically the tolerance of Equation 3);
    /// * times: `exp(-|a-b| / scale)` with `scale` in minutes;
    /// * text: Jaccard similarity over character trigrams (1.0 for equal
    ///   strings).
    ///
    /// Values of different kinds have similarity 0.
    pub fn similarity(&self, other: &Value, scale: f64) -> f64 {
        let scale = if scale > 0.0 { scale } else { 1.0 };
        match (self, other) {
            (Value::Number { value: a, .. }, Value::Number { value: b, .. }) => {
                (-((a - b).abs() / scale)).exp()
            }
            (Value::Time(a), Value::Time(b)) => {
                (-(((*a - *b).abs() as f64) / scale)).exp()
            }
            (Value::Text(a), Value::Text(b)) => text_similarity(a, b),
            _ => 0.0,
        }
    }

    /// Tolerance-aware equality: numbers match within `tolerance` (absolute),
    /// times match within `tolerance` minutes, text matches exactly after
    /// normalization.
    pub fn matches(&self, other: &Value, tolerance: f64) -> bool {
        match (self, other) {
            (Value::Number { value: a, .. }, Value::Number { value: b, .. }) => {
                (a - b).abs() <= tolerance
            }
            (Value::Time(a), Value::Time(b)) => ((a - b).abs() as f64) <= tolerance,
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number { value, granularity } => {
                if granularity.is_exact() {
                    write!(f, "{value}")
                } else {
                    write!(f, "{value}~{}", granularity.0)
                }
            }
            Value::Time(m) => write!(f, "t{m}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

/// Normalize free text: trim, lower-case, collapse whitespace.
pub fn normalize_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Character-trigram Jaccard similarity between two normalized strings.
fn text_similarity(a: &str, b: &str) -> f64 {
    if a == b {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let grams = |s: &str| -> Vec<[char; 3]> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < 3 {
            return vec![[
                chars[0],
                *chars.get(1).unwrap_or(&'\0'),
                '\0',
            ]];
        }
        chars.windows(3).map(|w| [w[0], w[1], w[2]]).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    let mut inter = 0usize;
    let mut gb_used = vec![false; gb.len()];
    for g in &ga {
        if let Some(pos) = gb
            .iter()
            .enumerate()
            .position(|(i, h)| !gb_used[i] && h == g)
        {
            gb_used[pos] = true;
            inter += 1;
        }
    }
    let union = ga.len() + gb.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[inline]
fn relative_close(a: f64, b: f64, eps: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= eps * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_constructors() {
        let v = Value::number(6_700_000.0);
        assert_eq!(v.kind(), ValueKind::Number);
        assert_eq!(v.as_f64(), Some(6_700_000.0));
        assert!(v.granularity().is_exact());

        let r = Value::rounded_number(6_712_345.0, 100_000.0);
        assert_eq!(r.as_f64(), Some(6_700_000.0));
        assert!(!r.granularity().is_exact());
    }

    #[test]
    fn granularity_rounding() {
        let g = Granularity(1_000_000.0);
        assert_eq!(g.round(7_528_396.0), 8_000_000.0);
        assert_eq!(g.round(7_400_000.0), 7_000_000.0);
        assert!(g.coarser_than(Granularity(1000.0)));
        assert!(!Granularity::EXACT.coarser_than(g));
        assert!(g.coarser_than(Granularity::EXACT));
    }

    #[test]
    fn subsumption_follows_paper_example() {
        // A source that rounds to millions and provides "8M" subsumes 7,528,396.
        let coarse = Value::rounded_number(8_000_000.0, 1_000_000.0);
        let fine = Value::number(7_528_396.0);
        assert!(coarse.subsumes(&fine));
        // ...but "7M" does not.
        let wrong = Value::rounded_number(7_000_000.0, 1_000_000.0);
        assert!(!wrong.subsumes(&fine));
        // An exact value never subsumes anything.
        assert!(!fine.subsumes(&coarse));
    }

    #[test]
    fn matching_with_tolerance() {
        let a = Value::number(100.0);
        let b = Value::number(100.9);
        assert!(a.matches(&b, 1.0));
        assert!(!a.matches(&b, 0.5));

        let t1 = Value::time(600);
        let t2 = Value::time(609);
        assert!(t1.matches(&t2, 10.0));
        assert!(!t1.matches(&t2, 5.0));

        let s1 = Value::text("Gate B12");
        let s2 = Value::text("  gate   b12 ");
        assert!(s1.matches(&s2, 0.0));
    }

    #[test]
    fn kind_mismatch_never_matches() {
        assert!(!Value::number(600.0).matches(&Value::time(600), 1e9));
        assert!(!Value::text("600").matches(&Value::number(600.0), 1e9));
    }

    #[test]
    fn similarity_properties() {
        let a = Value::number(100.0);
        let b = Value::number(101.0);
        let c = Value::number(150.0);
        let sab = a.similarity(&b, 10.0);
        let sac = a.similarity(&c, 10.0);
        assert!(sab > sac);
        assert!((a.similarity(&a, 10.0) - 1.0).abs() < 1e-12);
        assert!(sab > 0.0 && sab < 1.0);

        let t = Value::text("gate b12");
        let u = Value::text("gate b14");
        let v = Value::text("terminal 4");
        assert!(t.similarity(&u, 1.0) > t.similarity(&v, 1.0));
        assert_eq!(t.similarity(&a, 1.0), 0.0);
    }

    #[test]
    fn text_normalization() {
        assert_eq!(normalize_text("  Hello   World "), "hello world");
        assert_eq!(normalize_text(""), "");
        assert_eq!(normalize_text("A"), "a");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::number(3.5).to_string(), "3.5");
        assert_eq!(Value::time(120).to_string(), "t120");
        assert_eq!(Value::text("NASDAQ").to_string(), "nasdaq");
    }
}
