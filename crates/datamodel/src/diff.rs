//! Day-over-day snapshot diffing for incremental (delta) fusion.
//!
//! [`SnapshotDelta::between`] compares two [`Snapshot`]s of the same domain
//! and reports exactly which parts of a prepared fusion problem are stale:
//! items whose observation rows changed (values edited, claims added or
//! retracted, items appearing or disappearing), sources whose claim sets
//! changed, and attributes whose tolerance context moved (which invalidates
//! the bucketing of *every* item of that attribute, since both the bucket
//! grouping of Equation 3 and the similarity scale depend on it).
//!
//! The diff is the contract between `datamodel` and the warm-state delta
//! engine in the fusion crate: an item not listed as dirty is guaranteed to
//! bucket into the exact same candidate values, provider rows, and similarity
//! edges as in the previous snapshot, so its CSR rows can be spliced forward
//! verbatim instead of being recomputed.

use crate::ids::{AttrId, ItemId, SourceId};
use crate::snapshot::Snapshot;
use std::collections::BTreeSet;

/// The difference between two consecutive snapshots of one domain.
///
/// Produced by [`SnapshotDelta::between`]; consumed by the fusion crate's
/// partial-refill preparation and its `DeltaEngine`. All sets are exact, not
/// conservative over-approximations, with one deliberate exception: an
/// attribute whose tolerance context changed marks every item of that
/// attribute dirty, because bucketing is a function of the tolerance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotDelta {
    dirty_items: BTreeSet<ItemId>,
    removed_items: BTreeSet<ItemId>,
    dirty_sources: BTreeSet<SourceId>,
    added_sources: BTreeSet<SourceId>,
    removed_sources: BTreeSet<SourceId>,
    dirty_attrs: BTreeSet<AttrId>,
    num_next_items: usize,
}

impl SnapshotDelta {
    /// Diff `prev` against `next` (two days of the same domain).
    ///
    /// An item is **dirty** when its observation row differs between the two
    /// snapshots (any value edit, claim addition/retraction, or observation
    /// reordering), when it only exists in `next`, or when the tolerance
    /// context of its attribute changed. Items that only exist in `prev` are
    /// **removed**. A source is **dirty** when the set of (item, value)
    /// claims it makes changed — including every source touched by an added
    /// or removed item, and every source that entered or left the snapshot.
    pub fn between(prev: &Snapshot, next: &Snapshot) -> Self {
        let mut delta = SnapshotDelta {
            num_next_items: next.num_items(),
            ..SnapshotDelta::default()
        };
        delta.diff_tolerance(prev, next);
        delta.diff_items(prev, next);
        delta.diff_sources(prev, next);
        delta
    }

    /// Mark attributes whose tolerance or similarity scale moved. Compared
    /// bit-for-bit: the prepared CSR state (bucket grouping, similarity
    /// edges) is a deterministic function of these floats, so any bit change
    /// can change the preparation.
    fn diff_tolerance(&mut self, prev: &Snapshot, next: &Snapshot) {
        let num_attrs = prev
            .schema()
            .num_attributes()
            .max(next.schema().num_attributes());
        for idx in 0..num_attrs {
            let attr = AttrId(idx as u16);
            let (pt, nt) = (prev.tolerance().tolerance(attr), next.tolerance().tolerance(attr));
            let (ps, ns) = (
                prev.tolerance().similarity_scale(attr),
                next.tolerance().similarity_scale(attr),
            );
            if pt.to_bits() != nt.to_bits() || ps.to_bits() != ns.to_bits() {
                self.dirty_attrs.insert(attr);
            }
        }
    }

    /// Merge-walk the two (sorted) item maps, marking changed rows dirty and
    /// diffing per-source claims on every changed row.
    fn diff_items(&mut self, prev: &Snapshot, next: &Snapshot) {
        let mut prev_it = prev.items().peekable();
        let mut next_it = next.items().peekable();
        loop {
            match (prev_it.peek(), next_it.peek()) {
                (None, None) => break,
                (Some(_), None) => {
                    let (item, obs) = prev_it.next().unwrap();
                    self.removed_items.insert(*item);
                    self.dirty_sources.extend(obs.iter().map(|o| o.source));
                }
                (None, Some(_)) => {
                    let (item, obs) = next_it.next().unwrap();
                    self.dirty_items.insert(*item);
                    self.dirty_sources.extend(obs.iter().map(|o| o.source));
                }
                (Some((pi, _)), Some((ni, _))) => {
                    if pi < ni {
                        let (item, obs) = prev_it.next().unwrap();
                        self.removed_items.insert(*item);
                        self.dirty_sources.extend(obs.iter().map(|o| o.source));
                    } else if ni < pi {
                        let (item, obs) = next_it.next().unwrap();
                        self.dirty_items.insert(*item);
                        self.dirty_sources.extend(obs.iter().map(|o| o.source));
                    } else {
                        let (item, pobs) = prev_it.next().unwrap();
                        let (_, nobs) = next_it.next().unwrap();
                        let row_changed = pobs != nobs;
                        if row_changed || self.dirty_attrs.contains(&item.attr) {
                            self.dirty_items.insert(*item);
                        }
                        if row_changed {
                            // A reordered-but-equal claim set still dirties
                            // the item (observation order feeds bucket
                            // order), but only sources whose *claim* on this
                            // item changed are trust-dirty.
                            for p in pobs {
                                match nobs.iter().find(|n| n.source == p.source) {
                                    Some(n) if n.value == p.value => {}
                                    _ => {
                                        self.dirty_sources.insert(p.source);
                                    }
                                }
                            }
                            for n in nobs {
                                if !pobs.iter().any(|p| p.source == n.source) {
                                    self.dirty_sources.insert(n.source);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Record sources entering or leaving the snapshot entirely (these also
    /// shift the dense source indexing of a prepared problem).
    fn diff_sources(&mut self, prev: &Snapshot, next: &Snapshot) {
        let prev_sources = prev.active_sources();
        let next_sources = next.active_sources();
        for s in next_sources.difference(&prev_sources) {
            self.added_sources.insert(*s);
            self.dirty_sources.insert(*s);
        }
        for s in prev_sources.difference(&next_sources) {
            self.removed_sources.insert(*s);
            self.dirty_sources.insert(*s);
        }
    }

    /// True when the two snapshots prepare to an identical fusion problem:
    /// no item row changed, no item or source was added or removed.
    pub fn is_empty(&self) -> bool {
        self.dirty_items.is_empty()
            && self.removed_items.is_empty()
            && self.added_sources.is_empty()
            && self.removed_sources.is_empty()
    }

    /// Fraction of the item universe that must be re-prepared:
    /// `(dirty + removed) / (next items + removed)`, in `[0, 1]`.
    pub fn dirty_fraction(&self) -> f64 {
        let stale = self.dirty_items.len() + self.removed_items.len();
        let universe = (self.num_next_items + self.removed_items.len()).max(1);
        stale as f64 / universe as f64
    }

    /// Whether `item`'s prepared rows are stale (changed or newly added).
    pub fn is_dirty_item(&self, item: ItemId) -> bool {
        self.dirty_items.contains(&item)
    }

    /// Items whose observation rows changed or that are new in `next`.
    pub fn dirty_items(&self) -> &BTreeSet<ItemId> {
        &self.dirty_items
    }

    /// Items present in `prev` but absent from `next`.
    pub fn removed_items(&self) -> &BTreeSet<ItemId> {
        &self.removed_items
    }

    /// Sources whose claim set changed (edited/added/retracted claims, or
    /// entering/leaving the snapshot).
    pub fn dirty_sources(&self) -> &BTreeSet<SourceId> {
        &self.dirty_sources
    }

    /// Sources active in `next` but not in `prev`.
    pub fn added_sources(&self) -> &BTreeSet<SourceId> {
        &self.added_sources
    }

    /// Sources active in `prev` but not in `next`.
    pub fn removed_sources(&self) -> &BTreeSet<SourceId> {
        &self.removed_sources
    }

    /// Attributes whose tolerance context (tolerance or similarity scale)
    /// changed between the snapshots.
    pub fn dirty_attrs(&self) -> &BTreeSet<AttrId> {
        &self.dirty_attrs
    }

    /// Number of items in the `next` snapshot (the denominator context for
    /// [`Self::dirty_fraction`]).
    pub fn num_next_items(&self) -> usize {
        self.num_next_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ObjectId;
    use crate::schema::{AttrKind, DomainSchema};
    use crate::snapshot::SnapshotBuilder;
    use crate::value::Value;
    use std::sync::Arc;

    fn schema() -> Arc<DomainSchema> {
        let mut s = DomainSchema::new("stock");
        s.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        s.add_attribute("Volume", AttrKind::Numeric { scale: 1e6 }, false);
        s.add_source("A", true);
        s.add_source("B", false);
        s.add_source("C", false);
        Arc::new(s)
    }

    fn base() -> Snapshot {
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.2));
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(50.0));
        b.add(SourceId(1), ObjectId(1), AttrId(1), Value::number(1e6));
        b.build(schema())
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let a = base();
        let b = base();
        let d = SnapshotDelta::between(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.dirty_fraction(), 0.0);
        assert!(d.dirty_items().is_empty());
        assert!(d.dirty_sources().is_empty());
        assert!(d.dirty_attrs().is_empty());
        assert_eq!(d.num_next_items(), 3);
    }

    #[test]
    fn value_edit_dirties_exactly_one_item_and_source() {
        let a = base();
        // Rebuild with one edited claim, pinning the tolerance context so the
        // numeric edit can't ripple into a per-attribute tolerance change.
        let mut b = SnapshotBuilder::new(1);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(104.0));
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(50.0));
        b.add(SourceId(1), ObjectId(1), AttrId(1), Value::number(1e6));
        let next = b.build_with_tolerance(schema(), a.tolerance().clone());

        let d = SnapshotDelta::between(&a, &next);
        assert!(!d.is_empty());
        let dirty: Vec<ItemId> = d.dirty_items().iter().copied().collect();
        assert_eq!(dirty, vec![ItemId::new(ObjectId(0), AttrId(0))]);
        let sources: Vec<SourceId> = d.dirty_sources().iter().copied().collect();
        assert_eq!(sources, vec![SourceId(1)]);
        assert!(d.removed_items().is_empty());
        assert!(d.added_sources().is_empty());
        assert!(d.dirty_attrs().is_empty());
        assert!((d.dirty_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(d.is_dirty_item(ItemId::new(ObjectId(0), AttrId(0))));
        assert!(!d.is_dirty_item(ItemId::new(ObjectId(1), AttrId(0))));
    }

    #[test]
    fn item_addition_and_removal_are_tracked() {
        let a = base();
        let mut b = SnapshotBuilder::new(1);
        // Drop (ObjectId(1), AttrId(1)), add (ObjectId(2), AttrId(0)).
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.2));
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(50.0));
        b.add(SourceId(2), ObjectId(2), AttrId(0), Value::number(75.0));
        let next = b.build_with_tolerance(schema(), a.tolerance().clone());

        let d = SnapshotDelta::between(&a, &next);
        assert_eq!(
            d.dirty_items().iter().copied().collect::<Vec<_>>(),
            vec![ItemId::new(ObjectId(2), AttrId(0))]
        );
        assert_eq!(
            d.removed_items().iter().copied().collect::<Vec<_>>(),
            vec![ItemId::new(ObjectId(1), AttrId(1))]
        );
        // Source 2 is brand new; source 1 lost its Volume claim.
        assert!(d.added_sources().contains(&SourceId(2)));
        assert!(d.dirty_sources().contains(&SourceId(1)));
        assert!(d.dirty_sources().contains(&SourceId(2)));
        assert!(!d.dirty_sources().contains(&SourceId(0)));
    }

    #[test]
    fn source_removal_dirties_its_items() {
        let a = base();
        let next = a.remove_sources(&[SourceId(1)]);
        let d = SnapshotDelta::between(&a, &next);
        assert!(d.removed_sources().contains(&SourceId(1)));
        // Source 1 claimed (O0,A0) and (O1,A1); the former loses a claim,
        // the latter disappears entirely.
        assert!(d.is_dirty_item(ItemId::new(ObjectId(0), AttrId(0))));
        assert!(d.removed_items().contains(&ItemId::new(ObjectId(1), AttrId(1))));
    }

    #[test]
    fn tolerance_shift_dirties_all_items_of_attr() {
        let a = base();
        // Same observations, but tolerances recomputed from scratch after a
        // price edit large enough to move the attribute median.
        let mut b = SnapshotBuilder::new(1);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(300.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.2));
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(50.0));
        b.add(SourceId(1), ObjectId(1), AttrId(1), Value::number(1e6));
        let next = b.build(schema());

        let d = SnapshotDelta::between(&a, &next);
        assert!(d.dirty_attrs().contains(&AttrId(0)));
        // Every price item is dirty — including (O1,A0) whose row is unchanged.
        assert!(d.is_dirty_item(ItemId::new(ObjectId(1), AttrId(0))));
        // The volume item is untouched and its attribute is stable.
        assert!(!d.is_dirty_item(ItemId::new(ObjectId(1), AttrId(1))));
    }
}
