//! Observation tables: one [`Snapshot`] per domain per day.
//!
//! A snapshot records, for every data item, which sources provided which
//! (normalized) value on that day — exactly the table the paper's
//! measurements and fusion experiments run over. The snapshot also owns the
//! [`ToleranceContext`] computed from its own values, so bucketing is always
//! performed with the tolerances of Equation 3.

use crate::bucket::{Bucketing, ValueBucket};
use crate::ids::{AttrId, ItemId, ObjectId, SourceId};
use crate::schema::DomainSchema;
use crate::tolerance::{ToleranceContext, TolerancePolicy};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One source's claim about one data item.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// The source making the claim.
    pub source: SourceId,
    /// The (normalized) value it provides.
    pub value: Value,
}

/// Builder for a [`Snapshot`]; accumulate observations then call
/// [`SnapshotBuilder::build`].
#[derive(Debug)]
pub struct SnapshotBuilder {
    day: u32,
    policy: TolerancePolicy,
    items: BTreeMap<ItemId, Vec<Observation>>,
}

impl SnapshotBuilder {
    /// Start building the snapshot for `day` (an index into the collection
    /// period, e.g. 0 for July 1st).
    pub fn new(day: u32) -> Self {
        Self {
            day,
            policy: TolerancePolicy::default(),
            items: BTreeMap::new(),
        }
    }

    /// Override the tolerance policy (default: α = 0.01, 10-minute times).
    pub fn with_policy(mut self, policy: TolerancePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Record that `source` provides `value` for `(object, attr)`.
    ///
    /// Each source provides at most one value per data item (the paper's
    /// setting); adding a second claim from the same source replaces the
    /// first.
    pub fn add(&mut self, source: SourceId, object: ObjectId, attr: AttrId, value: Value) {
        let item = ItemId::new(object, attr);
        let obs = self.items.entry(item).or_default();
        match obs.iter_mut().find(|o| o.source == source) {
            Some(existing) => existing.value = value,
            None => obs.push(Observation { source, value }),
        }
    }

    /// Remove `source`'s claim for `(object, attr)` if present; returns
    /// whether anything was removed. An item whose last observation is
    /// removed disappears from the builder entirely (a snapshot never
    /// carries observation-less items).
    pub fn remove(&mut self, source: SourceId, object: ObjectId, attr: AttrId) -> bool {
        let item = ItemId::new(object, attr);
        let Some(obs) = self.items.get_mut(&item) else {
            return false;
        };
        let before = obs.len();
        obs.retain(|o| o.source != source);
        let removed = obs.len() < before;
        if obs.is_empty() {
            self.items.remove(&item);
        }
        removed
    }

    /// The day this builder targets.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Retarget the builder to another day.
    ///
    /// The online fusion service keeps one builder alive as a persistent
    /// claim ledger and re-stamps it before every seal, instead of replaying
    /// all claims into a fresh builder per day.
    pub fn set_day(&mut self, day: u32) {
        self.day = day;
    }

    /// The value `source` currently provides for `(object, attr)`, if any.
    pub fn value_of(&self, source: SourceId, object: ObjectId, attr: AttrId) -> Option<&Value> {
        self.items
            .get(&ItemId::new(object, attr))?
            .iter()
            .find(|o| o.source == source)
            .map(|o| &o.value)
    }

    /// Number of observations recorded so far.
    pub fn num_observations(&self) -> usize {
        self.items.values().map(Vec::len).sum()
    }

    /// Non-consuming build: materialize a snapshot from the current claims,
    /// skipping every observation whose source is in `exclude` (and any item
    /// that leaves empty). Per-item observations are emitted in ascending
    /// `SourceId` order — a canonical order independent of claim arrival
    /// order, so two ledgers holding the same claims always materialize
    /// byte-identical snapshots (the generator emits sources in index order,
    /// so generated snapshots already follow it). With `tolerance: Some`,
    /// the given context is pinned verbatim (see
    /// [`Self::build_with_tolerance`]); with `None` it is recomputed from
    /// the included values.
    pub fn materialize(
        &self,
        schema: Arc<DomainSchema>,
        tolerance: Option<&ToleranceContext>,
        exclude: &BTreeSet<SourceId>,
    ) -> Snapshot {
        let mut items: BTreeMap<ItemId, Vec<Observation>> = BTreeMap::new();
        for (item, obs) in &self.items {
            let mut kept: Vec<Observation> = obs
                .iter()
                .filter(|o| !exclude.contains(&o.source))
                .cloned()
                .collect();
            if kept.is_empty() {
                continue;
            }
            kept.sort_by_key(|o| o.source);
            items.insert(*item, kept);
        }
        let tolerance = match tolerance {
            Some(t) => t.clone(),
            None => {
                let mut values_per_attr: Vec<Vec<Value>> =
                    vec![Vec::new(); schema.num_attributes()];
                for (item, obs) in &items {
                    let slot = &mut values_per_attr[item.attr.index()];
                    for o in obs {
                        slot.push(o.value.clone());
                    }
                }
                ToleranceContext::from_values(&schema, &values_per_attr, self.policy)
            }
        };
        Snapshot {
            schema,
            day: self.day,
            items,
            tolerance,
        }
    }

    /// Finalize the snapshot: computes the per-attribute tolerance context
    /// from all recorded values.
    pub fn build(self, schema: Arc<DomainSchema>) -> Snapshot {
        let mut values_per_attr: Vec<Vec<Value>> = vec![Vec::new(); schema.num_attributes()];
        for (item, obs) in &self.items {
            let slot = &mut values_per_attr[item.attr.index()];
            for o in obs {
                slot.push(o.value.clone());
            }
        }
        let tolerance = ToleranceContext::from_values(&schema, &values_per_attr, self.policy);
        Snapshot {
            schema,
            day: self.day,
            items: self.items,
            tolerance,
        }
    }

    /// Finalize the snapshot with an explicit, caller-provided tolerance
    /// context instead of recomputing one from the recorded values.
    ///
    /// This is the delta-fusion building block: a day-over-day mutation of a
    /// base snapshot keeps the base's tolerances so that bucketing stays
    /// comparable across days and a small value edit dirties only its own
    /// item instead of (through a moved attribute median) every item of the
    /// attribute. See [`crate::diff::SnapshotDelta`].
    pub fn build_with_tolerance(
        self,
        schema: Arc<DomainSchema>,
        tolerance: ToleranceContext,
    ) -> Snapshot {
        Snapshot {
            schema,
            day: self.day,
            items: self.items,
            tolerance,
        }
    }
}

/// The observation table for one domain on one day.
#[derive(Debug, Clone)]
pub struct Snapshot {
    schema: Arc<DomainSchema>,
    day: u32,
    items: BTreeMap<ItemId, Vec<Observation>>,
    tolerance: ToleranceContext,
}

impl Snapshot {
    /// The day index this snapshot was collected on.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// The domain schema.
    pub fn schema(&self) -> &DomainSchema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<DomainSchema> {
        Arc::clone(&self.schema)
    }

    /// The tolerance context computed from this snapshot's values.
    pub fn tolerance(&self) -> &ToleranceContext {
        &self.tolerance
    }

    /// Number of data items with at least one observation.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Total number of (source, item, value) observations.
    pub fn num_observations(&self) -> usize {
        self.items.values().map(Vec::len).sum()
    }

    /// Iterate over all data items and their observations, in item order.
    pub fn items(&self) -> impl Iterator<Item = (&ItemId, &[Observation])> {
        self.items.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Ids of all data items, in order.
    pub fn item_ids(&self) -> impl Iterator<Item = ItemId> + '_ {
        self.items.keys().copied()
    }

    /// Observations for one data item (empty slice if the item is unknown).
    pub fn observations(&self, item: ItemId) -> &[Observation] {
        self.items.get(&item).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The value `source` provides for `item`, if any.
    pub fn value_of(&self, source: SourceId, item: ItemId) -> Option<&Value> {
        self.observations(item)
            .iter()
            .find(|o| o.source == source)
            .map(|o| &o.value)
    }

    /// All distinct objects observed in this snapshot.
    pub fn objects(&self) -> BTreeSet<ObjectId> {
        self.items.keys().map(|i| i.object).collect()
    }

    /// All sources that provide at least one observation.
    pub fn active_sources(&self) -> BTreeSet<SourceId> {
        self.items
            .values()
            .flat_map(|obs| obs.iter().map(|o| o.source))
            .collect()
    }

    /// All items of one attribute.
    pub fn items_of_attr(&self, attr: AttrId) -> Vec<ItemId> {
        self.items
            .keys()
            .copied()
            .filter(|i| i.attr == attr)
            .collect()
    }

    /// All items a given source provides a value for.
    pub fn items_of_source(&self, source: SourceId) -> Vec<ItemId> {
        self.items
            .iter()
            .filter(|(_, obs)| obs.iter().any(|o| o.source == source))
            .map(|(i, _)| *i)
            .collect()
    }

    /// Objects a given source covers (provides at least one attribute for).
    pub fn objects_of_source(&self, source: SourceId) -> BTreeSet<ObjectId> {
        self.items_of_source(source)
            .into_iter()
            .map(|i| i.object)
            .collect()
    }

    /// Attributes a given source provides (its local schema projected onto
    /// global attributes).
    pub fn attrs_of_source(&self, source: SourceId) -> BTreeSet<AttrId> {
        self.items_of_source(source)
            .into_iter()
            .map(|i| i.attr)
            .collect()
    }

    /// Tolerance-bucketed value groups for one item, dominant bucket first.
    pub fn buckets(&self, item: ItemId) -> Vec<ValueBucket> {
        let obs = self.observations(item);
        let pairs: Vec<(SourceId, Value)> =
            obs.iter().map(|o| (o.source, o.value.clone())).collect();
        Bucketing::for_attr(&self.tolerance, item.attr).bucket(&pairs)
    }

    /// [`Self::buckets`] into caller-provided storage: identical buckets,
    /// with every temporary drawn from `bucketer` and the output (including
    /// its provider vectors) recycled through `out` — the allocation-free
    /// form the warm-arena preparation path uses on every item of every day.
    pub fn buckets_into(
        &self,
        item: ItemId,
        bucketer: &mut crate::bucket::Bucketer,
        out: &mut Vec<ValueBucket>,
    ) {
        let cfg = Bucketing::for_attr(&self.tolerance, item.attr);
        bucketer.bucket_into(&cfg, self.observations(item), out);
    }

    /// A new snapshot containing only observations from `sources`.
    ///
    /// Used by the incremental-source experiments of Figure 9. Tolerances are
    /// recomputed from the restricted data.
    pub fn restrict_to_sources(&self, sources: &[SourceId]) -> Snapshot {
        let keep: BTreeSet<SourceId> = sources.iter().copied().collect();
        let mut builder = SnapshotBuilder::new(self.day).with_policy(self.tolerance.policy());
        for (item, obs) in &self.items {
            for o in obs {
                if keep.contains(&o.source) {
                    builder.add(o.source, item.object, item.attr, o.value.clone());
                }
            }
        }
        builder.build(Arc::clone(&self.schema))
    }

    /// [`Self::restrict_to_sources`] with this snapshot's tolerance context
    /// carried over unchanged instead of recomputed from the restricted data.
    ///
    /// Used by the delta-fusion form of the Figure-9 experiment: growing
    /// source prefixes of one day differ from each other only on the source
    /// axis, so pinning the full-day tolerances makes consecutive prefixes
    /// diff cleanly (only items the new sources touch are dirty) instead of
    /// every numeric item going stale whenever the restricted median moves.
    pub fn restrict_to_sources_pinned(&self, sources: &[SourceId]) -> Snapshot {
        let keep: BTreeSet<SourceId> = sources.iter().copied().collect();
        let mut builder = SnapshotBuilder::new(self.day).with_policy(self.tolerance.policy());
        for (item, obs) in &self.items {
            for o in obs {
                if keep.contains(&o.source) {
                    builder.add(o.source, item.object, item.attr, o.value.clone());
                }
            }
        }
        builder.build_with_tolerance(Arc::clone(&self.schema), self.tolerance.clone())
    }

    /// A new snapshot containing only the data items in `keep`, with this
    /// snapshot's tolerance context carried over unchanged.
    ///
    /// This is how the delta engine materializes a dirty-item sub-problem:
    /// the sub-snapshot buckets every kept item exactly as the full snapshot
    /// would (same tolerances, same observation order), so candidate sets
    /// and provider rows computed on it can be spliced back into the full
    /// problem's frame of reference.
    pub fn restrict_to_items(&self, keep: &BTreeSet<ItemId>) -> Snapshot {
        let items: BTreeMap<ItemId, Vec<Observation>> = self
            .items
            .iter()
            .filter(|(item, _)| keep.contains(item))
            .map(|(item, obs)| (*item, obs.clone()))
            .collect();
        Snapshot {
            schema: Arc::clone(&self.schema),
            day: self.day,
            items,
            tolerance: self.tolerance.clone(),
        }
    }

    /// A new snapshot with all observations from `sources` removed.
    ///
    /// Used by the copier-removal experiments of Section 3.4.
    pub fn remove_sources(&self, sources: &[SourceId]) -> Snapshot {
        let drop: BTreeSet<SourceId> = sources.iter().copied().collect();
        let keep: Vec<SourceId> = self
            .active_sources()
            .into_iter()
            .filter(|s| !drop.contains(s))
            .collect();
        self.restrict_to_sources(&keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrKind;

    fn schema() -> Arc<DomainSchema> {
        let mut s = DomainSchema::new("stock");
        s.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        s.add_attribute("Volume", AttrKind::Numeric { scale: 1e6 }, false);
        s.add_source("A", true);
        s.add_source("B", false);
        s.add_source("C", false);
        Arc::new(s)
    }

    fn snapshot() -> Snapshot {
        let mut b = SnapshotBuilder::new(0);
        let price = AttrId(0);
        let volume = AttrId(1);
        let obj = ObjectId(0);
        b.add(SourceId(0), obj, price, Value::number(100.0));
        b.add(SourceId(1), obj, price, Value::number(100.2));
        b.add(SourceId(2), obj, price, Value::number(105.0));
        b.add(SourceId(0), obj, volume, Value::number(1_000_000.0));
        b.add(SourceId(1), ObjectId(1), price, Value::number(50.0));
        b.build(schema())
    }

    #[test]
    fn counts_and_lookups() {
        let snap = snapshot();
        assert_eq!(snap.num_items(), 3);
        assert_eq!(snap.num_observations(), 5);
        assert_eq!(snap.objects().len(), 2);
        assert_eq!(snap.active_sources().len(), 3);
        let item = ItemId::new(ObjectId(0), AttrId(0));
        assert_eq!(snap.observations(item).len(), 3);
        assert_eq!(
            snap.value_of(SourceId(2), item),
            Some(&Value::number(105.0))
        );
        assert_eq!(snap.value_of(SourceId(2), ItemId::new(ObjectId(1), AttrId(0))), None);
    }

    #[test]
    fn duplicate_claims_replace() {
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(1.0));
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(2.0));
        let snap = b.build(schema());
        let item = ItemId::new(ObjectId(0), AttrId(0));
        assert_eq!(snap.observations(item).len(), 1);
        assert_eq!(snap.value_of(SourceId(0), item), Some(&Value::number(2.0)));
    }

    #[test]
    fn buckets_use_snapshot_tolerance() {
        let snap = snapshot();
        let item = ItemId::new(ObjectId(0), AttrId(0));
        let buckets = snap.buckets(item);
        // Median price ~100 => tolerance ~1.0, so 100.0 and 100.2 group together.
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].support(), 2);
    }

    #[test]
    fn source_projections() {
        let snap = snapshot();
        assert_eq!(snap.items_of_source(SourceId(1)).len(), 2);
        assert_eq!(snap.objects_of_source(SourceId(1)).len(), 2);
        assert_eq!(snap.attrs_of_source(SourceId(0)).len(), 2);
        assert_eq!(snap.items_of_attr(AttrId(0)).len(), 2);
    }

    #[test]
    fn restriction_and_removal() {
        let snap = snapshot();
        let only_a = snap.restrict_to_sources(&[SourceId(0)]);
        assert_eq!(only_a.active_sources().len(), 1);
        assert_eq!(only_a.num_observations(), 2);

        let without_a = snap.remove_sources(&[SourceId(0)]);
        assert!(!without_a.active_sources().contains(&SourceId(0)));
        assert_eq!(without_a.num_observations(), 3);
        // The original is untouched.
        assert_eq!(snap.num_observations(), 5);
    }

    #[test]
    fn pinned_restrictions_keep_tolerance() {
        let snap = snapshot();
        let full_tol = snap.tolerance().tolerance(AttrId(0));

        // The classic restriction recomputes the median from what's left;
        // the pinned form must carry the full snapshot's context verbatim.
        let pinned = snap.restrict_to_sources_pinned(&[SourceId(1)]);
        assert_eq!(pinned.num_observations(), 2);
        assert_eq!(
            pinned.tolerance().tolerance(AttrId(0)).to_bits(),
            full_tol.to_bits()
        );

        let item = ItemId::new(ObjectId(0), AttrId(0));
        let sub = snap.restrict_to_items(&BTreeSet::from([item]));
        assert_eq!(sub.num_items(), 1);
        assert_eq!(sub.observations(item), snap.observations(item));
        assert_eq!(
            sub.tolerance().tolerance(AttrId(0)).to_bits(),
            full_tol.to_bits()
        );
        // Sub-snapshot buckets exactly as the full snapshot does.
        assert_eq!(sub.buckets(item), snap.buckets(item));
    }

    #[test]
    fn build_with_tolerance_pins_context() {
        let snap = snapshot();
        let mut b = SnapshotBuilder::new(1);
        // A wildly different price that would move the recomputed median.
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(9000.0));
        let pinned = b.build_with_tolerance(snap.schema_arc(), snap.tolerance().clone());
        assert_eq!(
            pinned.tolerance().tolerance(AttrId(0)).to_bits(),
            snap.tolerance().tolerance(AttrId(0)).to_bits()
        );
        assert_eq!(pinned.day(), 1);
    }

    #[test]
    fn remove_drops_claims_and_empty_items() {
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(1.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(2.0));
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(3.0));

        assert!(b.remove(SourceId(1), ObjectId(0), AttrId(0)));
        // Removing again (or removing a claim that never existed) is a no-op.
        assert!(!b.remove(SourceId(1), ObjectId(0), AttrId(0)));
        assert!(!b.remove(SourceId(2), ObjectId(9), AttrId(0)));
        assert_eq!(b.value_of(SourceId(1), ObjectId(0), AttrId(0)), None);
        assert_eq!(
            b.value_of(SourceId(0), ObjectId(0), AttrId(0)),
            Some(&Value::number(1.0))
        );

        // The last claim of an item takes the item with it.
        assert!(b.remove(SourceId(0), ObjectId(1), AttrId(0)));
        let snap = b.build(schema());
        assert_eq!(snap.num_items(), 1);
        assert_eq!(snap.num_observations(), 1);
    }

    #[test]
    fn materialize_is_canonical_and_non_consuming() {
        // Claims arrive in scrambled source order; materialize must emit
        // them source-sorted, identical to a builder fed in sorted order.
        let mut scrambled = SnapshotBuilder::new(2);
        scrambled.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(105.0));
        scrambled.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        scrambled.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.2));

        let mut sorted = SnapshotBuilder::new(2);
        sorted.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        sorted.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.2));
        sorted.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(105.0));

        let a = scrambled.materialize(schema(), None, &BTreeSet::new());
        let b = sorted.build(schema());
        let item = ItemId::new(ObjectId(0), AttrId(0));
        assert_eq!(a.observations(item), b.observations(item));
        assert_eq!(
            a.tolerance().tolerance(AttrId(0)).to_bits(),
            b.tolerance().tolerance(AttrId(0)).to_bits()
        );
        // Non-consuming: the builder still holds every claim.
        assert_eq!(scrambled.num_observations(), 3);
    }

    #[test]
    fn materialize_excludes_sources_and_pins_tolerance() {
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.2));
        b.add(SourceId(1), ObjectId(1), AttrId(0), Value::number(50.0));
        let full = b.materialize(schema(), None, &BTreeSet::new());

        // Excluding source 1 drops its claims and the item it alone covered.
        let without = b.materialize(schema(), None, &BTreeSet::from([SourceId(1)]));
        assert_eq!(without.num_observations(), 1);
        assert_eq!(without.num_items(), 1);

        // Pinned tolerance is carried verbatim even though the median moved.
        b.set_day(1);
        assert_eq!(b.day(), 1);
        let pinned = b.materialize(schema(), Some(full.tolerance()), &BTreeSet::from([SourceId(0)]));
        assert_eq!(pinned.day(), 1);
        assert_eq!(
            pinned.tolerance().tolerance(AttrId(0)).to_bits(),
            full.tolerance().tolerance(AttrId(0)).to_bits()
        );
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let snap = SnapshotBuilder::new(3).build(schema());
        assert_eq!(snap.day(), 3);
        assert_eq!(snap.num_items(), 0);
        assert!(snap.buckets(ItemId::new(ObjectId(0), AttrId(0))).is_empty());
    }
}
