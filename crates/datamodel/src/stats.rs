//! Small statistics helpers shared across the workspace.
//!
//! These are the numeric primitives behind the paper's measurements: medians
//! for the tolerance of Equation 3, entropy for Equation 1, standard deviation
//! for source-accuracy stability (Section 3.3), and percentiles for reporting.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for slices with fewer than 2 elements.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (average of the middle two for even lengths); 0.0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Percentile in `[0, 100]` using nearest-rank on sorted data; 0.0 for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
    v[rank.saturating_sub(1).min(v.len() - 1)]
}

/// Shannon entropy (natural units of the paper's Equation 1 use log base 2 is
/// not specified; we use log2, the convention for "maximum entropy for two
/// values ... is 1" stated in Section 3.2) of a discrete distribution given as
/// counts. Zero counts are ignored; returns 0.0 if fewer than two non-zero
/// counts remain.
pub fn entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut e = 0.0;
    for &c in counts {
        if c == 0 {
            continue;
        }
        let p = c as f64 / total;
        e -= p * p.log2();
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        let sd = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn median_ignores_nan() {
        assert_eq!(median(&[f64::NAN, 1.0, 3.0]), 2.0);
    }

    #[test]
    fn percentile_bounds() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn entropy_known_values() {
        // Uniform over two values -> 1 bit (the paper's stated maximum for two values).
        assert!((entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        // Single value -> 0.
        assert_eq!(entropy(&[10]), 0.0);
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0]), 0.0);
        // Uniform over four values -> 2 bits.
        assert!((entropy(&[1, 1, 1, 1]) - 2.0).abs() < 1e-12);
        // Skewed distributions have lower entropy than uniform ones.
        assert!(entropy(&[9, 1]) < entropy(&[5, 5]));
    }
}
