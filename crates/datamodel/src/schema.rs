//! Domain schemas and source metadata.
//!
//! A [`DomainSchema`] lists the *global* attributes (the paper's terminology
//! for attributes after manual schema matching) of one domain together with
//! their kinds; [`SourceInfo`] records per-source metadata that the
//! experiments need (human-readable name, whether the source is an
//! "authoritative" source used for gold-standard voting, and — for generated
//! data — which source it copies from, if any).

use crate::ids::{AttrId, SourceId};
use crate::value::ValueKind;
use serde::{Deserialize, Serialize};

/// The kind of an attribute, refining [`ValueKind`] with the information the
/// tolerance policy and the generators need.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Numeric attribute (prices, volumes, percentages). `scale` is a typical
    /// magnitude used by generators; tolerance is derived from observed data.
    Numeric {
        /// Typical magnitude of values of this attribute (e.g. 1e2 for a
        /// price, 1e6 for a trading volume).
        scale: f64,
    },
    /// Time attribute, measured in minutes.
    Time,
    /// Categorical / text attribute (e.g. a gate identifier).
    Categorical {
        /// Number of distinct categories a generator should draw from.
        cardinality: u32,
    },
}

impl AttrKind {
    /// The [`ValueKind`] values of this attribute have.
    pub fn value_kind(&self) -> ValueKind {
        match self {
            AttrKind::Numeric { .. } => ValueKind::Number,
            AttrKind::Time => ValueKind::Time,
            AttrKind::Categorical { .. } => ValueKind::Text,
        }
    }
}

/// Definition of one global attribute of a domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Identifier of the attribute.
    pub id: AttrId,
    /// Human-readable name (e.g. "Last price", "Actual departure time").
    pub name: String,
    /// Kind of the attribute.
    pub kind: AttrKind,
    /// Whether the attribute is *statistical* (computed over a period, like
    /// EPS or Dividend) rather than *real-time*. The paper observes that
    /// statistical attributes suffer more semantics ambiguity.
    pub statistical: bool,
}

/// Metadata about one source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceInfo {
    /// Identifier of the source.
    pub id: SourceId,
    /// Human-readable name (e.g. "Google Finance", "Orbitz").
    pub name: String,
    /// Whether the source is treated as authoritative; authoritative sources
    /// participate in gold-standard voting (paper, Section 2.2).
    pub authority: bool,
    /// For generated data: the source this one copies from, when it is a
    /// planted copier. `None` for independent sources. Real crawled data
    /// would carry `None` everywhere and rely on copy *detection*.
    pub copies_from: Option<SourceId>,
}

/// Schema of one domain: the list of global attributes and source metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainSchema {
    /// Name of the domain ("stock", "flight", ...).
    pub domain: String,
    /// Global attribute definitions, indexed by `AttrId::index()`.
    pub attributes: Vec<AttributeDef>,
    /// Source metadata, indexed by `SourceId::index()`.
    pub sources: Vec<SourceInfo>,
}

impl DomainSchema {
    /// Create an empty schema for `domain`.
    pub fn new(domain: impl Into<String>) -> Self {
        Self {
            domain: domain.into(),
            attributes: Vec::new(),
            sources: Vec::new(),
        }
    }

    /// Add an attribute and return its id.
    pub fn add_attribute(
        &mut self,
        name: impl Into<String>,
        kind: AttrKind,
        statistical: bool,
    ) -> AttrId {
        let id = AttrId(self.attributes.len() as u16);
        self.attributes.push(AttributeDef {
            id,
            name: name.into(),
            kind,
            statistical,
        });
        id
    }

    /// Add a source and return its id.
    pub fn add_source(&mut self, name: impl Into<String>, authority: bool) -> SourceId {
        let id = SourceId(self.sources.len() as u32);
        self.sources.push(SourceInfo {
            id,
            name: name.into(),
            authority,
            copies_from: None,
        });
        id
    }

    /// Mark `copier` as copying from `original` (generator provenance).
    pub fn set_copy_of(&mut self, copier: SourceId, original: SourceId) {
        self.sources[copier.index()].copies_from = Some(original);
    }

    /// Attribute definition lookup.
    pub fn attribute(&self, id: AttrId) -> &AttributeDef {
        &self.attributes[id.index()]
    }

    /// Source metadata lookup.
    pub fn source(&self, id: SourceId) -> &SourceInfo {
        &self.sources[id.index()]
    }

    /// Number of global attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Ids of all authoritative sources.
    pub fn authority_sources(&self) -> Vec<SourceId> {
        self.sources
            .iter()
            .filter(|s| s.authority)
            .map(|s| s.id)
            .collect()
    }

    /// Ids of all sources.
    pub fn all_sources(&self) -> Vec<SourceId> {
        self.sources.iter().map(|s| s.id).collect()
    }

    /// The *root* original of a copy chain starting at `source`: the source
    /// reached by following `copies_from` links until an independent source.
    /// A copier of a copier (scenario copier rings launder values through
    /// such chains) resolves to the chain's independent head; a defensive
    /// cycle guard returns the last visited source if the provenance ever
    /// loops.
    pub fn copy_root(&self, source: SourceId) -> SourceId {
        let mut current = source;
        for _ in 0..self.sources.len() {
            match self.sources[current.index()].copies_from {
                Some(original) if original != current => current = original,
                _ => break,
            }
        }
        current
    }

    /// Groups of sources related (transitively) by the generator-planted copy
    /// relation: each group contains the chain's root original followed by
    /// every direct or indirect copier, in ascending id order. Groups of
    /// size 1 (no copiers) are omitted.
    pub fn copy_groups(&self) -> Vec<Vec<SourceId>> {
        let mut groups: Vec<Vec<SourceId>> = Vec::new();
        for original in &self.sources {
            if original.copies_from.is_some() {
                continue;
            }
            let mut group = vec![original.id];
            group.extend(
                self.sources
                    .iter()
                    .filter(|s| s.copies_from.is_some() && self.copy_root(s.id) == original.id)
                    .map(|s| s.id),
            );
            if group.len() > 1 {
                groups.push(group);
            }
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> DomainSchema {
        let mut schema = DomainSchema::new("stock");
        schema.add_attribute("Last price", AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_attribute("Volume", AttrKind::Numeric { scale: 1e6 }, false);
        schema.add_attribute("EPS", AttrKind::Numeric { scale: 5.0 }, true);
        schema.add_source("Google Finance", true);
        schema.add_source("SketchyQuotes", false);
        schema.add_source("SketchyMirror", false);
        schema
    }

    #[test]
    fn ids_are_dense() {
        let schema = sample_schema();
        assert_eq!(schema.num_attributes(), 3);
        assert_eq!(schema.num_sources(), 3);
        assert_eq!(schema.attribute(AttrId(1)).name, "Volume");
        assert_eq!(schema.source(SourceId(0)).name, "Google Finance");
    }

    #[test]
    fn authority_listing() {
        let schema = sample_schema();
        assert_eq!(schema.authority_sources(), vec![SourceId(0)]);
        assert_eq!(schema.all_sources().len(), 3);
    }

    #[test]
    fn copy_groups_follow_provenance() {
        let mut schema = sample_schema();
        assert!(schema.copy_groups().is_empty());
        schema.set_copy_of(SourceId(2), SourceId(1));
        let groups = schema.copy_groups();
        assert_eq!(groups, vec![vec![SourceId(1), SourceId(2)]]);
    }

    #[test]
    fn copy_groups_follow_chains_transitively() {
        let mut schema = sample_schema();
        schema.add_source("ChainTail", false);
        // 1 <- 2 <- 3: a two-hop chain must land in one group rooted at 1.
        schema.set_copy_of(SourceId(2), SourceId(1));
        schema.set_copy_of(SourceId(3), SourceId(2));
        assert_eq!(schema.copy_root(SourceId(3)), SourceId(1));
        assert_eq!(schema.copy_root(SourceId(2)), SourceId(1));
        assert_eq!(schema.copy_root(SourceId(0)), SourceId(0));
        let groups = schema.copy_groups();
        assert_eq!(
            groups,
            vec![vec![SourceId(1), SourceId(2), SourceId(3)]]
        );
    }

    #[test]
    fn attr_kind_maps_to_value_kind() {
        assert_eq!(
            AttrKind::Numeric { scale: 1.0 }.value_kind(),
            ValueKind::Number
        );
        assert_eq!(AttrKind::Time.value_kind(), ValueKind::Time);
        assert_eq!(
            AttrKind::Categorical { cardinality: 40 }.value_kind(),
            ValueKind::Text
        );
    }
}
