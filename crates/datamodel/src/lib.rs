//! Data model for Deep-Web truth finding.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: identifiers for sources, objects, and attributes; typed
//! [`Value`]s with normalization, tolerance-aware comparison, similarity, and
//! formatting (granularity) relations; observation tables ([`Snapshot`] and
//! [`Collection`]); and [`GoldStandard`]s.
//!
//! The model follows Section 2 of *"Truth Finding on the Deep Web: Is the
//! Problem Solved?"* (Li et al., VLDB 2012):
//!
//! * a **domain** (Stock, Flight, ...) contains **objects** of one type,
//! * each object is described by a set of **attributes**,
//! * an (object, attribute) pair is a **data item** with a single true value,
//! * each **source** provides values for a subset of data items,
//! * values are compared under a per-attribute **tolerance** (Equation 3 of
//!   the paper) and grouped into **buckets** before any measurement or fusion.

pub mod bucket;
pub mod collection;
pub mod csv;
pub mod diff;
pub mod gold;
pub mod ids;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod tolerance;
pub mod value;

pub use bucket::{bucket_values, Bucketer, Bucketing, ValueBucket};
pub use csv::{write_snapshot, CsvError, CsvReader};
pub use collection::{Collection, CollectionDay};
pub use diff::SnapshotDelta;
pub use gold::GoldStandard;
pub use ids::{AttrId, ItemId, ObjectId, SourceId};
pub use schema::{AttrKind, AttributeDef, DomainSchema, SourceInfo};
pub use snapshot::{Observation, Snapshot, SnapshotBuilder};
pub use stats::{entropy, mean, median, percentile, stddev};
pub use tolerance::{ToleranceContext, TolerancePolicy, DEFAULT_ALPHA, TIME_TOLERANCE_MINUTES};
pub use value::{Granularity, Value, ValueKind};
