//! Pairwise method comparison (Table 8): for a (basic, advanced) method pair,
//! how many of the basic method's errors the advanced method fixes, how many
//! new errors it introduces, and the net precision change.

use crate::runner::EvaluationContext;
use datamodel::ItemId;
use fusion::{method_by_name, FusionOptions, FusionResult};
use serde::Serialize;

/// The method pairs Table 8 compares (basic → intended improvement).
pub const PAPER_METHOD_PAIRS: [(&str, &str); 9] = [
    ("Hub", "AvgLog"),
    ("Invest", "PooledInvest"),
    ("2-Estimates", "3-Estimates"),
    ("TruthFinder", "AccuSim"),
    ("AccuPr", "AccuSim"),
    ("AccuPr", "PopAccu"),
    ("AccuSim", "AccuSimAttr"),
    ("AccuSimAttr", "AccuFormatAttr"),
    ("AccuFormatAttr", "AccuCopy"),
];

/// Table-8 row for one method pair.
#[derive(Debug, Clone, Serialize)]
pub struct MethodComparison {
    /// The basic method.
    pub basic: String,
    /// The advanced method intended to improve over it.
    pub advanced: String,
    /// Errors of the basic method corrected by the advanced method.
    pub fixed_errors: usize,
    /// Errors introduced by the advanced method on items the basic method got
    /// right.
    pub new_errors: usize,
    /// Precision of the basic method.
    pub basic_precision: f64,
    /// Precision of the advanced method.
    pub advanced_precision: f64,
    /// Precision difference (advanced − basic).
    pub delta_precision: f64,
}

/// Judge one output value against the gold standard (`None` = not covered).
fn judged_correct(
    context: &EvaluationContext<'_>,
    item: ItemId,
    result: &FusionResult,
) -> Option<bool> {
    let value = result.value_for(item)?;
    let truth = context.gold.get(item)?;
    let tol = context.snapshot.tolerance().tolerance(item.attr);
    Some(truth.matches(value, tol) || value.subsumes(truth))
}

/// Compare two already-computed fusion results item by item.
pub fn compare_results(
    context: &EvaluationContext<'_>,
    basic: &FusionResult,
    advanced: &FusionResult,
) -> MethodComparison {
    let mut fixed = 0usize;
    let mut new = 0usize;
    let mut basic_correct = 0usize;
    let mut advanced_correct = 0usize;
    let mut judged = 0usize;
    for item in context.gold.items() {
        let (Some(b), Some(a)) = (
            judged_correct(context, item, basic),
            judged_correct(context, item, advanced),
        ) else {
            continue;
        };
        judged += 1;
        if b {
            basic_correct += 1;
        }
        if a {
            advanced_correct += 1;
        }
        match (b, a) {
            (false, true) => fixed += 1,
            (true, false) => new += 1,
            _ => {}
        }
    }
    let denom = judged.max(1) as f64;
    let basic_precision = basic_correct as f64 / denom;
    let advanced_precision = advanced_correct as f64 / denom;
    MethodComparison {
        basic: basic.method.clone(),
        advanced: advanced.method.clone(),
        fixed_errors: fixed,
        new_errors: new,
        basic_precision,
        advanced_precision,
        delta_precision: advanced_precision - basic_precision,
    }
}

/// Run and compare a (basic, advanced) pair by name. Returns `None` when a
/// name is unknown.
pub fn compare_methods(
    context: &EvaluationContext<'_>,
    basic: &str,
    advanced: &str,
) -> Option<MethodComparison> {
    let options = FusionOptions::standard();
    let basic_result = method_by_name(basic)?.run(&context.problem, &options);
    let advanced_result = method_by_name(advanced)?.run(&context.problem, &options);
    Some(compare_results(context, &basic_result, &advanced_result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};

    #[test]
    fn comparison_accounting_is_consistent() {
        let domain = generate(&stock_config(31).scaled(0.015, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let cmp = compare_methods(&context, "Vote", "AccuFormatAttr").unwrap();
        assert_eq!(cmp.basic, "Vote");
        assert_eq!(cmp.advanced, "AccuFormatAttr");
        // Δprecision must equal (fixed - new) / judged, so verify the sign
        // relationship at least.
        if cmp.fixed_errors > cmp.new_errors {
            assert!(cmp.delta_precision > 0.0);
        }
        if cmp.fixed_errors < cmp.new_errors {
            assert!(cmp.delta_precision < 0.0);
        }
    }

    #[test]
    fn identical_methods_have_no_differences() {
        let domain = generate(&stock_config(32).scaled(0.01, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let cmp = compare_methods(&context, "Vote", "Vote").unwrap();
        assert_eq!(cmp.fixed_errors, 0);
        assert_eq!(cmp.new_errors, 0);
        assert_eq!(cmp.delta_precision, 0.0);
    }

    #[test]
    fn unknown_method_yields_none() {
        let domain = generate(&stock_config(33).scaled(0.01, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        assert!(compare_methods(&context, "Vote", "NotAMethod").is_none());
    }

    #[test]
    fn paper_pairs_reference_known_methods() {
        for (basic, advanced) in PAPER_METHOD_PAIRS {
            assert!(fusion::method_by_name(basic).is_some(), "{basic} unknown");
            assert!(
                fusion::method_by_name(advanced).is_some(),
                "{advanced} unknown"
            );
        }
    }
}
