//! Sharded batch evaluation across snapshots with a warm-arena fusion core.
//!
//! The longitudinal experiments (Figure 8's accuracy-over-time, Table 9,
//! Figure 12's efficiency story) fuse every collection day from scratch: the
//! per-(day, method) fan-out of [`ParallelRunner`] pays a full
//! `FusionProblem` CSR rebuild plus fresh `VotePlane`/trust-accumulator
//! allocations for each task. [`BatchRunner`] instead splits the requested
//! days into **contiguous per-worker shards** and gives each shard one
//! [`ShardArena`] — a [`fusion::ProblemBuilder`] that re-fills its CSR
//! vectors in place day over day plus one [`fusion::FusionScratch`] reused by
//! all sixteen methods — so a shard fuses N days against one warm cache with
//! near-zero steady-state allocation.
//!
//! Fusion is deterministic and the arena re-shapes every buffer before its
//! first read, so the batch rows are **bit-identical** to
//! [`crate::parallel::evaluate_days_sequential`] and to
//! [`ParallelRunner::evaluate_days`](crate::parallel::ParallelRunner::evaluate_days)
//! on the same selection;
//! `tests/batch_equivalence.rs` pins this across seeds, scales, and both
//! copy-detection paths, in debug and release.
//!
//! # Shard-size heuristic
//!
//! Days are weighted by their item count ([`datamodel::Snapshot::num_items`])
//! and [`shard_plan`] cuts the day sequence into at most
//! `min(max_shards, num_days)` contiguous ranges of roughly equal total
//! weight, so a month whose snapshots grow over time still balances. Shards
//! are contiguous and concatenated in order, which means re-ordering workers
//! can never re-order the output rows — a regression suite pins the exact
//! plan for known inputs.
//!
//! [`ParallelRunner`]: crate::parallel::ParallelRunner

use crate::chunk_policy::ChunkPolicy;
use crate::parallel::DayEvaluation;
use crate::runner::{copy_report_to_dense, evaluate_method_core, MethodEvaluation};
use copydetect::known_copying;
use datamodel::{Collection, CollectionDay, Snapshot};
use fusion::{
    all_methods, FusionMethod, FusionOptions, FusionProblem, FusionResult, FusionScratch,
    MethodCategory, ProblemBuilder,
};
use rayon::prelude::*;
use serde::Serialize;
use std::ops::Range;
use std::time::{Duration, Instant};

/// One worker's reusable working set for fusing a run of snapshots: a
/// [`ProblemBuilder`] whose CSR vectors are re-filled in place day over day,
/// and one [`FusionScratch`] shared by every method run.
///
/// The arena has no day-to-day state besides capacity: a
/// [`prepare`](Self::prepare) + [`run`](Self::run) on a warm arena is
/// bit-identical to a fresh `FusionProblem::from_snapshot` + `method.run`
/// (pinned by the arena property suite).
#[derive(Debug, Default)]
pub struct ShardArena {
    builder: ProblemBuilder,
    scratch: FusionScratch,
}

impl ShardArena {
    /// An empty arena; buffers grow to the largest day seen and are reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-fill the arena's problem from `snapshot` (in place, keeping
    /// capacity) and return it.
    pub fn prepare(&mut self, snapshot: &Snapshot) -> &FusionProblem {
        self.builder.prepare(snapshot)
    }

    /// The problem most recently prepared.
    pub fn problem(&self) -> &FusionProblem {
        self.builder.problem()
    }

    /// Run one method over the most recently prepared problem, reusing the
    /// arena's scratch.
    pub fn run(&mut self, method: &dyn FusionMethod, options: &FusionOptions) -> FusionResult {
        method.run_with_scratch(self.builder.problem(), options, &mut self.scratch)
    }

    /// Evaluate `methods` on one collection day (the Table-7 row set),
    /// re-filling the arena from the day's snapshot first. `day_index` is the
    /// position of the day within the evaluated selection, mirroring
    /// [`crate::parallel::evaluate_days_sequential`]. `intra_day_chunks` lets
    /// each method run parallelize within the day (see [`fusion::chunking`];
    /// `0` = sequential, and any value yields bit-identical rows).
    pub fn evaluate_day(
        &mut self,
        day: &CollectionDay,
        day_index: usize,
        methods: &[(MethodCategory, Box<dyn FusionMethod>)],
        use_known_copying: bool,
        intra_day_chunks: usize,
    ) -> DayEvaluation {
        let Self { builder, scratch } = self;
        let problem = builder.prepare(&day.snapshot);
        let sampled = crate::metrics::sampled_trust(&day.snapshot, &day.gold, problem, 0.8);
        let known = use_known_copying
            .then(|| copy_report_to_dense(&known_copying(day.snapshot.schema()), problem));
        let rows: Vec<MethodEvaluation> = methods
            .iter()
            .map(|(category, method)| {
                evaluate_method_core(
                    &day.snapshot,
                    &day.gold,
                    problem,
                    &sampled,
                    known.as_ref(),
                    *category,
                    method.as_ref(),
                    scratch,
                    intra_day_chunks,
                )
            })
            .collect();
        DayEvaluation {
            day_index,
            day: day.snapshot.day(),
            rows,
        }
    }
}

/// Cut `weights.len()` days into at most `max_shards` **contiguous** ranges
/// of roughly equal total weight (weights are per-day item counts in the
/// batch runner). Every range is non-empty, the ranges cover `0..len` in
/// order, and the plan is a pure function of its inputs — re-ordering workers
/// can never re-order the concatenated results.
///
/// Fewer days than `max_shards` yields one single-day shard per day;
/// `max_shards == 0` is treated as 1.
pub fn shard_plan(weights: &[usize], max_shards: usize) -> Vec<Range<usize>> {
    let num_days = weights.len();
    if num_days == 0 {
        return Vec::new();
    }
    let num_shards = max_shards.clamp(1, num_days);
    let total: usize = weights.iter().sum();
    let mut plan = Vec::with_capacity(num_shards);
    let mut start = 0usize;
    let mut cum = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        cum += w;
        let closed = plan.len();
        if closed + 1 == num_shards {
            // Last shard takes everything that remains.
            break;
        }
        let days_left_after = num_days - (i + 1);
        let shards_left_after = num_shards - closed - 1;
        // Close the shard once it reaches its cumulative fair share of the
        // weight, or as soon as the remaining days are only just enough to
        // give every remaining shard one day.
        let fair_share = (closed + 1) * total / num_shards;
        if cum >= fair_share || days_left_after == shards_left_after {
            plan.push(start..i + 1);
            start = i + 1;
        }
    }
    plan.push(start..num_days);
    debug_assert_eq!(plan.len(), num_shards);
    plan
}

/// Batch evaluation runner: contiguous day shards, one warm [`ShardArena`]
/// per shard.
///
/// Prefer this over [`ParallelRunner`] when evaluating many days (the
/// Figure-8 / Table-9 style sweeps): each worker amortizes problem
/// construction and method scratch over its whole day range. For a single
/// day on a many-core machine the per-(day, method) fan-out of
/// [`ParallelRunner`] exposes more parallelism.
///
/// [`ParallelRunner`]: crate::parallel::ParallelRunner
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchRunner {
    use_known_copying: bool,
    num_shards: Option<usize>,
}

/// Result of a sharded batch evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct BatchEvaluation {
    /// Per-day method rows, in the order the days were requested
    /// (bit-identical to [`crate::parallel::evaluate_days_sequential`] on
    /// the same selection).
    pub days: Vec<DayEvaluation>,
    /// Wall-clock time of the whole batch (shard fan-out included).
    pub wall_clock: Duration,
    /// Summed per-shard processing time — what one worker would spend
    /// running every shard back to back (problem refills, trust sampling,
    /// and both method runs included).
    pub total_shard_time: Duration,
    /// Number of contiguous day shards the plan produced.
    pub num_shards: usize,
    /// Worker threads available to the fan-out.
    pub threads: usize,
    /// Fusion kernel backend the run dispatched to (`"avx2+fma"` /
    /// `"scalar"`); see [`crate::ParallelEvaluation::kernel_backend`].
    pub kernel_backend: String,
}

impl BatchRunner {
    /// A runner with the standard options (no oracle copying knowledge,
    /// shard count = worker threads).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the planted/claimed copy groups (Table 5) to the oracle
    /// with-trust runs of copy-aware methods, as Table 7 does.
    pub fn with_known_copying(mut self) -> Self {
        self.use_known_copying = true;
        self
    }

    /// Override the maximum shard count (defaults to the worker-thread
    /// count). The effective count never exceeds the number of days.
    pub fn with_num_shards(mut self, num_shards: usize) -> Self {
        self.num_shards = Some(num_shards);
        self
    }

    /// Evaluate every day of a collection; see
    /// [`evaluate_days`](Self::evaluate_days).
    pub fn evaluate_collection(&self, collection: &Collection) -> BatchEvaluation {
        let indices: Vec<usize> = (0..collection.num_days()).collect();
        self.evaluate_days(collection, &indices)
    }

    /// Evaluate the sixteen registry methods on the selected days: shard the
    /// selection contiguously ([`shard_plan`], weighted by day item counts),
    /// fan the shards across the pool, and fuse each shard's days against
    /// its own warm [`ShardArena`]. Rows come back in request order.
    ///
    /// # Panics
    ///
    /// Panics if any index in `day_indices` is out of range for the
    /// collection (mirroring [`Collection::day`]).
    pub fn evaluate_days(
        &self,
        collection: &Collection,
        day_indices: &[usize],
    ) -> BatchEvaluation {
        let start = Instant::now();
        let methods = all_methods();
        let weights: Vec<usize> = day_indices
            .iter()
            .map(|&i| collection.day(i).snapshot.num_items())
            .collect();
        let max_shards = self.num_shards.unwrap_or_else(rayon::current_num_threads);
        let plan = shard_plan(&weights, max_shards);
        let num_shards = plan.len();
        // With fewer shards than worker threads (few big days), hand the
        // spare threads to each method run as intra-day chunks; a saturated
        // shard fan-out keeps every run sequential. Either way the rows are
        // bit-identical — the policy only moves time around.
        let policy = ChunkPolicy::from_pool();

        let shard_outputs: Vec<(Vec<DayEvaluation>, Duration)> = plan
            .into_par_iter()
            .map(|range| {
                let shard_start = Instant::now();
                let mut arena = ShardArena::new();
                let days: Vec<DayEvaluation> = range
                    .map(|k| {
                        let day = collection.day(day_indices[k]);
                        let chunks = policy
                            .intra_day_chunks(num_shards, day.snapshot.num_items());
                        arena.evaluate_day(day, k, &methods, self.use_known_copying, chunks)
                    })
                    .collect();
                (days, shard_start.elapsed())
            })
            .collect();

        let mut days = Vec::with_capacity(day_indices.len());
        let mut total_shard_time = Duration::ZERO;
        for (shard_days, elapsed) in shard_outputs {
            days.extend(shard_days);
            total_shard_time += elapsed;
        }

        BatchEvaluation {
            days,
            wall_clock: start.elapsed(),
            total_shard_time,
            num_shards,
            threads: rayon::current_num_threads(),
            kernel_backend: fusion::kernels::backend_name().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::{evaluate_days_sequential, same_results};
    use datagen::{generate, stock_config};

    #[test]
    fn shard_plan_is_deterministic_and_contiguous() {
        // Equal weights: the plan splits as evenly as possible, in order.
        assert_eq!(
            shard_plan(&[100, 100, 100, 100, 100], 4),
            vec![0..2, 2..3, 3..4, 4..5]
        );
        // The exact plan for a known skewed input is pinned: re-ordering
        // workers must never re-order (or re-shape) the shards.
        assert_eq!(shard_plan(&[10, 10, 10, 1000, 10], 3), vec![0..3, 3..4, 4..5]);
        // Pure function: same input, same plan.
        assert_eq!(
            shard_plan(&[10, 10, 10, 1000, 10], 3),
            shard_plan(&[10, 10, 10, 1000, 10], 3)
        );
    }

    #[test]
    fn shard_plan_boundary_cases() {
        // One day: one shard regardless of the requested count.
        assert_eq!(shard_plan(&[42], 8), vec![0..1]);
        // Fewer days than shards: one single-day shard per day.
        assert_eq!(shard_plan(&[5, 5], 7), vec![0..1, 1..2]);
        // days % shards != 0: still exactly `shards` contiguous ranges.
        let plan = shard_plan(&[1, 1, 1, 1, 1, 1, 1], 3);
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.first().unwrap().start, 0);
        assert_eq!(plan.last().unwrap().end, 7);
        for w in plan.windows(2) {
            assert_eq!(w[0].end, w[1].start, "shards must be contiguous");
            assert!(!w[0].is_empty() && !w[1].is_empty());
        }
        // Degenerate shard counts.
        assert_eq!(shard_plan(&[3, 3, 3], 0), vec![0..3]);
        assert_eq!(shard_plan(&[], 4), Vec::<Range<usize>>::new());
        // All-zero weights still produce a covering plan.
        assert_eq!(shard_plan(&[0, 0, 0, 0], 2), vec![0..1, 1..4]);
    }

    #[test]
    fn batch_matches_sequential_rows_bit_identically() {
        let domain = generate(&stock_config(36).scaled(0.01, 0.15));
        let indices: Vec<usize> = (0..domain.collection.num_days()).collect();
        let sequential = evaluate_days_sequential(&domain.collection, &indices, false);
        for shards in [1usize, 2, indices.len(), indices.len() + 3] {
            let batch = BatchRunner::new()
                .with_num_shards(shards)
                .evaluate_days(&domain.collection, &indices);
            assert_eq!(batch.days.len(), sequential.len());
            assert!(batch.num_shards <= indices.len().max(1));
            for (b, s) in batch.days.iter().zip(&sequential) {
                assert_eq!(b.day_index, s.day_index);
                assert_eq!(b.day, s.day);
                assert!(
                    same_results(&b.rows, &s.rows),
                    "batch rows diverged on day {} with {shards} shards",
                    b.day
                );
            }
        }
    }

    #[test]
    fn batch_oracle_path_matches_sequential() {
        let domain = generate(&stock_config(37).scaled(0.01, 0.1));
        let indices: Vec<usize> = (0..domain.collection.num_days()).collect();
        let batch = BatchRunner::new()
            .with_known_copying()
            .evaluate_days(&domain.collection, &indices);
        let sequential = evaluate_days_sequential(&domain.collection, &indices, true);
        for (b, s) in batch.days.iter().zip(&sequential) {
            assert!(same_results(&b.rows, &s.rows), "oracle path diverged");
        }
        assert!(batch.wall_clock >= Duration::ZERO);
        assert!(batch.total_shard_time >= Duration::ZERO);
        assert!(batch.threads >= 1);
    }

    #[test]
    fn arena_run_matches_cold_run() {
        let domain = generate(&stock_config(38).scaled(0.01, 0.1));
        let mut arena = ShardArena::new();
        // Warm the arena on a later day, then fuse the reference day: the
        // warm run must equal a cold run on a fresh problem.
        let last = domain.collection.day(domain.collection.num_days() - 1);
        arena.prepare(&last.snapshot);
        let reference = domain.collection.reference_day();
        arena.prepare(&reference.snapshot);
        let cold_problem = fusion::FusionProblem::from_snapshot(&reference.snapshot);
        assert_eq!(*arena.problem(), cold_problem);
        for (_, method) in all_methods() {
            let warm = arena.run(method.as_ref(), &FusionOptions::standard());
            let cold = method.run(&cold_problem, &FusionOptions::standard());
            assert_eq!(warm.selection, cold.selection, "{} selection", warm.method);
            assert_eq!(
                warm.trust.overall, cold.trust.overall,
                "{} trust",
                warm.method
            );
            assert_eq!(warm.rounds, cold.rounds, "{} rounds", warm.method);
        }
    }
}
