//! Evaluation harness for the fusion experiments (Section 4 of the paper).
//!
//! * [`metrics`] — precision/recall against a gold standard, trustworthiness
//!   deviation (Equation 4) and difference;
//! * [`runner`] — run one or all fusion methods on a snapshot with and
//!   without sampled trust (Table 7, Figure 12);
//! * [`compare`] — pairwise method comparison: errors fixed / introduced
//!   (Table 8);
//! * [`incremental`] — recall as sources are added in recall order
//!   (Figure 9), cold per prefix or prefix-over-prefix on one warm
//!   [`fusion::DeltaEngine`];
//! * [`delta_usage`] — aggregated delta-engine activity (re-fused item
//!   counts, fall-backs, cache hits) reported by the `--delta` bench legs;
//! * [`parallel`] — the multi-core runner fanning all sixteen methods ×
//!   any number of snapshot days across CPU cores (Figure 12's efficiency
//!   story at to-day's core counts);
//! * [`batch`] — the sharded batch runner: contiguous day shards, one warm
//!   [`ShardArena`] (in-place CSR refills + reused fusion scratch) per
//!   shard, rows bit-identical to the sequential runner;
//! * [`chunk_policy`] — picks between across-task fan-out and intra-day
//!   [`fusion::chunking`] from the task stats (few big days chunk within
//!   the day, many small days fan across days);
//! * [`breakdown`] — precision vs. dominance factor (Figure 10);
//! * [`errors`] — error analysis of a method's mistakes (Figure 11);
//! * [`over_time`] — precision over all collection days (Table 9), sharded
//!   cold or day-over-day on one warm delta engine;
//! * [`scenario`] — golden-metrics rows for the adversarial stress
//!   scenarios (per-method precision + copy-detection hit rates).

pub mod batch;
pub mod breakdown;
pub mod chunk_policy;
pub mod compare;
pub mod delta_usage;
pub mod errors;
pub mod incremental;
pub mod metrics;
pub mod over_time;
pub mod parallel;
pub mod runner;
pub mod scenario;

pub use batch::{shard_plan, BatchEvaluation, BatchRunner, ShardArena};
pub use breakdown::{precision_by_dominance, DominancePrecisionPoint};
pub use chunk_policy::ChunkPolicy;
pub use compare::{compare_methods, MethodComparison, PAPER_METHOD_PAIRS};
pub use delta_usage::DeltaUsage;
pub use errors::{analyze_errors, ErrorAnalysis, ErrorCause};
pub use incremental::{
    incremental_recall, incremental_recall_delta, IncrementalPoint, IncrementalSeries,
};
pub use metrics::{
    precision_recall, sampled_trust, trust_deviation_and_difference, PrecisionRecall,
};
pub use over_time::{evaluate_over_time, evaluate_over_time_delta, MethodOverTime};
pub use parallel::{
    evaluate_days_sequential, evaluate_prepared_sequential, prepare_contexts, same_results,
    DayEvaluation, ParallelEvaluation, ParallelRunner,
};
pub use runner::{
    copy_report_to_dense, evaluate_all_methods, evaluate_method, evaluate_method_with_chunks,
    EvaluationContext, MethodEvaluation,
};
pub use scenario::{
    evaluate_scenario_day, render_golden_table, ScenarioMethodRow, ScenarioOutcome,
};
