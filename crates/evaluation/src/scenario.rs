//! Scenario golden-metrics evaluation.
//!
//! Every named stress scenario (see `datagen::scenario`) pins its behaviour
//! with a checked-in golden table: one precision row per registry method plus
//! the copy-detection hit/false-positive rates against the generator's
//! planted copy edges. [`evaluate_scenario_day`] computes the metrics from a
//! snapshot, its ground truth, and the true edge set;
//! [`render_golden_table`] serializes them into the deterministic text format
//! the `exp_scenarios` binary emits and `tests/scenarios.rs` asserts
//! bit-for-bit.
//!
//! Precision here is measured against the *generator truth* (not the
//! paper-style sampled gold standard): scenario knobs like Zipf coverage can
//! thin the authority-voting gold arbitrarily, while the truth restricted to
//! claimed items stays complete under every knob.

use crate::runner::{evaluate_all_methods, EvaluationContext};
use copydetect::{compare_edges, CopyDetector, EdgeComparison};
use datamodel::{GoldStandard, Snapshot, SourceId};
use serde::Serialize;
use std::fmt::Write as _;

/// One golden-table row: a method's precision/recall on the scenario day.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioMethodRow {
    /// Method name (paper spelling).
    pub method: String,
    /// Precision against the generator truth, method-estimated trust.
    pub precision: f64,
    /// Precision when the sampled trust is given as input.
    pub precision_with_trust: f64,
    /// Recall of the without-trust run.
    pub recall: f64,
}

/// All golden metrics of one scenario day.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Number of items in the evaluated snapshot.
    pub items: usize,
    /// Number of observations (claims) in the evaluated snapshot.
    pub observations: usize,
    /// Number of sources in the schema.
    pub sources: usize,
    /// Copy-detection score against the planted edges.
    pub copy_detection: EdgeComparison,
    /// One row per registry method, in Table-7 order.
    pub rows: Vec<ScenarioMethodRow>,
}

/// Evaluate all registry methods and the copy detector on one scenario day.
/// `truth` is the generator's ground truth for the day; `true_edges` is the
/// planted copy-edge set (see `datagen::scenario::ScenarioWorld`).
pub fn evaluate_scenario_day(
    name: &str,
    snapshot: &Snapshot,
    truth: &GoldStandard,
    true_edges: &[(SourceId, SourceId)],
) -> ScenarioOutcome {
    let context = EvaluationContext::new(snapshot, truth);
    let rows = evaluate_all_methods(&context)
        .into_iter()
        .map(|row| ScenarioMethodRow {
            method: row.method,
            precision: row.precision_without_trust,
            precision_with_trust: row.precision_with_trust,
            recall: row.recall_without_trust,
        })
        .collect();
    let report = CopyDetector::new().detect(snapshot, truth);
    let copy_detection = compare_edges(&report, true_edges);
    ScenarioOutcome {
        name: name.to_string(),
        items: snapshot.num_items(),
        observations: snapshot.num_observations(),
        sources: snapshot.schema().num_sources(),
        copy_detection,
        rows,
    }
}

/// Render the outcome as the golden-table text format: integer counts, six
/// fixed decimals for every rate, one method per line. The format is stable
/// by construction — bit-identical output across debug/release and kernel
/// backends is what the golden suite asserts.
pub fn render_golden_table(outcome: &ScenarioOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "scenario: {}", outcome.name);
    let _ = writeln!(
        out,
        "snapshot: items={} observations={} sources={}",
        outcome.items, outcome.observations, outcome.sources
    );
    let cd = &outcome.copy_detection;
    let _ = writeln!(
        out,
        "copy_detection: true_edges={} detected={} hits={} false_positives={}",
        cd.true_edges, cd.detected_edges, cd.hits, cd.false_positives
    );
    let _ = writeln!(
        out,
        "copy_detection_rates: hit_rate={:.6} false_positive_rate={:.6}",
        cd.hit_rate(),
        cd.false_positive_rate()
    );
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>10}",
        "method", "precision", "prec_w_trust", "recall"
    );
    for row in &outcome.rows {
        let _ = writeln!(
            out,
            "{:<24} {:>10.6} {:>12.6} {:>10.6}",
            row.method, row.precision, row.precision_with_trust, row.recall
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::scenario::by_name;

    #[test]
    fn scenario_outcome_has_all_rows_and_sane_rates() {
        let world = by_name("copier_ring").unwrap().build();
        let day = world.domain.collection.reference_day();
        let outcome = evaluate_scenario_day(
            "copier_ring",
            &day.snapshot,
            &day.truth,
            &world.true_edges,
        );
        assert_eq!(outcome.rows.len(), 16);
        assert_eq!(outcome.rows[0].method, "Vote");
        assert_eq!(outcome.rows[15].method, "AccuCopy");
        for row in &outcome.rows {
            assert!(row.precision >= 0.0 && row.precision <= 1.0);
            assert!(row.recall <= row.precision + 1e-9);
        }
        assert!(outcome.copy_detection.true_edges > 0);
        // The laundered ring shares plenty of false values; detection must
        // recover a substantial part of the planted edges.
        assert!(
            outcome.copy_detection.hit_rate() > 0.3,
            "hit rate {} too low",
            outcome.copy_detection.hit_rate()
        );
    }

    #[test]
    fn rendered_table_is_deterministic_and_parseable() {
        let world = by_name("format_drift").unwrap().build();
        let day = world.domain.collection.reference_day();
        let a = render_golden_table(&evaluate_scenario_day(
            "format_drift",
            &day.snapshot,
            &day.truth,
            &world.true_edges,
        ));
        let b = render_golden_table(&evaluate_scenario_day(
            "format_drift",
            &day.snapshot,
            &day.truth,
            &world.true_edges,
        ));
        assert_eq!(a, b);
        assert!(a.starts_with("scenario: format_drift\n"));
        assert_eq!(a.lines().count(), 5 + 16);
        assert!(a.lines().any(|l| l.starts_with("Vote ")));
    }
}
