//! Error analysis of a fusion method's mistakes (Figure 11).
//!
//! The paper samples 20 errors of the best method per domain and attributes
//! each to a cause. With the full pipeline available the attribution can be
//! computed for *every* error:
//!
//! 1. the selected value has a finer/coarser granularity than the gold value
//!    (not really an error),
//! 2. the error disappears when sampled trust is given (imprecise
//!    trustworthiness),
//! 3. the error additionally needs the known copy relationships (not
//!    considering correct copying),
//! 4. otherwise the data itself does not support the truth: similar false
//!    values, a false value provided by high-accuracy sources, a dominant
//!    false value, or no dominant value at all.

use crate::runner::EvaluationContext;
use datamodel::ItemId;
use fusion::{FusionMethod, FusionOptions, FusionResult};
use serde::Serialize;

/// The cause categories of Figure 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum ErrorCause {
    /// The method selected a finer- or coarser-granularity representation of
    /// the gold value.
    FinerGranularity,
    /// Knowing the sampled source trustworthiness fixes the error.
    ImpreciseTrustworthiness,
    /// Knowing the copy relationships (in addition to trust) fixes the error.
    NotConsideringCopying,
    /// Many similar false values crowd out the truth.
    SimilarFalseValues,
    /// The false value is provided by high-accuracy sources.
    FalseFromAccurateSources,
    /// The false value is provided by more than half of the providers.
    FalseValueDominant,
    /// No value is dominant and the truth has no more support than the rest.
    NoDominantValue,
}

impl ErrorCause {
    /// All causes in Figure-11 order.
    pub const ALL: [ErrorCause; 7] = [
        ErrorCause::FinerGranularity,
        ErrorCause::ImpreciseTrustworthiness,
        ErrorCause::NotConsideringCopying,
        ErrorCause::SimilarFalseValues,
        ErrorCause::FalseFromAccurateSources,
        ErrorCause::FalseValueDominant,
        ErrorCause::NoDominantValue,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            ErrorCause::FinerGranularity => "selecting finer-granularity value",
            ErrorCause::ImpreciseTrustworthiness => "imprecise trustworthiness",
            ErrorCause::NotConsideringCopying => "not considering correct copying",
            ErrorCause::SimilarFalseValues => "similar false values are provided",
            ErrorCause::FalseFromAccurateSources => "false value provided by high-accuracy sources",
            ErrorCause::FalseValueDominant => "false value dominant",
            ErrorCause::NoDominantValue => "no one value dominant",
        }
    }
}

/// The Figure-11 report.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorAnalysis {
    /// Method whose errors were analyzed.
    pub method: String,
    /// Total number of errors analyzed.
    pub total_errors: usize,
    /// Count per cause, in [`ErrorCause::ALL`] order.
    pub counts: Vec<(String, usize)>,
}

impl ErrorAnalysis {
    /// Share of errors attributed to `cause`.
    pub fn share(&self, cause: ErrorCause) -> f64 {
        if self.total_errors == 0 {
            return 0.0;
        }
        self.counts
            .iter()
            .find(|(label, _)| label == cause.label())
            .map(|(_, c)| *c as f64 / self.total_errors as f64)
            .unwrap_or(0.0)
    }
}

/// Analyze every error the method makes on the gold-covered items.
pub fn analyze_errors(
    context: &EvaluationContext<'_>,
    method: &dyn FusionMethod,
) -> ErrorAnalysis {
    let base = method.run(&context.problem, &FusionOptions::standard());
    let with_trust = method.run(
        &context.problem,
        &FusionOptions::standard().with_input_trust(context.sampled_trust.clone()),
    );
    let with_trust_and_copy = {
        let mut opts = FusionOptions::standard().with_input_trust(context.sampled_trust.clone());
        if let Some(known) = &context.known_copying {
            opts = opts.with_known_copying(known.clone());
        }
        method.run(&context.problem, &opts)
    };

    let mut counts = vec![0usize; ErrorCause::ALL.len()];
    let mut total = 0usize;
    for item in context.gold.items() {
        if judged_correct(context, item, &base) != Some(false) {
            continue;
        }
        total += 1;
        let cause = classify(context, item, &base, &with_trust, &with_trust_and_copy);
        let idx = ErrorCause::ALL.iter().position(|c| *c == cause).expect("known cause");
        counts[idx] += 1;
    }
    ErrorAnalysis {
        method: method.name(),
        total_errors: total,
        counts: ErrorCause::ALL
            .iter()
            .zip(counts)
            .map(|(c, n)| (c.label().to_string(), n))
            .collect(),
    }
}

fn judged_correct(
    context: &EvaluationContext<'_>,
    item: ItemId,
    result: &FusionResult,
) -> Option<bool> {
    let value = result.value_for(item)?;
    let truth = context.gold.get(item)?;
    let tol = context.snapshot.tolerance().tolerance(item.attr);
    Some(truth.matches(value, tol) || value.subsumes(truth))
}

fn classify(
    context: &EvaluationContext<'_>,
    item: ItemId,
    base: &FusionResult,
    with_trust: &FusionResult,
    with_trust_and_copy: &FusionResult,
) -> ErrorCause {
    let snapshot = context.snapshot;
    let gold = context.gold;
    let truth = gold.get(item).expect("gold item");
    let selected = base.value_for(item).expect("selected value");

    // 1. Granularity mismatch: the selection is a rounded form of the truth
    //    or vice versa (the judge already accepts coarse → fine, so what is
    //    left is the method picking the *finer* of two near-equal forms).
    if truth.subsumes(selected) {
        return ErrorCause::FinerGranularity;
    }
    // 2. / 3. Oracle experiments.
    if judged_correct(context, item, with_trust) == Some(true) {
        return ErrorCause::ImpreciseTrustworthiness;
    }
    if judged_correct(context, item, with_trust_and_copy) == Some(true) {
        return ErrorCause::NotConsideringCopying;
    }

    // 4. Structural causes from the item itself.
    let buckets = snapshot.buckets(item);
    let providers: usize = buckets.iter().map(|b| b.support()).sum();
    let tol = snapshot.tolerance().tolerance(item.attr);
    let selected_bucket = buckets
        .iter()
        .find(|b| b.representative.matches(selected, tol));
    let truth_bucket = buckets.iter().find(|b| b.representative.matches(truth, tol));
    let scale = snapshot.tolerance().similarity_scale(item.attr);

    // Many distinct values similar to the selection crowd the item.
    let similar_false = buckets
        .iter()
        .filter(|b| {
            !b.representative.matches(truth, tol)
                && b.representative.similarity(selected, scale) > 0.5
        })
        .count();
    if similar_false >= 3 {
        return ErrorCause::SimilarFalseValues;
    }

    if let Some(sb) = selected_bucket {
        // The wrong value is backed by sources that are accurate overall.
        let provider_trust: Vec<f64> = sb
            .providers
            .iter()
            .filter_map(|s| {
                context
                    .problem
                    .source_index(*s)
                    .map(|i| context.sampled_trust[i])
            })
            .collect();
        let avg_trust = if provider_trust.is_empty() {
            0.0
        } else {
            provider_trust.iter().sum::<f64>() / provider_trust.len() as f64
        };
        if avg_trust > 0.9 {
            return ErrorCause::FalseFromAccurateSources;
        }
        if sb.support() * 2 > providers {
            return ErrorCause::FalseValueDominant;
        }
    }
    let truth_support = truth_bucket.map(|b| b.support()).unwrap_or(0);
    let max_support = buckets.first().map(|b| b.support()).unwrap_or(0);
    if truth_support < max_support {
        return ErrorCause::NoDominantValue;
    }
    ErrorCause::NoDominantValue
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydetect::known_copying;
    use datagen::{flight_config, generate};

    #[test]
    fn analysis_accounts_for_every_error() {
        let domain = generate(&flight_config(61).scaled(0.08, 0.06));
        let day = domain.collection.reference_day();
        let report = known_copying(day.snapshot.schema());
        let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&report);
        let method = fusion::method_by_name("AccuCopy").unwrap();
        let analysis = analyze_errors(&context, method.as_ref());
        assert_eq!(analysis.method, "AccuCopy");
        let total: usize = analysis.counts.iter().map(|(_, c)| *c).sum();
        assert_eq!(total, analysis.total_errors);
        // Shares sum to one whenever there is at least one error.
        if analysis.total_errors > 0 {
            let share_sum: f64 = ErrorCause::ALL.iter().map(|c| analysis.share(*c)).sum();
            assert!((share_sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cause_labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            ErrorCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), ErrorCause::ALL.len());
    }
}
