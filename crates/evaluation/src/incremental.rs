//! Incremental-source experiments (Figure 9): order the sources by recall
//! (coverage × accuracy against the gold standard), add them one at a time,
//! and measure each method's recall after every addition.
//!
//! The paper's headline observation from this experiment: fusing a few
//! high-recall sources reaches the best recall (the peak is at the 5th source
//! for Stock and the 9th for Flight); adding the remaining sources only
//! hurts.

use crate::batch::ShardArena;
use crate::delta_usage::DeltaUsage;
use crate::metrics::precision_recall;
use crate::runner::EvaluationContext;
use datamodel::{GoldStandard, Snapshot, SourceId};
use fusion::{method_by_name, DeltaEngine, DeltaPolicy, FusionOptions};
use serde::Serialize;

/// Recall after adding the first `num_sources` sources.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct IncrementalPoint {
    /// Number of sources fused.
    pub num_sources: usize,
    /// Recall against the gold standard.
    pub recall: f64,
}

/// The Figure-9 series of one method.
#[derive(Debug, Clone, Serialize)]
pub struct IncrementalSeries {
    /// Method name.
    pub method: String,
    /// One point per prefix of the recall-ordered source list.
    pub points: Vec<IncrementalPoint>,
}

impl IncrementalSeries {
    /// The number of sources at which recall peaks.
    pub fn peak(&self) -> Option<IncrementalPoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.recall.partial_cmp(&b.recall).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Recall with every source fused (the last point).
    pub fn final_recall(&self) -> f64 {
        self.points.last().map(|p| p.recall).unwrap_or(0.0)
    }
}

/// Order the sources by their recall (accuracy × coverage) against the gold
/// standard, best first.
pub fn sources_by_recall(snapshot: &Snapshot, gold: &GoldStandard) -> Vec<SourceId> {
    let mut scored: Vec<(SourceId, f64)> = snapshot
        .active_sources()
        .into_iter()
        .map(|source| {
            let mut correct = 0usize;
            for (item, truth) in gold.iter() {
                if let Some(value) = snapshot.value_of(source, *item) {
                    let tol = snapshot.tolerance().tolerance(item.attr);
                    if truth.matches(value, tol) || value.subsumes(truth) {
                        correct += 1;
                    }
                }
            }
            // Recall of the single source: correct values over all gold items.
            let recall = correct as f64 / gold.len().max(1) as f64;
            (source, recall)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().map(|(s, _)| s).collect()
}

/// Run the Figure-9 experiment for the named methods. `step` controls how
/// many sources are added between measurements (1 reproduces the paper's
/// per-source curve; larger steps keep the experiment fast on full-scale
/// data).
///
/// The prefix problems ride on one warm [`ShardArena`]: each source prefix
/// re-fills the arena's problem in place and every method runs against it
/// with the arena's reused scratch, so the experiment no longer holds all
/// prefix problems in memory at once (nor re-allocates per prefix). Unknown
/// method names are skipped, as before.
pub fn incremental_recall(
    context: &EvaluationContext<'_>,
    methods: &[&str],
    step: usize,
) -> Vec<IncrementalSeries> {
    let order = sources_by_recall(context.snapshot, context.gold);
    let step = step.max(1);
    let resolved: Vec<_> = methods
        .iter()
        .filter_map(|name| method_by_name(name))
        .collect();
    let mut series: Vec<IncrementalSeries> = resolved
        .iter()
        .map(|method| IncrementalSeries {
            method: method.name(),
            points: Vec::new(),
        })
        .collect();

    let mut arena = ShardArena::new();
    let mut k = 1;
    while k <= order.len() {
        let restricted = context.snapshot.restrict_to_sources(&order[..k]);
        arena.prepare(&restricted);
        for (method, series) in resolved.iter().zip(series.iter_mut()) {
            let result = arena.run(method.as_ref(), &FusionOptions::standard());
            let pr = precision_recall(context.snapshot, context.gold, &result);
            series.points.push(IncrementalPoint {
                num_sources: k,
                recall: pr.recall,
            });
        }
        if k == order.len() {
            break;
        }
        k = (k + step).min(order.len());
    }
    series
}

/// Run the Figure-9 experiment prefix-over-prefix on one warm
/// [`DeltaEngine`].
///
/// Each prefix snapshot is built with
/// [`Snapshot::restrict_to_sources_pinned`], which carries the full
/// snapshot's tolerance context verbatim: growing the prefix then only adds
/// sources, so consecutive prefixes differ by a pure source-axis delta and
/// the engine splices the untouched item rows instead of re-bucketing the
/// whole prefix. (The classic [`incremental_recall`] recomputes each prefix's
/// tolerance from the restricted data, so the two runners can disagree on
/// tolerance-sensitive items; within this runner,
/// [`fusion::DeltaMode::Exact`] is still bit-identical to cold-preparing the
/// same pinned prefixes, as pinned by the tests.)
///
/// Also returns the aggregated [`DeltaUsage`] for the
/// `exp_fig9_incremental --delta` leg.
pub fn incremental_recall_delta(
    context: &EvaluationContext<'_>,
    methods: &[&str],
    step: usize,
    policy: DeltaPolicy,
) -> (Vec<IncrementalSeries>, DeltaUsage) {
    let order = sources_by_recall(context.snapshot, context.gold);
    let step = step.max(1);
    let resolved: Vec<_> = methods
        .iter()
        .filter_map(|name| method_by_name(name))
        .collect();
    let mut series: Vec<IncrementalSeries> = resolved
        .iter()
        .map(|method| IncrementalSeries {
            method: method.name(),
            points: Vec::new(),
        })
        .collect();

    let mut engine = DeltaEngine::with_policy(policy);
    let mut usage = DeltaUsage::default();
    let mut k = 1;
    while k <= order.len() {
        let restricted = context.snapshot.restrict_to_sources_pinned(&order[..k]);
        usage.record_advance(&engine.advance(&restricted));
        for (method, series) in resolved.iter().zip(series.iter_mut()) {
            let (result, report) = engine.run(method.as_ref(), &FusionOptions::standard());
            usage.record_run(&report);
            let pr = precision_recall(context.snapshot, context.gold, &result);
            series.points.push(IncrementalPoint {
                num_sources: k,
                recall: pr.recall,
            });
        }
        if k == order.len() {
            break;
        }
        k = (k + step).min(order.len());
    }
    (series, usage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};

    #[test]
    fn recall_ordering_is_descending_and_puts_good_sources_first() {
        let domain = generate(&stock_config(41).scaled(0.02, 0.1));
        let day = domain.collection.reference_day();
        let order = sources_by_recall(&day.snapshot, &day.gold);
        assert_eq!(order.len(), day.snapshot.active_sources().len());
        // The dead / lowest-quality sources must come last, and the head of
        // the ordering must be a high-accuracy source.
        let accuracy = |s: datamodel::SourceId| {
            profiling::source_accuracy(&day.snapshot, &day.gold, s)
                .accuracy
                .unwrap_or(0.0)
        };
        assert!(
            accuracy(order[0]) > 0.85,
            "best-recall source has accuracy {}",
            accuracy(order[0])
        );
        assert!(accuracy(order[order.len() - 1]) < accuracy(order[0]));
    }

    #[test]
    fn incremental_series_cover_all_prefixes_and_are_bounded() {
        let domain = generate(&stock_config(42).scaled(0.015, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let series = incremental_recall(&context, &["Vote", "AccuPr"], 10);
        assert_eq!(series.len(), 2);
        for s in &series {
            assert!(!s.points.is_empty());
            // Last point fuses every source.
            assert_eq!(
                s.points.last().unwrap().num_sources,
                day.snapshot.active_sources().len()
            );
            for p in &s.points {
                assert!(p.recall >= 0.0 && p.recall <= 1.0);
            }
            // Recall with a single source cannot exceed the peak.
            assert!(s.points[0].recall <= s.peak().unwrap().recall + 1e-12);
            assert!(s.final_recall() >= 0.0);
        }
    }

    #[test]
    fn delta_prefixes_match_cold_pinned_prefixes_bit_for_bit() {
        let domain = generate(&stock_config(44).scaled(0.012, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let methods = ["Vote", "Cosine", "AccuPr"];
        let (warm, usage) =
            incremental_recall_delta(&context, &methods, 3, fusion::DeltaPolicy::exact());
        assert_eq!(warm.len(), methods.len());

        // Cold baseline: the same pinned prefixes, each prepared from scratch.
        let order = sources_by_recall(&day.snapshot, &day.gold);
        let mut arena = ShardArena::new();
        let mut k = 1;
        let mut point = 0usize;
        while k <= order.len() {
            let restricted = day.snapshot.restrict_to_sources_pinned(&order[..k]);
            arena.prepare(&restricted);
            for (name, series) in methods.iter().zip(&warm) {
                let method = method_by_name(name).unwrap();
                let result = arena.run(method.as_ref(), &FusionOptions::standard());
                let pr = precision_recall(&day.snapshot, &day.gold, &result);
                let got = series.points[point];
                assert_eq!(got.num_sources, k);
                assert_eq!(got.recall.to_bits(), pr.recall.to_bits(), "method {name} at k={k}");
            }
            point += 1;
            if k == order.len() {
                break;
            }
            k = (k + 3).min(order.len());
        }
        for series in &warm {
            assert_eq!(series.points.len(), point);
        }
        assert_eq!(usage.advances, point);
        assert!(usage.full_refreshes >= 1);
    }

    #[test]
    fn unknown_methods_are_skipped() {
        let domain = generate(&stock_config(43).scaled(0.01, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let series = incremental_recall(&context, &["Vote", "DoesNotExist"], 20);
        assert_eq!(series.len(), 1);
    }
}
