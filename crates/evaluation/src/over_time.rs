//! Precision over the full collection period (Table 9): average, minimum,
//! and standard deviation of every method's daily precision.

use crate::metrics::precision_recall;
use crate::runner::EvaluationContext;
use copydetect::known_copying;
use datamodel::Collection;
use fusion::{all_methods, FusionOptions};
use serde::Serialize;

/// Table-9 row for one method.
#[derive(Debug, Clone, Serialize)]
pub struct MethodOverTime {
    /// Method name.
    pub method: String,
    /// Category label.
    pub category: String,
    /// Daily precision values (one per collection day).
    pub daily_precision: Vec<f64>,
    /// Average precision over the period.
    pub average: f64,
    /// Minimum precision over the period.
    pub minimum: f64,
    /// Standard deviation of the daily precision.
    pub deviation: f64,
}

/// Run every method on every day of a collection and summarize. `use_known_copying`
/// feeds the planted/claimed copy groups to the oracle runs (only affects the
/// copy-aware methods' "with trust" path, which Table 9 does not use, so it is
/// typically left off).
pub fn evaluate_over_time(collection: &Collection, use_known_copying: bool) -> Vec<MethodOverTime> {
    let mut rows: Vec<MethodOverTime> = all_methods()
        .iter()
        .map(|(category, method)| MethodOverTime {
            method: method.name(),
            category: category.label().to_string(),
            daily_precision: Vec::new(),
            average: 0.0,
            minimum: 0.0,
            deviation: 0.0,
        })
        .collect();

    for day in collection.days() {
        let mut context = EvaluationContext::new(&day.snapshot, &day.gold);
        if use_known_copying {
            let report = known_copying(day.snapshot.schema());
            context = context.with_known_copying(&report);
        }
        for (row, (_, method)) in rows.iter_mut().zip(all_methods()) {
            let result = method.run(&context.problem, &FusionOptions::standard());
            let pr = precision_recall(context.snapshot, context.gold, &result);
            row.daily_precision.push(pr.precision);
        }
    }

    for row in &mut rows {
        row.average = datamodel::mean(&row.daily_precision);
        row.minimum = row
            .daily_precision
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        if !row.minimum.is_finite() {
            row.minimum = 0.0;
        }
        row.deviation = datamodel::stddev(&row.daily_precision);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};

    #[test]
    fn over_time_rows_cover_every_method_and_day() {
        let domain = generate(&stock_config(71).scaled(0.01, 0.15));
        let rows = evaluate_over_time(&domain.collection, false);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert_eq!(row.daily_precision.len(), domain.collection.num_days());
            assert!(row.minimum <= row.average + 1e-12);
            assert!(row.average >= 0.0 && row.average <= 1.0);
            assert!(row.deviation >= 0.0);
        }
    }
}
