//! Precision over the full collection period (Table 9): average, minimum,
//! and standard deviation of every method's daily precision.
//!
//! The per-day runs ride on the sharded warm-arena core: the days are cut
//! into contiguous shards ([`shard_plan`]), each shard fuses its day range
//! against one [`ShardArena`] (in-place problem refills, reused method
//! scratch), and the per-day precision vectors are concatenated in day
//! order — the same numbers the old one-context-per-day loop produced,
//! without its per-day allocations.

use crate::batch::{shard_plan, ShardArena};
use crate::metrics::precision_recall;
use datamodel::Collection;
use fusion::{all_methods, FusionOptions};
use rayon::prelude::*;
use serde::Serialize;

/// Table-9 row for one method.
#[derive(Debug, Clone, Serialize)]
pub struct MethodOverTime {
    /// Method name.
    pub method: String,
    /// Category label.
    pub category: String,
    /// Daily precision values (one per collection day).
    pub daily_precision: Vec<f64>,
    /// Average precision over the period.
    pub average: f64,
    /// Minimum precision over the period.
    pub minimum: f64,
    /// Standard deviation of the daily precision.
    pub deviation: f64,
}

/// Run every method on every day of a collection and summarize.
/// `use_known_copying` is accepted for API stability; Table 9 only uses the
/// standard (without-trust) runs, which never read the oracle copy groups —
/// the rows are identical either way, exactly as before the sharded rewrite.
pub fn evaluate_over_time(collection: &Collection, use_known_copying: bool) -> Vec<MethodOverTime> {
    let _ = use_known_copying;
    let mut rows: Vec<MethodOverTime> = all_methods()
        .iter()
        .map(|(category, method)| MethodOverTime {
            method: method.name(),
            category: category.label().to_string(),
            daily_precision: Vec::new(),
            average: 0.0,
            minimum: 0.0,
            deviation: 0.0,
        })
        .collect();

    // Contiguous day shards, one warm arena per shard; each inner vector is
    // one day's per-method precisions, concatenated back in day order.
    let weights: Vec<usize> = collection.days().map(|d| d.snapshot.num_items()).collect();
    let plan = shard_plan(&weights, rayon::current_num_threads());
    let per_shard: Vec<Vec<Vec<f64>>> = plan
        .into_par_iter()
        .map(|range| {
            let methods = all_methods();
            let mut arena = ShardArena::new();
            range
                .map(|i| {
                    let day = collection.day(i);
                    arena.prepare(&day.snapshot);
                    methods
                        .iter()
                        .map(|(_, method)| {
                            let result =
                                arena.run(method.as_ref(), &FusionOptions::standard());
                            precision_recall(&day.snapshot, &day.gold, &result).precision
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    for day_precisions in per_shard.into_iter().flatten() {
        for (row, precision) in rows.iter_mut().zip(day_precisions) {
            row.daily_precision.push(precision);
        }
    }

    for row in &mut rows {
        row.average = datamodel::mean(&row.daily_precision);
        row.minimum = row
            .daily_precision
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        if !row.minimum.is_finite() {
            row.minimum = 0.0;
        }
        row.deviation = datamodel::stddev(&row.daily_precision);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};

    #[test]
    fn over_time_rows_cover_every_method_and_day() {
        let domain = generate(&stock_config(71).scaled(0.01, 0.15));
        let rows = evaluate_over_time(&domain.collection, false);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert_eq!(row.daily_precision.len(), domain.collection.num_days());
            assert!(row.minimum <= row.average + 1e-12);
            assert!(row.average >= 0.0 && row.average <= 1.0);
            assert!(row.deviation >= 0.0);
        }
    }
}
