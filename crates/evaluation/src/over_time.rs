//! Precision over the full collection period (Table 9): average, minimum,
//! and standard deviation of every method's daily precision.
//!
//! The per-day runs ride on the sharded warm-arena core: the days are cut
//! into contiguous shards ([`shard_plan`]), each shard fuses its day range
//! against one [`ShardArena`] (in-place problem refills, reused method
//! scratch), and the per-day precision vectors are concatenated in day
//! order — the same numbers the old one-context-per-day loop produced,
//! without its per-day allocations.

use crate::batch::{shard_plan, ShardArena};
use crate::delta_usage::DeltaUsage;
use crate::metrics::precision_recall;
use datamodel::Collection;
use fusion::{all_methods, DeltaEngine, DeltaPolicy, FusionOptions};
use rayon::prelude::*;
use serde::Serialize;

/// Table-9 row for one method.
#[derive(Debug, Clone, Serialize)]
pub struct MethodOverTime {
    /// Method name.
    pub method: String,
    /// Category label.
    pub category: String,
    /// Daily precision values (one per collection day).
    pub daily_precision: Vec<f64>,
    /// Average precision over the period.
    pub average: f64,
    /// Minimum precision over the period.
    pub minimum: f64,
    /// Standard deviation of the daily precision.
    pub deviation: f64,
}

/// Run every method on every day of a collection and summarize.
/// `use_known_copying` is accepted for API stability; Table 9 only uses the
/// standard (without-trust) runs, which never read the oracle copy groups —
/// the rows are identical either way, exactly as before the sharded rewrite.
pub fn evaluate_over_time(collection: &Collection, use_known_copying: bool) -> Vec<MethodOverTime> {
    let _ = use_known_copying;
    let mut rows = method_rows();

    // Contiguous day shards, one warm arena per shard; each inner vector is
    // one day's per-method precisions, concatenated back in day order.
    let weights: Vec<usize> = collection.days().map(|d| d.snapshot.num_items()).collect();
    let plan = shard_plan(&weights, rayon::current_num_threads());
    let per_shard: Vec<Vec<Vec<f64>>> = plan
        .into_par_iter()
        .map(|range| {
            let methods = all_methods();
            let mut arena = ShardArena::new();
            range
                .map(|i| {
                    let day = collection.day(i);
                    arena.prepare(&day.snapshot);
                    methods
                        .iter()
                        .map(|(_, method)| {
                            let result =
                                arena.run(method.as_ref(), &FusionOptions::standard());
                            precision_recall(&day.snapshot, &day.gold, &result).precision
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    for day_precisions in per_shard.into_iter().flatten() {
        for (row, precision) in rows.iter_mut().zip(day_precisions) {
            row.daily_precision.push(precision);
        }
    }

    summarize(&mut rows);
    rows
}

/// Run every method on every day of a collection through one warm
/// [`DeltaEngine`] (day-over-day delta'd preparation instead of per-day cold
/// refills) and summarize.
///
/// In [`fusion::DeltaMode::Exact`] the returned rows are bit-identical to
/// [`evaluate_over_time`]: each day's problem is spliced from the previous
/// day's CSR state (or fully refreshed when the dirty fraction exceeds the
/// policy threshold) and every method re-runs deterministically over it. The
/// days are inherently sequential — the warm state carries forward — so this
/// composes with intra-day chunking rather than across-day sharding: pass
/// `intra_day_chunks > 0` to split each day's candidate axis across workers
/// (bit-invisible, as pinned by the chunk-equivalence suites).
///
/// Also returns the aggregated [`DeltaUsage`] (dirty fractions, full-refresh
/// and cache-hit counts, re-fused item totals, preparation wall time) for the
/// `exp_table9_month --delta` leg.
pub fn evaluate_over_time_delta(
    collection: &Collection,
    policy: DeltaPolicy,
    intra_day_chunks: usize,
) -> (Vec<MethodOverTime>, DeltaUsage) {
    let mut rows = method_rows();
    let methods = all_methods();
    let mut options = FusionOptions::standard();
    if intra_day_chunks > 0 {
        options = options.with_intra_day_chunks(intra_day_chunks);
    }

    let mut engine = DeltaEngine::with_policy(policy);
    let mut usage = DeltaUsage::default();
    for day in collection.days() {
        usage.record_advance(&engine.advance(&day.snapshot));
        for ((_, method), row) in methods.iter().zip(rows.iter_mut()) {
            let (result, report) = engine.run(method.as_ref(), &options);
            usage.record_run(&report);
            row.daily_precision
                .push(precision_recall(&day.snapshot, &day.gold, &result).precision);
        }
    }

    summarize(&mut rows);
    (rows, usage)
}

fn method_rows() -> Vec<MethodOverTime> {
    all_methods()
        .iter()
        .map(|(category, method)| MethodOverTime {
            method: method.name(),
            category: category.label().to_string(),
            daily_precision: Vec::new(),
            average: 0.0,
            minimum: 0.0,
            deviation: 0.0,
        })
        .collect()
}

fn summarize(rows: &mut [MethodOverTime]) {
    for row in rows {
        row.average = datamodel::mean(&row.daily_precision);
        row.minimum = row
            .daily_precision
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
            .min(1.0);
        if !row.minimum.is_finite() {
            row.minimum = 0.0;
        }
        row.deviation = datamodel::stddev(&row.daily_precision);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};

    #[test]
    fn over_time_rows_cover_every_method_and_day() {
        let domain = generate(&stock_config(71).scaled(0.01, 0.15));
        let rows = evaluate_over_time(&domain.collection, false);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert_eq!(row.daily_precision.len(), domain.collection.num_days());
            assert!(row.minimum <= row.average + 1e-12);
            assert!(row.average >= 0.0 && row.average <= 1.0);
            assert!(row.deviation >= 0.0);
        }
    }

    #[test]
    fn delta_exact_rows_match_the_cold_runner_bit_for_bit() {
        let domain = generate(&stock_config(72).scaled(0.008, 0.12));
        let cold = evaluate_over_time(&domain.collection, false);
        let (warm, usage) =
            evaluate_over_time_delta(&domain.collection, fusion::DeltaPolicy::exact(), 0);
        assert_eq!(warm.len(), cold.len());
        for (w, c) in warm.iter().zip(&cold) {
            assert_eq!(w.method, c.method);
            assert_eq!(w.daily_precision, c.daily_precision, "method {}", w.method);
            assert_eq!(w.average.to_bits(), c.average.to_bits());
            assert_eq!(w.minimum.to_bits(), c.minimum.to_bits());
            assert_eq!(w.deviation.to_bits(), c.deviation.to_bits());
        }
        assert_eq!(usage.advances, domain.collection.num_days());
        assert!(usage.full_refreshes >= 1, "first day is always a full prepare");
        assert!(usage.total_items > 0);

        // Chunked intra-day execution composes without changing the rows.
        let (chunked, _) =
            evaluate_over_time_delta(&domain.collection, fusion::DeltaPolicy::exact(), 2);
        for (w, c) in chunked.iter().zip(&cold) {
            assert_eq!(w.daily_precision, c.daily_precision, "method {}", w.method);
        }
    }
}
