//! Precision vs. dominance factor (Figure 10): how a fusion method's
//! precision varies with how contested a data item is, compared against VOTE.
//!
//! The paper's point: the advanced methods' gains over VOTE concentrate on
//! the items whose dominance factor is low (below .5 for Stock, in [.4, .7)
//! for Flight, where copied wrong values can dominate).

use crate::runner::EvaluationContext;
use fusion::FusionResult;
use serde::Serialize;

/// Precision of a method within one dominance-factor bin.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DominancePrecisionPoint {
    /// Lower edge of the dominance-factor bin `[lo, lo + 0.1)`.
    pub factor_low: f64,
    /// Number of gold-covered items in the bin.
    pub items: usize,
    /// Precision of the method on those items.
    pub precision: f64,
}

/// Compute the Figure-10 series for one fusion result: precision per
/// dominance-factor bin of the underlying items.
pub fn precision_by_dominance(
    context: &EvaluationContext<'_>,
    result: &FusionResult,
) -> Vec<DominancePrecisionPoint> {
    let snapshot = context.snapshot;
    let gold = context.gold;
    let mut correct = [0usize; 10];
    let mut total = [0usize; 10];
    for item in gold.items() {
        let Some(value) = result.value_for(item) else {
            continue;
        };
        let buckets = snapshot.buckets(item);
        let providers: usize = buckets.iter().map(|b| b.support()).sum();
        let Some(top) = buckets.first() else {
            continue;
        };
        let factor = top.support() as f64 / providers.max(1) as f64;
        let bin = ((factor * 10.0).floor() as usize).min(9);
        let truth = gold.get(item).expect("gold item");
        let tol = snapshot.tolerance().tolerance(item.attr);
        total[bin] += 1;
        if truth.matches(value, tol) || value.subsumes(truth) {
            correct[bin] += 1;
        }
    }
    (0..10)
        .map(|bin| DominancePrecisionPoint {
            factor_low: bin as f64 / 10.0,
            items: total[bin],
            precision: if total[bin] == 0 {
                0.0
            } else {
                correct[bin] as f64 / total[bin] as f64
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};
    use fusion::{method_by_name, FusionOptions};

    #[test]
    fn bins_cover_all_judged_items() {
        let domain = generate(&stock_config(51).scaled(0.02, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let vote = method_by_name("Vote")
            .unwrap()
            .run(&context.problem, &FusionOptions::standard());
        let points = precision_by_dominance(&context, &vote);
        assert_eq!(points.len(), 10);
        let covered: usize = points.iter().map(|p| p.items).sum();
        // Every gold item that received an output value lands in some bin.
        let judged = crate::metrics::precision_recall(&day.snapshot, &day.gold, &vote).judged;
        assert_eq!(covered, judged);
        for p in &points {
            assert!(p.precision >= 0.0 && p.precision <= 1.0);
        }
    }

    #[test]
    fn vote_is_perfect_on_fully_dominant_items() {
        let domain = generate(&stock_config(52).scaled(0.02, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let vote = method_by_name("Vote")
            .unwrap()
            .run(&context.problem, &FusionOptions::standard());
        let points = precision_by_dominance(&context, &vote);
        // In the top bin (dominance ≥ 0.9) the dominant value is practically
        // always the gold value.
        let top = &points[9];
        if top.items > 20 {
            assert!(top.precision > 0.9, "top-bin precision {}", top.precision);
        }
    }
}
