//! Core evaluation metrics: precision/recall and trustworthiness quality.

use datamodel::{GoldStandard, Snapshot, SourceId};
use fusion::{FusionProblem, FusionResult};
use serde::Serialize;

/// Precision and recall of a fusion output against a gold standard.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PrecisionRecall {
    /// Fraction of output values (on gold-covered items) consistent with the
    /// gold standard.
    pub precision: f64,
    /// Fraction of gold-standard values output as correct. Equal to the
    /// precision when every gold item receives an output value.
    pub recall: f64,
    /// Number of gold-covered items that received an output value.
    pub judged: usize,
    /// Number of items in the gold standard.
    pub gold_items: usize,
    /// Number of output values judged wrong.
    pub errors: usize,
}

/// Compute precision and recall of `result` against `gold` under the
/// snapshot's tolerance.
pub fn precision_recall(
    snapshot: &Snapshot,
    gold: &GoldStandard,
    result: &FusionResult,
) -> PrecisionRecall {
    let mut judged = 0usize;
    let mut correct = 0usize;
    for (item, truth) in gold.iter() {
        if let Some(value) = result.value_for(*item) {
            let tol = snapshot.tolerance().tolerance(item.attr);
            judged += 1;
            if truth.matches(value, tol) || value.subsumes(truth) {
                correct += 1;
            }
        }
    }
    let gold_items = gold.len();
    PrecisionRecall {
        precision: if judged == 0 {
            0.0
        } else {
            correct as f64 / judged as f64
        },
        recall: if gold_items == 0 {
            0.0
        } else {
            correct as f64 / gold_items as f64
        },
        judged,
        gold_items,
        errors: judged - correct,
    }
}

/// The sampled trustworthiness of every source of `problem`: its accuracy
/// against the gold standard (the paper samples source trustworthiness with
/// respect to the gold standard and feeds it to the methods as oracle input).
/// Sources with no gold-covered claim get the `fallback` value.
pub fn sampled_trust(
    snapshot: &Snapshot,
    gold: &GoldStandard,
    problem: &FusionProblem,
    fallback: f64,
) -> Vec<f64> {
    problem
        .sources
        .iter()
        .map(|&source| {
            source_accuracy_value(snapshot, gold, source).unwrap_or(fallback)
        })
        .collect()
}

fn source_accuracy_value(
    snapshot: &Snapshot,
    gold: &GoldStandard,
    source: SourceId,
) -> Option<f64> {
    let mut judged = 0usize;
    let mut correct = 0usize;
    for (item, truth) in gold.iter() {
        if let Some(value) = snapshot.value_of(source, *item) {
            let tol = snapshot.tolerance().tolerance(item.attr);
            judged += 1;
            if truth.matches(value, tol) || value.subsumes(truth) {
                correct += 1;
            }
        }
    }
    if judged == 0 {
        None
    } else {
        Some(correct as f64 / judged as f64)
    }
}

/// Equation 4 (trustworthiness deviation) and the trustworthiness difference:
/// root-mean-square difference between the computed and sampled trust, and
/// the mean computed trust minus the mean sampled trust.
pub fn trust_deviation_and_difference(computed: &[f64], sampled: &[f64]) -> (f64, f64) {
    let n = computed.len().min(sampled.len());
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut sum_sq = 0.0;
    let mut sum_computed = 0.0;
    let mut sum_sampled = 0.0;
    for i in 0..n {
        let d = computed[i] - sampled[i];
        sum_sq += d * d;
        sum_computed += computed[i];
        sum_sampled += sampled[i];
    }
    (
        (sum_sq / n as f64).sqrt(),
        (sum_computed - sum_sampled) / n as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, DomainSchema, ItemId, ObjectId, SnapshotBuilder, Value};
    use fusion::{all_methods, FusionOptions};
    use std::sync::Arc;

    fn setup() -> (Snapshot, GoldStandard) {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
        for i in 0..3 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        for obj in 0..4 {
            let truth = 100.0 + obj as f64;
            b.add(SourceId(0), ObjectId(obj), AttrId(0), Value::number(truth));
            b.add(SourceId(1), ObjectId(obj), AttrId(0), Value::number(truth));
            b.add(
                SourceId(2),
                ObjectId(obj),
                AttrId(0),
                Value::number(truth + 40.0),
            );
        }
        let snap = b.build(Arc::new(schema));
        let mut gold = GoldStandard::new();
        for obj in 0..4 {
            gold.insert(
                ItemId::new(ObjectId(obj), AttrId(0)),
                Value::number(100.0 + obj as f64),
            );
        }
        // One gold item nobody provides: recall must account for it.
        gold.insert(ItemId::new(ObjectId(9), AttrId(0)), Value::number(1.0));
        (snap, gold)
    }

    #[test]
    fn precision_and_recall_differ_when_items_are_missing() {
        let (snap, gold) = setup();
        let problem = FusionProblem::from_snapshot(&snap);
        let vote = fusion::method_by_name("Vote").unwrap();
        let result = vote.run(&problem, &FusionOptions::standard());
        let pr = precision_recall(&snap, &gold, &result);
        assert_eq!(pr.judged, 4);
        assert_eq!(pr.gold_items, 5);
        assert!((pr.precision - 1.0).abs() < 1e-12);
        assert!((pr.recall - 0.8).abs() < 1e-12);
        assert_eq!(pr.errors, 0);
    }

    #[test]
    fn sampled_trust_reflects_source_accuracy() {
        let (snap, gold) = setup();
        let problem = FusionProblem::from_snapshot(&snap);
        let trust = sampled_trust(&snap, &gold, &problem, 0.5);
        let s0 = problem.source_index(SourceId(0)).unwrap();
        let s2 = problem.source_index(SourceId(2)).unwrap();
        assert!((trust[s0] - 1.0).abs() < 1e-12);
        assert!(trust[s2] < 0.1);
    }

    #[test]
    fn trust_deviation_formula() {
        let (dev, diff) = trust_deviation_and_difference(&[0.9, 0.7], &[0.8, 0.9]);
        assert!((dev - (0.05f64).sqrt() * (0.1f64 / 0.05f64.sqrt() * 0.0 + 1.0)).abs() < 1.0);
        // dev = sqrt((0.01 + 0.04)/2) = sqrt(0.025)
        assert!((dev - 0.025f64.sqrt()).abs() < 1e-12);
        assert!((diff - (-0.05)).abs() < 1e-12);
        assert_eq!(trust_deviation_and_difference(&[], &[]), (0.0, 0.0));
    }

    #[test]
    fn every_registered_method_scores_perfectly_on_clean_data() {
        let (snap, gold) = setup();
        let problem = FusionProblem::from_snapshot(&snap);
        for (_, method) in all_methods() {
            let result = method.run(&problem, &FusionOptions::standard());
            let pr = precision_recall(&snap, &gold, &result);
            assert!(
                pr.precision > 0.99,
                "{} precision {} on trivially clean data",
                method.name(),
                pr.precision
            );
        }
    }
}
