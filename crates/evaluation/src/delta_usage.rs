//! Shared accounting for the delta-engine evaluation runners.
//!
//! Both temporal runners ([`crate::over_time::evaluate_over_time_delta`] and
//! [`crate::incremental::incremental_recall_delta`]) drive one
//! [`fusion::DeltaEngine`] across a sequence of snapshots; this module
//! aggregates the engine's per-step reports into the summary the `--delta`
//! bench legs print (re-fused item counts, fall-back and cache-hit counts,
//! mean dirty fraction, preparation wall time).

use fusion::delta::{AdvanceReport, RunReport};
use std::time::Duration;

/// Aggregated delta-engine activity over one runner invocation.
#[derive(Debug, Clone, Default)]
pub struct DeltaUsage {
    /// Snapshots advanced through (including the cold first one).
    pub advances: usize,
    /// Advances that fell back to a full re-preparation (first day included).
    pub full_refreshes: usize,
    /// Advances whose delta was empty (preparation skipped entirely).
    pub identical_days: usize,
    /// Run calls answered from the per-method cache without fusing.
    pub cache_hits: usize,
    /// Items actually re-fused, summed over every run call.
    pub fused_items: usize,
    /// Total item slots offered, summed over every run call.
    pub total_items: usize,
    /// Sum of per-advance dirty fractions over the non-first advances.
    pub dirty_fraction_sum: f64,
    /// Number of non-first advances folded into `dirty_fraction_sum`.
    pub dirty_steps: usize,
    /// Wall-clock time spent in `advance` (diff + partial refill).
    pub prepare: Duration,
}

impl DeltaUsage {
    /// Fold one [`AdvanceReport`] into the summary.
    pub fn record_advance(&mut self, report: &AdvanceReport) {
        self.advances += 1;
        if report.full_refresh {
            self.full_refreshes += 1;
        }
        if report.identical {
            self.identical_days += 1;
        }
        if !report.first_day {
            self.dirty_fraction_sum += report.dirty_fraction;
            self.dirty_steps += 1;
        }
        self.prepare += report.prepare;
    }

    /// Fold one [`RunReport`] into the summary.
    pub fn record_run(&mut self, report: &RunReport) {
        if report.cache_hit {
            self.cache_hits += 1;
        }
        self.fused_items += report.fused_items;
        self.total_items += report.total_items;
    }

    /// Fold another summary into this one (component-wise sums). The online
    /// service aggregates per-seal usage into its cumulative `ServiceStats`
    /// with this.
    pub fn merge(&mut self, other: &DeltaUsage) {
        self.advances += other.advances;
        self.full_refreshes += other.full_refreshes;
        self.identical_days += other.identical_days;
        self.cache_hits += other.cache_hits;
        self.fused_items += other.fused_items;
        self.total_items += other.total_items;
        self.dirty_fraction_sum += other.dirty_fraction_sum;
        self.dirty_steps += other.dirty_steps;
        self.prepare += other.prepare;
    }

    /// Mean dirty fraction over the non-first advances (0 when none).
    pub fn mean_dirty_fraction(&self) -> f64 {
        if self.dirty_steps == 0 {
            0.0
        } else {
            self.dirty_fraction_sum / self.dirty_steps as f64
        }
    }

    /// Fraction of offered item slots that were actually re-fused.
    pub fn fused_fraction(&self) -> f64 {
        if self.total_items == 0 {
            0.0
        } else {
            self.fused_items as f64 / self.total_items as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fusion::delta::DeltaMode;

    #[test]
    fn usage_accumulates_reports() {
        let mut usage = DeltaUsage::default();
        usage.record_advance(&AdvanceReport {
            day: 0,
            first_day: true,
            identical: false,
            full_refresh: true,
            dirty_items: 10,
            removed_items: 0,
            dirty_sources: 3,
            added_sources: 3,
            removed_sources: 0,
            dirty_fraction: 1.0,
            prepare: Duration::from_millis(2),
        });
        usage.record_advance(&AdvanceReport {
            day: 1,
            first_day: false,
            identical: false,
            full_refresh: false,
            dirty_items: 1,
            removed_items: 0,
            dirty_sources: 1,
            added_sources: 0,
            removed_sources: 0,
            dirty_fraction: 0.1,
            prepare: Duration::from_millis(1),
        });
        usage.record_run(&RunReport {
            mode: DeltaMode::Bounded,
            cache_hit: false,
            full_run: false,
            fused_items: 2,
            total_items: 10,
            frontier_sources: 1,
            elapsed: Duration::from_millis(1),
        });
        usage.record_run(&RunReport {
            mode: DeltaMode::Bounded,
            cache_hit: true,
            full_run: false,
            fused_items: 0,
            total_items: 10,
            frontier_sources: 0,
            elapsed: Duration::ZERO,
        });
        assert_eq!(usage.advances, 2);
        assert_eq!(usage.full_refreshes, 1);
        assert_eq!(usage.cache_hits, 1);
        assert!((usage.mean_dirty_fraction() - 0.1).abs() < 1e-12);
        assert!((usage.fused_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(usage.prepare, Duration::from_millis(3));

        // Merging a summary into an empty one reproduces it; merging it into
        // itself doubles every counter.
        let mut merged = DeltaUsage::default();
        merged.merge(&usage);
        assert_eq!(merged.advances, usage.advances);
        assert_eq!(merged.prepare, usage.prepare);
        merged.merge(&usage);
        assert_eq!(merged.advances, 2 * usage.advances);
        assert_eq!(merged.fused_items, 2 * usage.fused_items);
        assert_eq!(merged.dirty_steps, 2 * usage.dirty_steps);
        assert!((merged.mean_dirty_fraction() - usage.mean_dirty_fraction()).abs() < 1e-12);
    }
}
