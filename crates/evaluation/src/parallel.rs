//! Parallel evaluation runner: fan the sixteen registry methods — and any
//! number of collection days — across CPU cores.
//!
//! The sequential [`runner`](crate::runner) evaluates methods one at a time;
//! on the paper's workload that is dominated by a few expensive methods (the
//! per-attribute ACCU variants and ACCUCOPY take orders of magnitude longer
//! than VOTE, see Figure 12). [`ParallelRunner`] runs each (day, method)
//! pair as one task on a work-stealing pool, so the cheap methods fill the
//! cores while the expensive ones run, and a multi-day evaluation
//! (Table 9 / Figure 8) scales with the number of snapshots.
//!
//! Every method run is deterministic (no randomness at fusion time), so the
//! parallel runner produces **identical** rows to the sequential one —
//! selected values, precision, trust, rounds — except for the measured
//! `elapsed` wall-clock field, which is timing noise by nature. The
//! `same_results` helper encodes that equivalence and is exercised by the
//! integration tests.

use crate::chunk_policy::ChunkPolicy;
use crate::runner::{
    evaluate_all_methods, evaluate_method_with_chunks, EvaluationContext, MethodEvaluation,
};
use copydetect::known_copying;
use datamodel::{Collection, CollectionDay};
use fusion::all_methods;
use rayon::prelude::*;
use serde::Serialize;
use std::time::{Duration, Instant};

/// Fans fusion-method evaluations across CPU cores.
///
/// Construct with [`ParallelRunner::new`], optionally enable the oracle
/// copying knowledge with [`with_known_copying`](Self::with_known_copying),
/// then evaluate a single prepared context
/// ([`evaluate_all_methods`](Self::evaluate_all_methods)) or whole
/// collections ([`evaluate_collection`](Self::evaluate_collection),
/// [`evaluate_days`](Self::evaluate_days)).
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelRunner {
    use_known_copying: bool,
}

/// All sixteen Table-7 rows for one collection day.
#[derive(Debug, Clone, Serialize)]
pub struct DayEvaluation {
    /// Index of the day within the evaluated selection.
    pub day_index: usize,
    /// The snapshot's own day stamp.
    pub day: u32,
    /// One row per registry method, in Table-7 order.
    pub rows: Vec<MethodEvaluation>,
}

/// Result of a parallel multi-snapshot evaluation, with the timing evidence
/// for the Figure-12 efficiency discussion.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelEvaluation {
    /// Per-day method rows, in the order the days were requested.
    pub days: Vec<DayEvaluation>,
    /// Wall-clock time of the whole fan-out (context preparation included).
    pub wall_clock: Duration,
    /// Sum of the full per-(day, method) task times — both the without-trust
    /// and with-trust runs plus the metrics, i.e. what a sequential runner
    /// would spend inside the evaluations alone (context preparation
    /// excluded).
    pub total_method_time: Duration,
    /// Worker threads the fan-out ran on.
    pub threads: usize,
    /// Fusion kernel backend the run dispatched to (`"avx2+fma"` /
    /// `"scalar"`), recorded so timing evidence from machines with
    /// different vector units is never compared as like-for-like.
    pub kernel_backend: String,
}

impl ParallelEvaluation {
    /// Ratio of summed per-task time to wall-clock time; > 1 means the
    /// fan-out beat a sequential run (upper-bounded by `threads`). For a
    /// measured — rather than estimated — baseline, time
    /// [`evaluate_days_sequential`] on the same selection.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_clock.as_secs_f64();
        if wall <= 0.0 {
            return 1.0;
        }
        self.total_method_time.as_secs_f64() / wall
    }
}

impl ParallelRunner {
    /// A runner with the standard options (no oracle copying knowledge).
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed the planted/claimed copy groups (Table 5) to the oracle
    /// with-trust runs of copy-aware methods, as Table 7 does.
    pub fn with_known_copying(mut self) -> Self {
        self.use_known_copying = true;
        self
    }

    /// Evaluate all sixteen registry methods on one prepared context, one
    /// task per method, returning rows in Table-7 order (the parallel
    /// equivalent of [`evaluate_all_methods`]).
    ///
    /// If the runner was built [`with_known_copying`](Self::with_known_copying)
    /// and the context does not already carry a copy report, the oracle
    /// report is derived from the snapshot's schema here, exactly as
    /// [`evaluate_days`](Self::evaluate_days) does.
    pub fn evaluate_all_methods(
        &self,
        context: &EvaluationContext<'_>,
    ) -> Vec<MethodEvaluation> {
        let enriched = (self.use_known_copying && context.known_copying.is_none()).then(|| {
            let report = known_copying(context.snapshot.schema());
            context.clone().with_known_copying(&report)
        });
        let context = enriched.as_ref().unwrap_or(context);
        let methods = all_methods();
        // Sixteen method tasks over one day: on pools wider than the method
        // count each task also chunks within the day (bit-identical either
        // way, see `ChunkPolicy`).
        let policy = ChunkPolicy::from_pool();
        let chunks = policy.intra_day_chunks(methods.len(), context.problem.num_items());
        methods
            .into_par_iter()
            .map(|(category, method)| {
                evaluate_method_with_chunks(context, category, method.as_ref(), chunks)
            })
            .collect()
    }

    /// Evaluate every day of a collection; see [`evaluate_days`](Self::evaluate_days).
    pub fn evaluate_collection(&self, collection: &Collection) -> ParallelEvaluation {
        let indices: Vec<usize> = (0..collection.num_days()).collect();
        self.evaluate_days(collection, &indices)
    }

    /// Evaluate the sixteen registry methods on the selected days of a
    /// collection, fanning all (day, method) pairs across the pool at once
    /// so expensive methods on one day overlap cheap methods on another.
    ///
    /// # Panics
    ///
    /// Panics if any index in `day_indices` is out of range for the
    /// collection (mirroring [`Collection::day`]).
    pub fn evaluate_days(
        &self,
        collection: &Collection,
        day_indices: &[usize],
    ) -> ParallelEvaluation {
        let start = Instant::now();

        // Phase 1: prepare one context per requested day, in parallel.
        // (FusionProblem preparation and trust sampling are themselves
        // non-trivial on paper-scale snapshots.)
        let days: Vec<&CollectionDay> = day_indices.iter().map(|&i| collection.day(i)).collect();
        let contexts: Vec<EvaluationContext<'_>> = days
            .par_iter()
            .map(|day| {
                let context = EvaluationContext::new(&day.snapshot, &day.gold);
                if self.use_known_copying {
                    let report = known_copying(day.snapshot.schema());
                    context.with_known_copying(&report)
                } else {
                    context
                }
            })
            .collect();

        // Phase 2: one task per (day, method) pair. Method index rides along
        // so the rows can be reassembled in Table-7 order per day. The
        // method objects are built once and shared (`FusionMethod` is
        // `Send + Sync`). Each task is timed as a whole — evaluate_method
        // runs the method twice (without and with input trust) plus the
        // metrics, and all of that is work a sequential runner would pay
        // for, so only the full task time gives an honest speedup numerator.
        let methods = all_methods();
        let tasks: Vec<(usize, usize)> = (0..contexts.len())
            .flat_map(|day| (0..methods.len()).map(move |method| (day, method)))
            .collect();
        // Spare threads (pool wider than the task list — one huge day on a
        // many-core box) go to intra-day chunking; the usual many-task case
        // keeps every run sequential. Bit-identical either way.
        let policy = ChunkPolicy::from_pool();
        let num_tasks = tasks.len();
        let evaluated: Vec<(usize, usize, MethodEvaluation, Duration)> = tasks
            .into_par_iter()
            .map(|(day, method_index)| {
                let task_start = Instant::now();
                let (category, method) = &methods[method_index];
                let chunks =
                    policy.intra_day_chunks(num_tasks, contexts[day].problem.num_items());
                let row =
                    evaluate_method_with_chunks(&contexts[day], *category, method.as_ref(), chunks);
                (day, method_index, row, task_start.elapsed())
            })
            .collect();

        // Reassemble: rows arrive ordered by task index (day-major), so a
        // stable pass per day suffices.
        let mut day_rows: Vec<Vec<MethodEvaluation>> =
            (0..contexts.len()).map(|_| Vec::new()).collect();
        let mut total_method_time = Duration::ZERO;
        for (day, _method_index, row, task_time) in evaluated {
            total_method_time += task_time;
            day_rows[day].push(row);
        }

        let days = day_rows
            .into_iter()
            .zip(days)
            .enumerate()
            .map(|(day_index, (rows, day))| DayEvaluation {
                day_index,
                day: day.snapshot.day(),
                rows,
            })
            .collect();

        ParallelEvaluation {
            days,
            wall_clock: start.elapsed(),
            total_method_time,
            threads: rayon::current_num_threads(),
            kernel_backend: fusion::kernels::backend_name().to_string(),
        }
    }

    /// Fan an arbitrary per-day computation across the pool, preserving day
    /// order — the building block the profiling-style experiments (Figure 8,
    /// Table 9) use for measurements that are not fusion runs.
    pub fn map_days<'c, R, F>(&self, collection: &'c Collection, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&'c CollectionDay) -> R + Sync + Send,
    {
        let days: Vec<&CollectionDay> = collection.days().collect();
        days.into_par_iter().map(f).collect()
    }
}

/// True when two evaluations of the same context agree on everything a
/// deterministic method controls (name, category, precision, recall, trust
/// statistics, rounds) — i.e. everything except the measured `elapsed`.
pub fn same_results(a: &[MethodEvaluation], b: &[MethodEvaluation]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.method == y.method
                && x.category == y.category
                && x.precision_without_trust == y.precision_without_trust
                && x.recall_without_trust == y.recall_without_trust
                && x.precision_with_trust == y.precision_with_trust
                && x.trust_deviation == y.trust_deviation
                && x.trust_difference == y.trust_difference
                && x.rounds == y.rounds
        })
}

/// Build one evaluation context per selected day, sequentially. This is the
/// preparation half of [`evaluate_days_sequential`], split out so repeated
/// timing runs (`exp_fig12_efficiency --repeats`) can pay for `FusionProblem`
/// preparation once and re-time only the method evaluations.
pub fn prepare_contexts<'c>(
    collection: &'c Collection,
    day_indices: &[usize],
    use_known_copying: bool,
) -> Vec<EvaluationContext<'c>> {
    day_indices
        .iter()
        .map(|&i| {
            let day = collection.day(i);
            let context = EvaluationContext::new(&day.snapshot, &day.gold);
            if use_known_copying {
                let report = known_copying(day.snapshot.schema());
                context.with_known_copying(&report)
            } else {
                context
            }
        })
        .collect()
}

/// Evaluate prepared contexts sequentially, one [`DayEvaluation`] per
/// context, in order. The evaluation half of [`evaluate_days_sequential`].
pub fn evaluate_prepared_sequential(contexts: &[EvaluationContext<'_>]) -> Vec<DayEvaluation> {
    contexts
        .iter()
        .enumerate()
        .map(|(day_index, context)| DayEvaluation {
            day_index,
            day: context.snapshot.day(),
            rows: evaluate_all_methods(context),
        })
        .collect()
}

/// Convenience: sequential baseline rows for the same selection of days,
/// used by the efficiency experiment to report the speedup honestly.
pub fn evaluate_days_sequential(
    collection: &Collection,
    day_indices: &[usize],
    use_known_copying: bool,
) -> Vec<DayEvaluation> {
    evaluate_prepared_sequential(&prepare_contexts(collection, day_indices, use_known_copying))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};

    #[test]
    fn parallel_matches_sequential_on_one_context() {
        let domain = generate(&stock_config(31).scaled(0.015, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let sequential = evaluate_all_methods(&context);
        let parallel = ParallelRunner::new().evaluate_all_methods(&context);
        assert_eq!(parallel.len(), 16);
        assert!(
            same_results(&sequential, &parallel),
            "parallel rows diverged from sequential rows"
        );
        // Table-7 order is preserved.
        assert_eq!(parallel[0].method, "Vote");
        assert_eq!(parallel[15].method, "AccuCopy");
    }

    #[test]
    fn multi_day_fanout_covers_every_day_and_method() {
        let domain = generate(&stock_config(32).scaled(0.01, 0.2));
        let report = ParallelRunner::new().evaluate_collection(&domain.collection);
        assert_eq!(report.days.len(), domain.collection.num_days());
        for (i, day) in report.days.iter().enumerate() {
            assert_eq!(day.day_index, i);
            assert_eq!(day.rows.len(), 16);
            assert_eq!(day.rows[0].method, "Vote");
        }
        assert!(report.threads >= 1);
        assert!(report.total_method_time >= Duration::ZERO);
        assert!(report.speedup() > 0.0);
        assert!(
            report.kernel_backend == "avx2+fma" || report.kernel_backend == "scalar",
            "unexpected kernel backend {:?}",
            report.kernel_backend
        );
    }

    #[test]
    fn multi_day_fanout_matches_sequential_baseline() {
        let domain = generate(&stock_config(33).scaled(0.01, 0.15));
        let indices: Vec<usize> = (0..domain.collection.num_days()).collect();
        let parallel = ParallelRunner::new()
            .with_known_copying()
            .evaluate_days(&domain.collection, &indices);
        let sequential = evaluate_days_sequential(&domain.collection, &indices, true);
        assert_eq!(parallel.days.len(), sequential.len());
        for (p, s) in parallel.days.iter().zip(&sequential) {
            assert_eq!(p.day, s.day);
            assert!(same_results(&p.rows, &s.rows), "day {} diverged", p.day_index);
        }
    }

    #[test]
    fn with_known_copying_applies_to_single_context_evaluation() {
        let domain = generate(&stock_config(35).scaled(0.015, 0.1));
        let day = domain.collection.reference_day();

        // A plain context handed to a with_known_copying runner must behave
        // exactly like a context that was enriched with the oracle upfront.
        let plain = EvaluationContext::new(&day.snapshot, &day.gold);
        let from_runner = ParallelRunner::new()
            .with_known_copying()
            .evaluate_all_methods(&plain);

        let report = copydetect::known_copying(day.snapshot.schema());
        let enriched =
            EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&report);
        let from_context = evaluate_all_methods(&enriched);

        assert!(
            same_results(&from_runner, &from_context),
            "runner-level with_known_copying diverged from context-level oracle"
        );
    }

    #[test]
    fn prepared_split_matches_one_shot_sequential() {
        let domain = generate(&stock_config(36).scaled(0.01, 0.15));
        let indices: Vec<usize> = (0..domain.collection.num_days()).collect();
        let one_shot = evaluate_days_sequential(&domain.collection, &indices, true);
        let contexts = prepare_contexts(&domain.collection, &indices, true);
        // Re-evaluating the same prepared contexts twice must keep producing
        // the one-shot rows (the --repeats pattern).
        for _ in 0..2 {
            let split = evaluate_prepared_sequential(&contexts);
            assert_eq!(split.len(), one_shot.len());
            for (a, b) in split.iter().zip(&one_shot) {
                assert_eq!(a.day, b.day);
                assert!(same_results(&a.rows, &b.rows));
            }
        }
    }

    #[test]
    fn map_days_preserves_order() {
        let domain = generate(&stock_config(34).scaled(0.01, 0.2));
        let stamps: Vec<u32> =
            ParallelRunner::new().map_days(&domain.collection, |day| day.snapshot.day());
        let expected: Vec<u32> = domain.collection.days().map(|d| d.snapshot.day()).collect();
        assert_eq!(stamps, expected);
    }
}
