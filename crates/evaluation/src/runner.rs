//! Running fusion methods over a snapshot and collecting the Table-7
//! measurements: precision with and without input trust, trustworthiness
//! deviation and difference, execution time.

use crate::metrics::{precision_recall, sampled_trust, trust_deviation_and_difference};
use copydetect::CopyReport;
use datamodel::{GoldStandard, Snapshot};
use fusion::{
    all_methods, method_by_name, CopyMatrix, FusionMethod, FusionOptions, FusionProblem,
    FusionResult, FusionScratch, MethodCategory,
};
use serde::Serialize;
use std::sync::Arc;
use std::time::Duration;

/// Everything needed to evaluate methods on one snapshot.
///
/// Cloning is cheap: the snapshot and gold standard are borrowed, the
/// prepared problem (with all its `Value` strings) sits behind an `Arc`
/// shared by every clone, and only the sampled-trust vector and optional
/// copy matrix are flat copies — so parallel runners can hand contexts
/// around without re-preparing or duplicating the problem.
#[derive(Clone)]
pub struct EvaluationContext<'a> {
    /// The observation table.
    pub snapshot: &'a Snapshot,
    /// The gold standard precision is measured against.
    pub gold: &'a GoldStandard,
    /// The prepared fusion problem (built once, shared by all methods and all
    /// clones of the context).
    pub problem: Arc<FusionProblem>,
    /// Sampled source trust (accuracy against the gold standard), used for
    /// the "with trust" runs and for trust deviation/difference.
    pub sampled_trust: Vec<f64>,
    /// Known copy probabilities (dense source-index pairs) used by copy-aware
    /// methods in the oracle runs; typically derived from the planted or
    /// claimed copy groups (Table 5).
    pub known_copying: Option<CopyMatrix>,
}

impl<'a> EvaluationContext<'a> {
    /// Build a context from a snapshot and gold standard.
    pub fn new(snapshot: &'a Snapshot, gold: &'a GoldStandard) -> Self {
        let problem = FusionProblem::from_snapshot(snapshot);
        let sampled_trust = sampled_trust(snapshot, gold, &problem, 0.8);
        Self {
            snapshot,
            gold,
            problem: Arc::new(problem),
            sampled_trust,
            known_copying: None,
        }
    }

    /// Attach known copying information (used by the oracle runs of
    /// copy-aware methods).
    pub fn with_known_copying(mut self, report: &CopyReport) -> Self {
        self.known_copying = Some(copy_report_to_dense(report, &self.problem));
        self
    }
}

/// Convert a [`CopyReport`] (source-id keyed) into the dense source-index
/// matrix the fusion options expect.
pub fn copy_report_to_dense(report: &CopyReport, problem: &FusionProblem) -> CopyMatrix {
    let mut matrix = CopyMatrix::new(problem.num_sources());
    for ((a, b), p) in report.pairs() {
        if let (Some(i), Some(j)) = (problem.source_index(*a), problem.source_index(*b)) {
            matrix.set(i, j, *p);
        }
    }
    matrix
}

/// Table-7 row for one method.
#[derive(Debug, Clone, Serialize)]
pub struct MethodEvaluation {
    /// Method name (paper spelling).
    pub method: String,
    /// Category label (Table 6).
    pub category: String,
    /// Precision when the method estimates trust itself ("prec w/o. trust").
    pub precision_without_trust: f64,
    /// Recall of the same run (equals precision when all items are output).
    pub recall_without_trust: f64,
    /// Precision when the sampled trust is given as input ("prec w. trust").
    pub precision_with_trust: f64,
    /// Trustworthiness deviation (Equation 4) of the without-trust run.
    pub trust_deviation: f64,
    /// Mean computed trust minus mean sampled trust.
    pub trust_difference: f64,
    /// Number of iterative rounds of the without-trust run.
    pub rounds: usize,
    /// Execution time of the without-trust run.
    pub elapsed: Duration,
}

/// Core of [`evaluate_method`]: the context is passed piecewise (snapshot,
/// gold, problem, sampled trust, optional oracle copying) together with a
/// caller-owned [`FusionScratch`], so the per-context runners and the
/// warm-arena batch runner share one code path — which is what makes their
/// rows bit-identical by construction.
///
/// `intra_day_chunks` is forwarded to
/// [`FusionOptions::with_intra_day_chunks`] for both the without-trust and
/// with-trust runs; chunked fusion is bit-identical to sequential fusion, so
/// the value only affects timing (see [`crate::chunk_policy::ChunkPolicy`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_method_core(
    snapshot: &Snapshot,
    gold: &GoldStandard,
    problem: &FusionProblem,
    sampled_trust: &[f64],
    known_copying: Option<&CopyMatrix>,
    category: MethodCategory,
    method: &dyn FusionMethod,
    scratch: &mut FusionScratch,
    intra_day_chunks: usize,
) -> MethodEvaluation {
    let standard = FusionOptions::standard().with_intra_day_chunks(intra_day_chunks);
    let without = method.run_with_scratch(problem, &standard, scratch);
    let pr_without = precision_recall(snapshot, gold, &without);
    let (deviation, difference) =
        trust_deviation_and_difference(&without.trust.overall, sampled_trust);

    let mut with_opts = FusionOptions::standard()
        .with_intra_day_chunks(intra_day_chunks)
        .with_input_trust(sampled_trust.to_vec());
    if let Some(known) = known_copying {
        with_opts = with_opts.with_known_copying(known.clone());
    }
    let with = method.run_with_scratch(problem, &with_opts, scratch);
    let pr_with = precision_recall(snapshot, gold, &with);

    MethodEvaluation {
        method: method.name(),
        category: category.label().to_string(),
        precision_without_trust: pr_without.precision,
        recall_without_trust: pr_without.recall,
        precision_with_trust: pr_with.precision,
        trust_deviation: deviation,
        trust_difference: difference,
        rounds: without.rounds,
        elapsed: without.elapsed,
    }
}

/// Evaluate a single method on a context. `category` is only used for the
/// report label. Runs sequentially; use [`evaluate_method_with_chunks`] to
/// let one method parallelize within the day.
pub fn evaluate_method(
    context: &EvaluationContext<'_>,
    category: MethodCategory,
    method: &dyn FusionMethod,
) -> MethodEvaluation {
    evaluate_method_with_chunks(context, category, method, 0)
}

/// [`evaluate_method`] with an explicit intra-day chunk count (see
/// [`fusion::chunking`]); `0` keeps the method sequential. Chunked rows are
/// bit-identical to sequential rows, so callers choose the count purely on
/// performance grounds — typically via
/// [`ChunkPolicy`](crate::chunk_policy::ChunkPolicy).
pub fn evaluate_method_with_chunks(
    context: &EvaluationContext<'_>,
    category: MethodCategory,
    method: &dyn FusionMethod,
    intra_day_chunks: usize,
) -> MethodEvaluation {
    evaluate_method_core(
        context.snapshot,
        context.gold,
        &context.problem,
        &context.sampled_trust,
        context.known_copying.as_ref(),
        category,
        method,
        &mut FusionScratch::new(),
        intra_day_chunks,
    )
}

/// Evaluate all sixteen paper methods on a context, in Table-7 order.
pub fn evaluate_all_methods(context: &EvaluationContext<'_>) -> Vec<MethodEvaluation> {
    all_methods()
        .into_iter()
        .map(|(category, method)| evaluate_method(context, category, method.as_ref()))
        .collect()
}

/// Run one named method (paper spelling) without input trust and return the
/// raw fusion result; convenience for the comparison and error-analysis
/// experiments.
pub fn run_named_method(
    context: &EvaluationContext<'_>,
    name: &str,
    options: &FusionOptions,
) -> Option<FusionResult> {
    let method = method_by_name(name)?;
    Some(method.run(&context.problem, options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydetect::known_copying;
    use datagen::{generate, stock_config};
    use fusion::MethodCategory;

    #[test]
    fn evaluation_produces_all_sixteen_rows() {
        let domain = generate(&stock_config(21).scaled(0.015, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let rows = evaluate_all_methods(&context);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(row.precision_without_trust >= 0.0 && row.precision_without_trust <= 1.0);
            assert!(row.precision_with_trust >= 0.0 && row.precision_with_trust <= 1.0);
            assert!(row.recall_without_trust <= row.precision_without_trust + 1e-9);
            assert!(row.trust_deviation >= 0.0);
        }
        // The baseline row is VOTE and needs no iteration.
        assert_eq!(rows[0].method, "Vote");
        assert_eq!(rows[0].rounds, 0);
    }

    #[test]
    fn oracle_trust_never_hurts_much_and_usually_helps() {
        let domain = generate(&stock_config(22).scaled(0.015, 0.1));
        let day = domain.collection.reference_day();
        let report = known_copying(day.snapshot.schema());
        let context = EvaluationContext::new(&day.snapshot, &day.gold).with_known_copying(&report);
        let rows = evaluate_all_methods(&context);
        let helped = rows
            .iter()
            .filter(|r| r.method != "Vote")
            .filter(|r| r.precision_with_trust >= r.precision_without_trust - 0.02)
            .count();
        // The paper observes that giving sampled trustworthiness improves the
        // results for (almost) all methods.
        assert!(
            helped >= 12,
            "only {helped} methods kept or improved precision with oracle trust"
        );
    }

    #[test]
    fn single_method_evaluation_matches_registry_run() {
        let domain = generate(&stock_config(23).scaled(0.01, 0.1));
        let day = domain.collection.reference_day();
        let context = EvaluationContext::new(&day.snapshot, &day.gold);
        let accu = fusion::method_by_name("AccuPr").unwrap();
        let row = evaluate_method(&context, MethodCategory::Bayesian, accu.as_ref());
        assert_eq!(row.method, "AccuPr");
        assert_eq!(row.category, "Bayesian based");
        let direct = run_named_method(&context, "AccuPr", &FusionOptions::standard()).unwrap();
        let pr = precision_recall(context.snapshot, context.gold, &direct);
        assert!((pr.precision - row.precision_without_trust).abs() < 1e-9);
    }

    #[test]
    fn copy_report_conversion_uses_dense_indices() {
        let domain = generate(&stock_config(24).scaled(0.01, 0.1));
        let day = domain.collection.reference_day();
        let report = known_copying(day.snapshot.schema());
        let problem = FusionProblem::from_snapshot(&day.snapshot);
        let dense = copy_report_to_dense(&report, &problem);
        assert!(dense.num_scored() > 0);
        assert_eq!(dense.num_sources(), problem.num_sources());
        for ((a, b), p) in dense.pairs() {
            assert!(a < b);
            assert!(b < problem.num_sources());
            assert!(p > 0.99);
        }
    }
}
