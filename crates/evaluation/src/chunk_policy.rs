//! Choosing between across-day fan-out and intra-day chunking.
//!
//! The pool has a fixed number of worker threads; the runners have two ways
//! to feed them:
//!
//! * **across-task fan-out** — one (day, method) or shard task per worker
//!   ([`crate::parallel::ParallelRunner`], [`crate::batch::BatchRunner`]),
//!   which saturates the pool whenever there are at least as many tasks as
//!   threads;
//! * **intra-day chunking** — a single method run cuts its candidate axis
//!   into [`fusion::chunking`] ranges and fans those out, which is what keeps
//!   the cores busy on the paper's million-item days when there are only a
//!   handful of tasks (Figure 12's single-snapshot efficiency story).
//!
//! [`ChunkPolicy`] picks between them from the task stats: when the outer
//! fan-out alone can occupy every worker, intra-day chunking would only add
//! scheduling overhead and is disabled; when outer tasks are scarce (few big
//! days), the spare threads are given to each task as intra-day chunks,
//! capped so no chunk drops below
//! [`fusion::chunking::MIN_ITEMS_PER_CHUNK`] items. Chunked fusion is
//! bit-identical to sequential fusion by construction, so the policy is a
//! pure performance decision — it can never change a row.

use fusion::chunking::MIN_ITEMS_PER_CHUNK;

/// Decides how many intra-day chunks a method run should use, given how many
/// sibling tasks are already competing for the pool.
#[derive(Debug, Clone, Copy)]
pub struct ChunkPolicy {
    threads: usize,
}

impl ChunkPolicy {
    /// A policy for the current rayon pool size.
    pub fn from_pool() -> Self {
        Self::with_threads(rayon::current_num_threads())
    }

    /// A policy for an explicit thread count (tests and benchmarks).
    pub fn with_threads(threads: usize) -> Self {
        Self { threads }
    }

    /// The worker-thread count the policy plans for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of intra-day chunks for one method run when `across_tasks`
    /// outer tasks share the pool and the day has `num_items` items.
    ///
    /// Returns `0` (sequential) when the outer fan-out already covers every
    /// thread, when the day is too small to cut into at least two
    /// [`MIN_ITEMS_PER_CHUNK`]-sized chunks, or on a single-threaded pool.
    pub fn intra_day_chunks(&self, across_tasks: usize, num_items: usize) -> usize {
        if self.threads <= 1 || across_tasks >= self.threads {
            return 0;
        }
        // Spare parallelism per outer task, capped by the chunk-size floor.
        let spare = self.threads / across_tasks.max(1);
        let chunks = spare.min(num_items / MIN_ITEMS_PER_CHUNK);
        if chunks <= 1 {
            0
        } else {
            chunks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIG: usize = 1 << 20;

    #[test]
    fn saturated_fanout_disables_chunking() {
        let policy = ChunkPolicy::with_threads(8);
        assert_eq!(policy.intra_day_chunks(8, BIG), 0);
        assert_eq!(policy.intra_day_chunks(100, BIG), 0);
    }

    #[test]
    fn scarce_tasks_get_the_spare_threads() {
        let policy = ChunkPolicy::with_threads(8);
        assert_eq!(policy.intra_day_chunks(1, BIG), 8);
        assert_eq!(policy.intra_day_chunks(2, BIG), 4);
        assert_eq!(policy.intra_day_chunks(3, BIG), 2);
        // Zero outer tasks is treated as one.
        assert_eq!(policy.intra_day_chunks(0, BIG), 8);
    }

    #[test]
    fn small_days_stay_sequential() {
        let policy = ChunkPolicy::with_threads(8);
        // Fewer than two minimum-size chunks: not worth cutting.
        assert_eq!(policy.intra_day_chunks(1, MIN_ITEMS_PER_CHUNK), 0);
        assert_eq!(policy.intra_day_chunks(1, 2 * MIN_ITEMS_PER_CHUNK - 1), 0);
        // Exactly two minimum-size chunks: cut in two.
        assert_eq!(policy.intra_day_chunks(1, 2 * MIN_ITEMS_PER_CHUNK), 2);
        // The item cap binds before the thread count on mid-size days.
        assert_eq!(policy.intra_day_chunks(1, 3 * MIN_ITEMS_PER_CHUNK), 3);
    }

    #[test]
    fn single_threaded_pool_never_chunks() {
        let policy = ChunkPolicy::with_threads(1);
        assert_eq!(policy.intra_day_chunks(1, BIG), 0);
        assert_eq!(policy.threads(), 1);
    }
}
