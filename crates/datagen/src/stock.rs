//! Paper-calibrated configuration of the Stock domain.
//!
//! Reproduces the collection described in Section 2.2 of the paper: 55
//! sources, 1000 symbols, every weekday of July 2011 (21 snapshots), the 16
//! attributes of Table 2, five authoritative sources with the accuracies of
//! Table 4, one source that stopped refreshing its data (StockSmart), and the
//! two copy groups of Table 5 (11 sources derived from Financial Content with
//! accuracy ≈ .92, and a merged pair with accuracy ≈ .75).

use crate::config::{AttrSpec, DomainConfig, ErrorMix, GoldMode, GoldSpec, SourceSpec};
use datamodel::AttrKind;

/// Number of sources in the Stock collection.
pub const STOCK_SOURCES: usize = 55;
/// Number of stock symbols.
pub const STOCK_OBJECTS: u32 = 1000;
/// Number of weekday snapshots in July 2011.
pub const STOCK_DAYS: u32 = 21;

fn numeric(
    name: &str,
    scale: f64,
    statistical: bool,
    variant: f64,
    adoption: f64,
    drift: f64,
) -> AttrSpec {
    AttrSpec {
        name: name.to_string(),
        kind: AttrKind::Numeric { scale },
        statistical,
        variant_factor: variant,
        variant_adoption: adoption,
        drift,
    }
}

/// The 16 considered attributes of Table 2, with scales, semantics-variant
/// factors (how far a source using a different definition lands from the
/// truth), variant adoption rates (how widely the alternative semantics are
/// used — high for Dividend and P/E, which the paper singles out as the most
/// ambiguous attributes), and day-to-day drift (real-time attributes change
/// daily, while statistical ones move slowly).
pub fn stock_attributes() -> Vec<AttrSpec> {
    vec![
        numeric("Last price", 100.0, false, 1.0, 0.0, 0.02),
        numeric("Open price", 100.0, false, 1.0, 0.0, 0.02),
        numeric("Today's change (%)", 2.0, false, 1.0, 0.0, 0.30),
        numeric("Today's change ($)", 2.0, false, 1.0, 0.0, 0.30),
        numeric("Market cap", 5e9, true, 1.06, 0.12, 0.02),
        numeric("Volume", 5e6, true, 1.25, 0.15, 0.35),
        numeric("Today's high price", 102.0, false, 1.0, 0.0, 0.02),
        numeric("Today's low price", 98.0, false, 1.0, 0.0, 0.02),
        numeric("Dividend", 1.5, true, 4.0, 0.36, 0.002),
        numeric("Yield", 2.5, true, 2.0, 0.22, 0.005),
        numeric("52-week high price", 120.0, true, 1.08, 0.12, 0.002),
        numeric("52-week low price", 80.0, true, 0.90, 0.18, 0.002),
        numeric("EPS", 4.0, true, 1.33, 0.15, 0.002),
        numeric("P/E", 18.0, true, 0.75, 0.33, 0.01),
        numeric("Shares outstanding", 2e8, true, 1.03, 0.08, 0.001),
        numeric("Previous close", 100.0, false, 1.0, 0.0, 0.02),
    ]
}

/// Build the full Stock-domain configuration for the given master seed.
pub fn stock_config(seed: u64) -> DomainConfig {
    let mut sources = Vec::with_capacity(STOCK_SOURCES);

    // Five authoritative sources (Table 4). Bloomberg's lower accuracy stems
    // from divergent semantics on statistical attributes, which the error mix
    // will realize as semantics ambiguity.
    sources.push(
        SourceSpec::independent("Google Finance", 0.94, 0.97)
            .authority()
            .with_attr_coverage(0.84),
    );
    sources.push(
        SourceSpec::independent("Yahoo! Finance", 0.93, 0.97)
            .authority()
            .with_attr_coverage(0.83),
    );
    sources.push(
        SourceSpec::independent("NASDAQ", 0.92, 0.98)
            .authority()
            .with_attr_coverage(0.86),
    );
    sources.push(
        SourceSpec::independent("MSN Money", 0.91, 0.98)
            .authority()
            .with_attr_coverage(0.91),
    );
    sources.push(
        SourceSpec::independent("Bloomberg", 0.83, 0.96)
            .authority()
            .with_attr_coverage(0.83),
    );

    // The source that stopped refreshing its data (paper: StockSmart,
    // accuracy .06). Its claims are dominated by stale and plainly wrong
    // values; see DESIGN.md for the approximation note.
    sources.push(
        SourceSpec::independent("StockSmart", 0.10, 0.95)
            .with_attr_coverage(0.75)
            .with_staleness_days(30),
    );

    // Copy group 1 (Table 5): Financial Content and 10 sites deriving their
    // data from it — 11 sources, accuracy ≈ .92, identical schema and data.
    let financial_content_index = sources.len();
    sources.push(
        SourceSpec::independent("Financial Content", 0.92, 0.99).with_attr_coverage(0.80),
    );
    for i in 0..10 {
        sources.push(
            SourceSpec::independent(format!("FC Mirror {}", i + 1), 0.92, 0.99)
                .with_attr_coverage(0.80)
                .copying(financial_content_index, 0.99),
        );
    }

    // Copy group 2 (Table 5): two merged websites, accuracy ≈ .75.
    let merged_index = sources.len();
    sources.push(SourceSpec::independent("MergedQuotes A", 0.75, 0.96).with_attr_coverage(0.70));
    sources.push(
        SourceSpec::independent("MergedQuotes B", 0.75, 0.96)
            .with_attr_coverage(0.70)
            .copying(merged_index, 0.995),
    );

    // Remaining independent sources: accuracies spread over the paper's
    // observed range (.54 – .97, mean ≈ .86), with varying attribute coverage
    // (driving the Zipf-like item redundancy) and occasional rounding habits.
    let remaining = STOCK_SOURCES - sources.len();
    for i in 0..remaining {
        let frac = i as f64 / (remaining.saturating_sub(1).max(1)) as f64;
        // Accuracy sweeps from .97 down to .54, denser near the top so the
        // mean lands near .86.
        let accuracy = 0.97 - 0.43 * frac * frac;
        let object_coverage = 0.92 + 0.08 * ((i * 7) % 10) as f64 / 10.0;
        let attr_coverage = 0.40 + 0.60 * (((i * 13) % 17) as f64 / 16.0);
        let rounding = if i % 6 == 5 { 2e-3 } else { 0.0 };
        sources.push(
            SourceSpec::independent(format!("StockSite {:02}", i + 1), accuracy, object_coverage)
                .with_attr_coverage(attr_coverage)
                .with_rounding(rounding),
        );
    }

    DomainConfig {
        domain: "stock".to_string(),
        seed,
        num_objects: STOCK_OBJECTS,
        num_days: STOCK_DAYS,
        attributes: stock_attributes(),
        total_global_attributes: 153,
        total_local_attributes: 333,
        sources,
        error_mix: ErrorMix::stock(),
        gold: GoldSpec {
            mode: GoldMode::AuthorityVoting,
            num_gold_objects: 200,
            min_providers: 3,
        },
        ambiguous_object_fraction: 0.01,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_parameters() {
        let cfg = stock_config(1);
        assert_eq!(cfg.num_sources(), STOCK_SOURCES);
        assert_eq!(cfg.num_objects, STOCK_OBJECTS);
        assert_eq!(cfg.num_days, STOCK_DAYS);
        assert_eq!(cfg.num_attributes(), 16);
        assert_eq!(cfg.total_global_attributes, 153);
        assert_eq!(cfg.gold.num_gold_objects, 200);
    }

    #[test]
    fn authority_and_copy_structure() {
        let cfg = stock_config(1);
        let authorities = cfg.sources.iter().filter(|s| s.authority).count();
        assert_eq!(authorities, 5);
        let copiers = cfg.sources.iter().filter(|s| s.copies_from.is_some()).count();
        // 10 Financial Content mirrors + 1 merged copier.
        assert_eq!(copiers, 11);
    }

    #[test]
    fn accuracy_band_matches_paper() {
        let cfg = stock_config(1);
        let accuracies: Vec<f64> = cfg
            .sources
            .iter()
            .filter(|s| s.name != "StockSmart")
            .map(|s| s.accuracy)
            .collect();
        let mean = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
        assert!(mean > 0.82 && mean < 0.92, "mean accuracy {mean}");
        assert!(accuracies.iter().cloned().fold(f64::INFINITY, f64::min) >= 0.54);
        assert!(accuracies.iter().cloned().fold(0.0, f64::max) <= 0.97);
    }

    #[test]
    fn statistical_attributes_are_marked() {
        let attrs = stock_attributes();
        let statistical = attrs.iter().filter(|a| a.statistical).count();
        assert!(statistical >= 8);
        assert!(attrs.iter().any(|a| a.name == "Volume" && a.statistical));
        assert!(attrs.iter().any(|a| a.name == "Last price" && !a.statistical));
    }
}
