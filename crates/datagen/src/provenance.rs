//! Claim provenance: why a generated claim is correct or wrong.
//!
//! The paper manually inspects samples of inconsistent data items to attribute
//! them to reasons (Figure 6) and samples of fusion errors (Figure 11). The
//! generator records the ground-truth reason behind every erroneous claim so
//! those figures can be reproduced without manual inspection, and so tests
//! can assert the generated reason mix matches the configured one.

use datamodel::{ItemId, SourceId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The reason a claim deviates from the truth (Figure 6's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InconsistencyReason {
    /// The source applies a different definition of the attribute.
    SemanticsAmbiguity,
    /// The source interprets the object differently (e.g. a terminated stock
    /// symbol re-mapped to another company).
    InstanceAmbiguity,
    /// The value was not refreshed and reflects an earlier day.
    OutOfDate,
    /// The value is off by a unit conversion factor (e.g. millions/billions).
    UnitError,
    /// No identifiable cause.
    PureError,
}

impl InconsistencyReason {
    /// All reasons, in the order Figure 6 lists them.
    pub const ALL: [InconsistencyReason; 5] = [
        InconsistencyReason::SemanticsAmbiguity,
        InconsistencyReason::InstanceAmbiguity,
        InconsistencyReason::OutOfDate,
        InconsistencyReason::UnitError,
        InconsistencyReason::PureError,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            InconsistencyReason::SemanticsAmbiguity => "semantics ambiguity",
            InconsistencyReason::InstanceAmbiguity => "instance ambiguity",
            InconsistencyReason::OutOfDate => "out-of-date",
            InconsistencyReason::UnitError => "unit error",
            InconsistencyReason::PureError => "pure error",
        }
    }
}

/// Whether a claim matches the truth, and if not, why.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClaimOutcome {
    /// The claim matches the day's truth (within tolerance, pre-formatting).
    Correct,
    /// The claim deviates from the truth for the recorded reason.
    Error(InconsistencyReason),
}

impl ClaimOutcome {
    /// Whether the claim is correct.
    pub fn is_correct(&self) -> bool {
        matches!(self, ClaimOutcome::Correct)
    }

    /// The error reason, if any.
    pub fn reason(&self) -> Option<InconsistencyReason> {
        match self {
            ClaimOutcome::Correct => None,
            ClaimOutcome::Error(r) => Some(*r),
        }
    }
}

/// Provenance of one claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaimProvenance {
    /// Outcome (correct / error with reason).
    pub outcome: ClaimOutcome,
    /// Whether the claim was copied from another source rather than produced
    /// independently.
    pub copied: bool,
}

/// Provenance of every claim of one collection day.
#[derive(Debug, Clone, Default)]
pub struct DayProvenance {
    claims: HashMap<(ItemId, SourceId), ClaimProvenance>,
}

impl DayProvenance {
    /// Create an empty provenance record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the provenance of one claim.
    pub fn record(&mut self, item: ItemId, source: SourceId, provenance: ClaimProvenance) {
        self.claims.insert((item, source), provenance);
    }

    /// Look up the provenance of one claim.
    pub fn get(&self, item: ItemId, source: SourceId) -> Option<ClaimProvenance> {
        self.claims.get(&(item, source)).copied()
    }

    /// Number of recorded claims.
    pub fn len(&self) -> usize {
        self.claims.len()
    }

    /// Whether no claims are recorded.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// Iterate over all recorded claims.
    pub fn iter(&self) -> impl Iterator<Item = (&(ItemId, SourceId), &ClaimProvenance)> {
        self.claims.iter()
    }

    /// Histogram of error reasons over all erroneous claims.
    pub fn reason_histogram(&self) -> HashMap<InconsistencyReason, usize> {
        let mut histogram = HashMap::new();
        for provenance in self.claims.values() {
            if let ClaimOutcome::Error(reason) = provenance.outcome {
                *histogram.entry(reason).or_insert(0) += 1;
            }
        }
        histogram
    }

    /// Histogram of error reasons restricted to the claims on one item.
    pub fn item_reasons(&self, item: ItemId) -> HashMap<InconsistencyReason, usize> {
        let mut histogram = HashMap::new();
        for ((claim_item, _), provenance) in &self.claims {
            if *claim_item == item {
                if let ClaimOutcome::Error(reason) = provenance.outcome {
                    *histogram.entry(reason).or_insert(0) += 1;
                }
            }
        }
        histogram
    }

    /// Fraction of claims that were copied.
    pub fn copied_fraction(&self) -> f64 {
        if self.claims.is_empty() {
            return 0.0;
        }
        let copied = self.claims.values().filter(|p| p.copied).count();
        copied as f64 / self.claims.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, ObjectId};

    fn item(o: u32, a: u16) -> ItemId {
        ItemId::new(ObjectId(o), AttrId(a))
    }

    #[test]
    fn record_and_histogram() {
        let mut prov = DayProvenance::new();
        assert!(prov.is_empty());
        prov.record(
            item(0, 0),
            SourceId(0),
            ClaimProvenance {
                outcome: ClaimOutcome::Correct,
                copied: false,
            },
        );
        prov.record(
            item(0, 0),
            SourceId(1),
            ClaimProvenance {
                outcome: ClaimOutcome::Error(InconsistencyReason::OutOfDate),
                copied: false,
            },
        );
        prov.record(
            item(1, 0),
            SourceId(1),
            ClaimProvenance {
                outcome: ClaimOutcome::Error(InconsistencyReason::OutOfDate),
                copied: true,
            },
        );
        assert_eq!(prov.len(), 3);
        let hist = prov.reason_histogram();
        assert_eq!(hist.get(&InconsistencyReason::OutOfDate), Some(&2));
        assert_eq!(hist.get(&InconsistencyReason::PureError), None);
        assert_eq!(prov.item_reasons(item(0, 0)).len(), 1);
        assert!((prov.copied_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(prov.get(item(0, 0), SourceId(1)).unwrap().outcome.reason()
            == Some(InconsistencyReason::OutOfDate));
        assert!(prov.get(item(0, 0), SourceId(0)).unwrap().outcome.is_correct());
        assert!(prov.get(item(9, 9), SourceId(9)).is_none());
    }

    #[test]
    fn reason_labels_are_distinct() {
        let labels: std::collections::HashSet<&str> = InconsistencyReason::ALL
            .iter()
            .map(|r| r.label())
            .collect();
        assert_eq!(labels.len(), InconsistencyReason::ALL.len());
    }
}
