//! Generator configuration: domains, attributes, sources, and error mixes.

use datamodel::AttrKind;
use serde::{Deserialize, Serialize};

/// How the paper-style gold standard for a generated domain is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GoldMode {
    /// Vote over the authority sources, keeping items covered by at least
    /// `min_providers` of them (the paper's Stock procedure).
    AuthorityVoting,
    /// Trust the values provided by the designated gold-provider sources
    /// (the paper's Flight procedure, which trusts the airline websites).
    TrustedSources,
}

/// Gold-standard construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GoldSpec {
    /// Construction mode.
    pub mode: GoldMode,
    /// Number of objects sampled into the gold standard (the paper uses 200
    /// stocks and 100 flights).
    pub num_gold_objects: u32,
    /// Minimum number of authority providers for an item to enter the gold
    /// standard under [`GoldMode::AuthorityVoting`].
    pub min_providers: usize,
}

/// Relative shares of the inconsistency reasons a domain exhibits (Figure 6 of
/// the paper). The shares apply to the *erroneous* fraction of a source's
/// claims; they need not sum exactly to one — they are renormalized.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ErrorMix {
    /// Semantics ambiguity (different definition of a statistical attribute,
    /// takeoff vs. gate-departure time, ...).
    pub semantics: f64,
    /// Instance ambiguity (value of a different object, e.g. a re-mapped
    /// terminated stock symbol).
    pub instance: f64,
    /// Out-of-date data.
    pub out_of_date: f64,
    /// Unit errors (e.g. 76M reported as 76B).
    pub unit: f64,
    /// Pure errors with no identifiable cause.
    pub pure: f64,
}

impl ErrorMix {
    /// The Stock-domain mix of Figure 6: 46% semantics, 6% instance, 34%
    /// out-of-date, 3% unit, 11% pure.
    pub fn stock() -> Self {
        Self {
            semantics: 0.46,
            instance: 0.06,
            out_of_date: 0.34,
            unit: 0.03,
            pure: 0.11,
        }
    }

    /// The Flight-domain mix of Figure 6: 33% semantics, 11% out-of-date,
    /// 56% pure.
    pub fn flight() -> Self {
        Self {
            semantics: 0.33,
            instance: 0.0,
            out_of_date: 0.11,
            unit: 0.0,
            pure: 0.56,
        }
    }

    /// Sum of the raw shares.
    pub fn total(&self) -> f64 {
        self.semantics + self.instance + self.out_of_date + self.unit + self.pure
    }
}

/// Specification of one considered attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttrSpec {
    /// Attribute name (e.g. "Last price").
    pub name: String,
    /// Kind (numeric with a typical scale, time, or categorical).
    pub kind: AttrKind,
    /// Whether the attribute is statistical (more prone to semantics
    /// ambiguity) rather than real-time.
    pub statistical: bool,
    /// Multiplicative factor applied to the truth to produce the
    /// "alternative semantics" value of a numeric attribute (e.g. a source
    /// reporting a yearly instead of quarterly dividend). Time attributes use
    /// a fixed offset instead; ignored for categorical attributes.
    pub variant_factor: f64,
    /// Fraction of (typical-accuracy) sources that adopt the alternative
    /// semantics for this attribute. Ambiguity is a *shared* phenomenon: when
    /// the adoption rate approaches one half, the variant value can become
    /// the dominant value of the item, which is what drags the precision of
    /// dominant values below 1 in the paper (Section 3.2). Scaled per source
    /// by its semantics error budget, so authoritative sources adopt variants
    /// rarely.
    pub variant_adoption: f64,
    /// Relative day-to-day drift of the true value (0.0 = static).
    pub drift: f64,
}

/// A mid-stream quality flip: from `day` onwards the source's *stochastic*
/// error modes (out-of-date, unit, pure) are re-budgeted for `accuracy_after`
/// instead of the source's configured accuracy. Structural error modes
/// (semantics/instance ambiguity) are decided once per run from the original
/// accuracy — a source does not change which attribute definitions it uses
/// mid-stream, it just gets sloppy (or careful).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityFlip {
    /// First day the flipped accuracy applies to.
    pub day: u32,
    /// Target accuracy from `day` onwards.
    pub accuracy_after: f64,
}

/// Specification of one source's behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Human-readable name.
    pub name: String,
    /// Whether the source participates in authority-voting gold standards
    /// and in the Table-4 "authoritative sources" report.
    pub authority: bool,
    /// Whether the source's claims are trusted directly for the gold standard
    /// under [`GoldMode::TrustedSources`] (the airline websites).
    pub gold_provider: bool,
    /// Fraction of objects the source covers.
    pub object_coverage: f64,
    /// Optional deterministic object partition `(modulus, remainder)`: the
    /// source covers only objects whose id satisfies
    /// `id % modulus == remainder` (airline websites cover only their own
    /// flights). `object_coverage` is applied within the partition.
    pub object_stride: Option<(u32, u32)>,
    /// Fraction of the considered attributes the source provides.
    pub attr_coverage: f64,
    /// Target accuracy: probability that a claim on a covered item matches
    /// the truth. The complement is split across error categories according
    /// to the domain [`ErrorMix`].
    pub accuracy: f64,
    /// Rounding granularity the source applies to numeric values, expressed
    /// as a fraction of the attribute scale (e.g. `1e-2` rounds a volume of
    /// scale 5e6 to the nearest 50 000). `0.0` means exact values.
    pub relative_rounding: f64,
    /// Index (into the config's source list) of the source this one copies
    /// from, for planted copy groups.
    pub copies_from: Option<usize>,
    /// Probability of copying each of the original's claims verbatim (the
    /// rest are dropped); only meaningful for copiers.
    pub copy_fidelity: f64,
    /// Day after which the source stops refreshing its data entirely (the
    /// StockSmart phenomenon); `None` means the source stays live.
    pub dead_after_day: Option<u32>,
    /// How many days out of date the source's stale claims are.
    pub staleness_days: u32,
    /// Optional mid-stream quality flip (scenario stress knob).
    pub quality_flip: Option<QualityFlip>,
    /// Per-day multiplicative growth of the rounding granularity (scenario
    /// format-drift knob): on day `d` the source rounds numeric values to
    /// `relative_rounding * rounding_drift^d` of the attribute scale. `1.0`
    /// (the default) means the format never drifts.
    pub rounding_drift: f64,
}

impl SourceSpec {
    /// A well-behaved independent source with the given name, accuracy, and
    /// coverage; other knobs take neutral defaults.
    pub fn independent(name: impl Into<String>, accuracy: f64, object_coverage: f64) -> Self {
        Self {
            name: name.into(),
            authority: false,
            gold_provider: false,
            object_coverage,
            object_stride: None,
            attr_coverage: 1.0,
            accuracy,
            relative_rounding: 0.0,
            copies_from: None,
            copy_fidelity: 1.0,
            dead_after_day: None,
            staleness_days: 1,
            quality_flip: None,
            rounding_drift: 1.0,
        }
    }

    /// Mark as an authority source (used by gold-standard voting and Table 4).
    pub fn authority(mut self) -> Self {
        self.authority = true;
        self
    }

    /// Mark as a gold-provider source (trusted directly for the gold standard).
    pub fn gold_provider(mut self) -> Self {
        self.gold_provider = true;
        self
    }

    /// Set the fraction of considered attributes this source provides.
    pub fn with_attr_coverage(mut self, attr_coverage: f64) -> Self {
        self.attr_coverage = attr_coverage;
        self
    }

    /// Set the rounding habit (fraction of the attribute scale).
    pub fn with_rounding(mut self, relative_rounding: f64) -> Self {
        self.relative_rounding = relative_rounding;
        self
    }

    /// Make this source a copier of the source at `original_index`.
    pub fn copying(mut self, original_index: usize, fidelity: f64) -> Self {
        self.copies_from = Some(original_index);
        self.copy_fidelity = fidelity;
        self
    }

    /// Restrict the source to objects with `id % modulus == remainder`.
    pub fn with_object_stride(mut self, modulus: u32, remainder: u32) -> Self {
        self.object_stride = Some((modulus, remainder));
        self
    }

    /// Make the source stop refreshing after `day`.
    pub fn dead_after(mut self, day: u32) -> Self {
        self.dead_after_day = Some(day);
        self
    }

    /// Set how stale the source's out-of-date claims are.
    pub fn with_staleness_days(mut self, days: u32) -> Self {
        self.staleness_days = days;
        self
    }

    /// Flip the source's stochastic error budget to `accuracy_after` from
    /// `day` onwards (scenario quality-flip knob).
    pub fn flipping_quality(mut self, day: u32, accuracy_after: f64) -> Self {
        self.quality_flip = Some(QualityFlip {
            day,
            accuracy_after,
        });
        self
    }

    /// Make the source's rounding granularity grow by `growth`× per day
    /// (scenario format-drift knob).
    pub fn with_rounding_drift(mut self, growth: f64) -> Self {
        self.rounding_drift = growth.max(0.0);
        self
    }
}

/// Full configuration of a generated domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainConfig {
    /// Domain name ("stock", "flight").
    pub domain: String,
    /// Master seed; every run with the same config is bit-identical.
    pub seed: u64,
    /// Number of objects (stock-day symbols / flight-day flights).
    pub num_objects: u32,
    /// Number of collection days.
    pub num_days: u32,
    /// The considered attributes (the 16 stock / 6 flight attributes the
    /// paper analyses).
    pub attributes: Vec<AttrSpec>,
    /// Total number of *global* attributes in the domain, for the Figure-1
    /// coverage distribution (153 for Stock, 15 for Flight). Values are only
    /// materialized for the considered attributes.
    pub total_global_attributes: u32,
    /// Total number of *local* attributes before schema matching (333 / 43).
    pub total_local_attributes: u32,
    /// Source behaviour specifications.
    pub sources: Vec<SourceSpec>,
    /// Error-reason mix for the domain (Figure 6).
    pub error_mix: ErrorMix,
    /// Gold-standard construction parameters.
    pub gold: GoldSpec,
    /// Fraction of objects affected by instance ambiguity (terminated stock
    /// symbols re-mapped by some sources).
    pub ambiguous_object_fraction: f64,
}

impl DomainConfig {
    /// Scale the configuration down (or up) for fast tests and benches:
    /// multiplies the number of objects and days by `object_factor` /
    /// `day_factor` (at least 1 each) while keeping the source population
    /// and behaviour identical.
    pub fn scaled(mut self, object_factor: f64, day_factor: f64) -> Self {
        self.num_objects = ((self.num_objects as f64 * object_factor).round() as u32).max(1);
        self.num_days = ((self.num_days as f64 * day_factor).round() as u32).max(1);
        self.gold.num_gold_objects = self.gold.num_gold_objects.min(self.num_objects);
        self
    }

    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of considered attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_mix_shares() {
        let stock = ErrorMix::stock();
        assert!((stock.total() - 1.0).abs() < 1e-9);
        let flight = ErrorMix::flight();
        assert!((flight.total() - 1.0).abs() < 1e-9);
        assert!(flight.pure > stock.pure);
    }

    #[test]
    fn source_spec_builders() {
        let s = SourceSpec::independent("Orbitz", 0.98, 0.87)
            .authority()
            .with_attr_coverage(0.9)
            .with_rounding(1e-3)
            .with_staleness_days(2);
        assert!(s.authority);
        assert_eq!(s.attr_coverage, 0.9);
        assert_eq!(s.relative_rounding, 1e-3);
        assert_eq!(s.staleness_days, 2);
        assert!(s.copies_from.is_none());

        let copier = SourceSpec::independent("Mirror", 0.9, 0.5).copying(3, 0.99);
        assert_eq!(copier.copies_from, Some(3));
        assert_eq!(copier.copy_fidelity, 0.99);

        let dead = SourceSpec::independent("StockSmart", 0.9, 1.0).dead_after(0);
        assert_eq!(dead.dead_after_day, Some(0));

        let flipper = SourceSpec::independent("Flipper", 0.95, 0.9).flipping_quality(5, 0.4);
        assert_eq!(
            flipper.quality_flip,
            Some(QualityFlip {
                day: 5,
                accuracy_after: 0.4
            })
        );

        let drifter = SourceSpec::independent("Drifter", 0.9, 0.9)
            .with_rounding(1e-3)
            .with_rounding_drift(2.0);
        assert_eq!(drifter.rounding_drift, 2.0);
        // Neutral defaults: no flip, no format drift.
        let plain = SourceSpec::independent("Plain", 0.9, 0.9);
        assert!(plain.quality_flip.is_none());
        assert_eq!(plain.rounding_drift, 1.0);
    }

    #[test]
    fn scaling_preserves_sources_and_clamps() {
        let cfg = crate::stock::stock_config(7).scaled(0.01, 0.2);
        assert_eq!(cfg.num_sources(), 55);
        assert!(cfg.num_objects >= 1);
        assert!(cfg.gold.num_gold_objects <= cfg.num_objects);
    }
}
