//! Adversarial & heavy-tail scenario layer.
//!
//! The paper's two regimes (Stock, Flight) are well-behaved: copiers form
//! flat star groups, coverage is near-uniform, and source quality is constant
//! over the collection window. The method rankings only truly diverge under
//! hostile data, so this module layers composable *stress knobs* on top of
//! the existing [`DomainConfig`]/[`crate::generate`] pipeline:
//!
//! * **Copier rings** — a clique laundering a wrong value through mutual
//!   copying: a low-accuracy ring head plus a chain of high-fidelity copiers
//!   (copier-of-copier provenance, resolved transitively by
//!   `DomainSchema::copy_groups`).
//! * **Zipf coverage** — object coverage of the non-authority sources decays
//!   as `rank^-s`, producing the heavy-tail redundancy distribution real
//!   deep-web domains exhibit.
//! * **Quality flips** — sources whose stochastic error budget is re-targeted
//!   mid-stream (see [`crate::config::QualityFlip`]).
//! * **Format drift** — per-day multiplicative growth of a source's rounding
//!   granularity, so values drift in *format* while staying numerically close.
//! * **Scale / long rows** — an object-count multiplier (`--scale 10` reaches
//!   hundreds of thousands of items per day) plus extra high-coverage
//!   sources that lengthen every item's provider row.
//!
//! Every named scenario ([`by_name`]) is deterministic in its seed and doubles
//! as a regression suite: the `exp_scenarios` binary renders a golden-metrics
//! table per scenario (per-method precision, copy-detection hit/false-positive
//! rates against the generator's planted copy edges) that is checked in and
//! asserted bit-for-bit by `tests/scenarios.rs`.

use crate::config::{DomainConfig, SourceSpec};
use crate::generator::{generate, GeneratedDomain};
use crate::stock::stock_config;
use datamodel::{ItemId, Snapshot, SnapshotBuilder, SourceId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Seed used by every checked-in golden scenario world.
pub const GOLDEN_SEED: u64 = 2012;

/// Names of the built-in scenarios, in golden-suite order.
pub const SCENARIO_NAMES: [&str; 6] = [
    "copier_ring",
    "zipf_coverage",
    "quality_flip",
    "format_drift",
    "scale10_capacity",
    "kitchen_sink",
];

/// Copier-ring knob: `size` sources appended to the base population — one
/// independent low-accuracy head plus `size - 1` chained copiers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingKnob {
    /// Total ring size (head + copiers); at least 2.
    pub size: u32,
    /// Accuracy of the ring head (low: the ring launders *wrong* values).
    pub head_accuracy: f64,
    /// Copy fidelity along the chain.
    pub fidelity: f64,
}

/// Quality-flip knob: the last `count` plain independent sources of the base
/// population flip to `accuracy_after` from `day` onwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlipKnob {
    /// Number of sources to flip.
    pub count: u32,
    /// First day the flipped accuracy applies to.
    pub day: u32,
    /// Accuracy from the flip day onwards.
    pub accuracy_after: f64,
}

/// Format-drift knob: the last `count` plain independent sources round to
/// `base_rounding` of the attribute scale, growing `growth`× per day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftKnob {
    /// Number of drifting sources.
    pub count: u32,
    /// Day-0 rounding granularity (fraction of the attribute scale).
    pub base_rounding: f64,
    /// Per-day multiplicative growth of the granularity.
    pub growth: f64,
}

/// A composable stress scenario over the Stock base population. Knobs stack:
/// a single scenario may combine a ring, Zipf coverage, flips, drift, and a
/// scale axis. [`Scenario::build`] materializes the seeded world together
/// with ground-truth annotations for every active knob.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used for golden-table file names).
    pub name: String,
    /// Master seed (golden suites use [`GOLDEN_SEED`]).
    pub seed: u64,
    /// Object-count multiplier over the paper-scale base (1.0 ≙ 1000
    /// objects ≙ 16 000 items/day; 10.0 reaches 160 000 items/day).
    pub scale: f64,
    /// Number of collection days.
    pub num_days: u32,
    /// Copier-ring knob.
    pub ring: Option<RingKnob>,
    /// Zipf-coverage exponent (non-authority coverage decays as `rank^-s`).
    pub zipf_exponent: Option<f64>,
    /// Quality-flip knob.
    pub flips: Option<FlipKnob>,
    /// Format-drift knob.
    pub drift: Option<DriftKnob>,
    /// Extra independent high-coverage sources appended to lengthen every
    /// item's provider row (the long-row axis of the SIMD gate).
    pub extra_sources: u32,
}

/// A materialized scenario: the generated domain plus the ground-truth
/// annotations the regression metrics compare against.
#[derive(Debug, Clone)]
pub struct ScenarioWorld {
    /// The scenario this world was built from.
    pub scenario: Scenario,
    /// The generated domain (collection, provenance, copy groups, world).
    pub domain: GeneratedDomain,
    /// Every unordered source pair related by planted copying (all pairs
    /// within each transitive copy group) — the copy-detection ground truth.
    pub true_edges: Vec<(SourceId, SourceId)>,
    /// Ring members (head first), when a ring knob is active.
    pub ring_sources: Vec<SourceId>,
    /// Quality-flipped sources, when a flip knob is active.
    pub flipped_sources: Vec<SourceId>,
    /// Format-drifting sources, when a drift knob is active.
    pub drifting_sources: Vec<SourceId>,
    /// Non-authority sources in Zipf rank order (rank 0 = highest coverage),
    /// when the Zipf knob is active.
    pub zipf_ranked: Vec<SourceId>,
}

impl Scenario {
    /// A neutral scenario over the Stock base population: no knobs, golden
    /// seed, small scale, three days.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            seed: GOLDEN_SEED,
            scale: 0.06,
            num_days: 3,
            ring: None,
            zipf_exponent: None,
            flips: None,
            drift: None,
            extra_sources: 0,
        }
    }

    /// Override the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the object-count multiplier (1.0 ≙ the paper's 1000 objects).
    pub fn scaled_to(mut self, scale: f64) -> Self {
        self.scale = scale.max(1e-3);
        self
    }

    /// Set the number of collection days.
    pub fn over_days(mut self, days: u32) -> Self {
        self.num_days = days.max(1);
        self
    }

    /// Add a copier ring of `size` sources laundering the head's values.
    pub fn with_copier_ring(mut self, size: u32, head_accuracy: f64, fidelity: f64) -> Self {
        self.ring = Some(RingKnob {
            size: size.max(2),
            head_accuracy,
            fidelity,
        });
        self
    }

    /// Decay non-authority object coverage as `rank^-exponent`.
    pub fn with_zipf_coverage(mut self, exponent: f64) -> Self {
        self.zipf_exponent = Some(exponent.max(0.0));
        self
    }

    /// Flip the last `count` plain independent sources to `accuracy_after`
    /// from `day` onwards.
    pub fn with_quality_flips(mut self, count: u32, day: u32, accuracy_after: f64) -> Self {
        self.flips = Some(FlipKnob {
            count,
            day,
            accuracy_after,
        });
        self
    }

    /// Make the last `count` plain independent sources round at
    /// `base_rounding`, growing `growth`× per day.
    pub fn with_format_drift(mut self, count: u32, base_rounding: f64, growth: f64) -> Self {
        self.drift = Some(DriftKnob {
            count,
            base_rounding,
            growth,
        });
        self
    }

    /// Append `count` extra high-coverage independent sources (long rows).
    pub fn with_extra_sources(mut self, count: u32) -> Self {
        self.extra_sources = count;
        self
    }

    /// Materialize the scenario's [`DomainConfig`] (without generating).
    pub fn config(&self) -> DomainConfig {
        self.config_and_annotations().0
    }

    /// Generate the scenario world.
    pub fn build(&self) -> ScenarioWorld {
        let (config, ann) = self.config_and_annotations();
        let domain = generate(&config);
        let true_edges = edges_of_groups(&domain.copy_groups);
        ScenarioWorld {
            scenario: self.clone(),
            domain,
            true_edges,
            ring_sources: ann.ring,
            flipped_sources: ann.flipped,
            drifting_sources: ann.drifting,
            zipf_ranked: ann.zipf_ranked,
        }
    }

    fn config_and_annotations(&self) -> (DomainConfig, Annotations) {
        let mut config = stock_config(self.seed).scaled(self.scale, 1.0);
        config.domain = format!("scenario:{}", self.name);
        config.num_days = self.num_days;
        let mut ann = Annotations::default();

        // Plain independent sources (no authority/copier/dead/gold role) are
        // the candidate pool for the flip and drift knobs; picked from the
        // back of the population (the "StockSite NN" tail) so the knobs never
        // collide with the base copy groups or the gold standard.
        let plain: Vec<usize> = config
            .sources
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.authority
                    && !s.gold_provider
                    && s.copies_from.is_none()
                    && s.dead_after_day.is_none()
            })
            .map(|(i, _)| i)
            .collect();

        if let Some(flip) = self.flips {
            let count = (flip.count as usize).min(plain.len());
            for &i in plain.iter().rev().take(count) {
                config.sources[i] = config.sources[i]
                    .clone()
                    .flipping_quality(flip.day, flip.accuracy_after);
                ann.flipped.push(SourceId(i as u32));
            }
            ann.flipped.reverse();
        }

        if let Some(drift) = self.drift {
            // Drift marks from the front of the plain pool, so a scenario
            // combining flips and drift stresses disjoint sources.
            let count = (drift.count as usize).min(plain.len());
            for &i in plain.iter().take(count) {
                config.sources[i] = config.sources[i]
                    .clone()
                    .with_rounding(drift.base_rounding)
                    .with_rounding_drift(drift.growth);
                ann.drifting.push(SourceId(i as u32));
            }
        }

        if let Some(exponent) = self.zipf_exponent {
            // Authority sources keep their coverage (they feed the voting
            // gold standard); everything else decays by rank. Copiers'
            // object coverage is inert (they mirror their original's items),
            // but ranking them uniformly keeps the knob simple to reason
            // about.
            let mut rank = 0usize;
            for (i, spec) in config.sources.iter_mut().enumerate() {
                if spec.authority {
                    continue;
                }
                spec.object_coverage =
                    (1.0 / ((rank + 1) as f64).powf(exponent)).clamp(0.02, 1.0);
                ann.zipf_ranked.push(SourceId(i as u32));
                rank += 1;
            }
        }

        if let Some(ring) = self.ring {
            let head_index = config.sources.len();
            config.sources.push(
                SourceSpec::independent("Ring Head", ring.head_accuracy, 0.97)
                    .with_attr_coverage(1.0),
            );
            ann.ring.push(SourceId(head_index as u32));
            for m in 1..ring.size as usize {
                let i = config.sources.len();
                config.sources.push(
                    SourceSpec::independent(format!("Ring Member {m}"), ring.head_accuracy, 0.97)
                        .with_attr_coverage(1.0)
                        .copying(i - 1, ring.fidelity),
                );
                ann.ring.push(SourceId(i as u32));
            }
        }

        for e in 0..self.extra_sources {
            let accuracy = 0.95 - 0.25 * (e % 7) as f64 / 6.0;
            config.sources.push(
                SourceSpec::independent(format!("LongRow {:02}", e + 1), accuracy, 0.98)
                    .with_attr_coverage(0.95),
            );
        }

        (config, ann)
    }
}

#[derive(Default)]
struct Annotations {
    ring: Vec<SourceId>,
    flipped: Vec<SourceId>,
    drifting: Vec<SourceId>,
    zipf_ranked: Vec<SourceId>,
}

/// A day-over-day mutation stream with a planted, known dirty fraction —
/// the workload the delta fusion engine is benchmarked on.
///
/// `days[0]` is the base snapshot; each successor perturbs exactly
/// `⌈dirty_fraction × num_items⌉` numeric items of its predecessor (one
/// changed claim per item) and is rebuilt with the base's tolerance context
/// pinned ([`SnapshotBuilder::build_with_tolerance`]), so the observed
/// [`datamodel::SnapshotDelta`] between consecutive days equals the planted
/// dirty set exactly — no tolerance recomputation smears the dirt across the
/// whole attribute.
#[derive(Debug, Clone)]
pub struct MutationStream {
    /// The snapshots: the base first, then the mutated successors.
    pub days: Vec<Snapshot>,
    /// Planted dirty items per transition (`days[i]` → `days[i + 1]`).
    pub dirty_sets: Vec<BTreeSet<ItemId>>,
    /// The requested per-transition dirty fraction.
    pub dirty_fraction: f64,
}

/// Build a deterministic day-over-day mutation stream over `base`: `num_days`
/// successor snapshots, each perturbing `⌈dirty_fraction × num_items⌉`
/// numeric items of the previous day (one claim per item gets its value
/// nudged, so the item and exactly one of its sources go dirty).
pub fn mutation_stream(
    base: &Snapshot,
    num_days: usize,
    dirty_fraction: f64,
    seed: u64,
) -> MutationStream {
    let dirty_fraction = dirty_fraction.clamp(0.0, 1.0);
    // Items with at least one plain-numeric claim are eligible for
    // perturbation; the item set is constant along the stream, so
    // eligibility is computed once from the base.
    let eligible: Vec<ItemId> = base
        .items()
        .filter(|(_, obs)| obs.iter().any(|o| matches!(o.value, Value::Number { .. })))
        .map(|(item, _)| *item)
        .collect();
    let count = ((dirty_fraction * base.num_items() as f64).ceil() as usize).min(eligible.len());

    let mut days = vec![base.clone()];
    let mut dirty_sets = Vec::with_capacity(num_days);
    for d in 0..num_days {
        let prev = days.last().unwrap();
        let mut rng = StdRng::seed_from_u64(
            seed.wrapping_add((d as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        // Partial Fisher-Yates: the first `count` slots are a uniform sample
        // of the eligible items, deterministic in (seed, day).
        let mut pool: Vec<usize> = (0..eligible.len()).collect();
        for i in 0..count {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let planted: BTreeSet<ItemId> = pool[..count].iter().map(|&i| eligible[i]).collect();

        let mut builder = SnapshotBuilder::new(prev.day() + 1);
        for (item, obs) in prev.items() {
            if planted.contains(item) {
                // Nudge one numeric claim of the item; every other claim is
                // carried verbatim so exactly one source goes dirty.
                let numeric: Vec<usize> = obs
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| matches!(o.value, Value::Number { .. }))
                    .map(|(i, _)| i)
                    .collect();
                let pick = numeric[rng.gen_range(0..numeric.len())];
                for (i, o) in obs.iter().enumerate() {
                    let value = if i == pick {
                        let v = o.value.as_f64().expect("picked claim is numeric");
                        let mut nudged = v * 1.1 + 1.0;
                        if nudged == v {
                            nudged = v + 1.0;
                        }
                        Value::number(nudged)
                    } else {
                        o.value.clone()
                    };
                    builder.add(o.source, item.object, item.attr, value);
                }
            } else {
                for o in obs {
                    builder.add(o.source, item.object, item.attr, o.value.clone());
                }
            }
        }
        days.push(builder.build_with_tolerance(base.schema_arc(), base.tolerance().clone()));
        dirty_sets.push(planted);
    }

    MutationStream {
        days,
        dirty_sets,
        dirty_fraction,
    }
}

/// All unordered source pairs within each copy group: the ground-truth edge
/// set copy detection is scored against. Pairs are emitted `(low, high)` in
/// ascending order.
pub fn edges_of_groups(groups: &[Vec<SourceId>]) -> Vec<(SourceId, SourceId)> {
    let mut edges = Vec::new();
    for group in groups {
        for (i, &a) in group.iter().enumerate() {
            for &b in &group[i + 1..] {
                edges.push(if a.0 <= b.0 { (a, b) } else { (b, a) });
            }
        }
    }
    edges.sort();
    edges.dedup();
    edges
}

/// The golden-suite instance of a named scenario: fixed seed, small scale.
/// Returns `None` for unknown names; see [`SCENARIO_NAMES`].
pub fn by_name(name: &str) -> Option<Scenario> {
    let scenario = match name {
        // A six-member ring laundering a ~0.30-accuracy head through 0.97
        // fidelity copies — copy detection must catch the whole clique.
        "copier_ring" => Scenario::new(name).with_copier_ring(6, 0.30, 0.97),
        // Heavy-tail coverage: the tail sources see 2% of the objects.
        "zipf_coverage" => Scenario::new(name).with_zipf_coverage(1.1),
        // Eight sources collapse from their configured accuracy to 0.45
        // halfway through a six-day window.
        "quality_flip" => Scenario::new(name)
            .over_days(6)
            .with_quality_flips(8, 3, 0.45),
        // Ten sources whose rounding granularity grows 1.8× per day: values
        // stay close to the truth but drift in format.
        "format_drift" => Scenario::new(name)
            .over_days(4)
            .with_format_drift(10, 1e-3, 1.8),
        // The capacity/long-row axis: golden default stays CI-sized, but the
        // same scenario scaled to 10 reaches ~160k items/day with ~80-source
        // provider rows (the SIMD gate workload).
        "scale10_capacity" => Scenario::new(name)
            .scaled_to(0.1)
            .over_days(2)
            .with_extra_sources(25),
        // Every knob at once: a laundering ring over heavy-tail coverage,
        // mid-stream quality flips, format drift, and long provider rows.
        // The golden default stays CI-sized; `.scaled_to(10.0)` of this same
        // scenario is the million-item intra-day chunking workload the
        // `intra_day` bench and `exp_fig12_efficiency` measure.
        "kitchen_sink" => Scenario::new(name)
            .scaled_to(0.08)
            .over_days(3)
            .with_copier_ring(6, 0.30, 0.97)
            .with_zipf_coverage(0.8)
            .with_quality_flips(6, 2, 0.45)
            .with_format_drift(6, 1e-3, 1.6)
            .with_extra_sources(20),
        _ => return None,
    };
    Some(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_knows_all_names() {
        for name in SCENARIO_NAMES {
            let s = by_name(name).unwrap();
            assert_eq!(s.name, name);
            assert_eq!(s.seed, GOLDEN_SEED);
        }
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn ring_world_annotates_and_chains() {
        let world = by_name("copier_ring").unwrap().build();
        assert_eq!(world.ring_sources.len(), 6);
        let schema = world.domain.reference_snapshot().schema();
        let head = world.ring_sources[0];
        for &member in &world.ring_sources[1..] {
            assert_eq!(schema.copy_root(member), head);
        }
        // The whole ring lands in one transitive copy group.
        let ring_group = world
            .domain
            .copy_groups
            .iter()
            .find(|g| g[0] == head)
            .expect("ring copy group");
        assert_eq!(ring_group.len(), 6);
        // Ground-truth edges include every intra-ring pair.
        let intra_ring = world
            .true_edges
            .iter()
            .filter(|(a, b)| world.ring_sources.contains(a) && world.ring_sources.contains(b))
            .count();
        assert_eq!(intra_ring, 6 * 5 / 2);
    }

    #[test]
    fn zipf_world_coverage_is_monotone_in_rank() {
        let scenario = by_name("zipf_coverage").unwrap();
        let config = scenario.config();
        let world = scenario.build();
        let mut last = f64::INFINITY;
        for &s in &world.zipf_ranked {
            let cov = config.sources[s.index()].object_coverage;
            assert!(cov <= last + 1e-12, "coverage not monotone at {s:?}");
            last = cov;
        }
        assert!(config.sources[world.zipf_ranked[0].index()].object_coverage > 0.9);
        let tail = *world.zipf_ranked.last().unwrap();
        assert!(config.sources[tail.index()].object_coverage < 0.05);
    }

    #[test]
    fn flip_and_drift_mark_disjoint_plain_sources() {
        let world = Scenario::new("combo")
            .over_days(4)
            .with_quality_flips(5, 2, 0.4)
            .with_format_drift(5, 1e-3, 1.5)
            .build();
        assert_eq!(world.flipped_sources.len(), 5);
        assert_eq!(world.drifting_sources.len(), 5);
        for s in &world.flipped_sources {
            assert!(!world.drifting_sources.contains(s));
        }
        let config = world.scenario.config();
        for &s in &world.flipped_sources {
            assert!(config.sources[s.index()].quality_flip.is_some());
        }
        for &s in &world.drifting_sources {
            assert!(config.sources[s.index()].rounding_drift > 1.0);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = by_name("copier_ring").unwrap().build();
        let b = by_name("copier_ring").unwrap().build();
        let snap_a = a.domain.reference_snapshot();
        let snap_b = b.domain.reference_snapshot();
        assert_eq!(snap_a.num_observations(), snap_b.num_observations());
        let item = snap_a.item_ids().next().unwrap();
        assert_eq!(snap_a.observations(item), snap_b.observations(item));
        assert_eq!(a.true_edges, b.true_edges);
    }

    #[test]
    fn kitchen_sink_stacks_every_knob() {
        let world = by_name("kitchen_sink").unwrap().build();
        assert_eq!(world.ring_sources.len(), 6);
        assert_eq!(world.flipped_sources.len(), 6);
        assert_eq!(world.drifting_sources.len(), 6);
        assert!(!world.zipf_ranked.is_empty());
        assert!(!world.true_edges.is_empty());
        // Flip and drift pick disjoint plain sources even with every knob on.
        for s in &world.flipped_sources {
            assert!(!world.drifting_sources.contains(s));
        }
        // The long-row and ring sources sit on top of the base population.
        let base = stock_config(GOLDEN_SEED).num_sources();
        assert_eq!(world.scenario.config().num_sources(), base + 6 + 20);
    }

    #[test]
    fn mutation_stream_plants_exactly_the_observed_delta() {
        let world = Scenario::new("mutation_base").scaled_to(0.04).build();
        let base = world.domain.reference_snapshot();
        let stream = mutation_stream(base, 3, 0.1, 7);
        assert_eq!(stream.days.len(), 4);
        assert_eq!(stream.dirty_sets.len(), 3);
        let expected = (0.1 * base.num_items() as f64).ceil() as usize;
        for (i, planted) in stream.dirty_sets.iter().enumerate() {
            assert_eq!(planted.len(), expected.min(base.num_items()));
            let delta =
                datamodel::SnapshotDelta::between(&stream.days[i], &stream.days[i + 1]);
            // Pinned tolerances: the observed delta is exactly the planted
            // set — one dirty source per dirty item, nothing added/removed.
            assert_eq!(delta.dirty_items(), planted);
            assert!(delta.removed_items().is_empty());
            assert!(delta.added_sources().is_empty());
            assert!(delta.removed_sources().is_empty());
            assert!(delta.dirty_attrs().is_empty());
            assert!(delta.dirty_sources().len() <= planted.len());
            assert!((delta.dirty_fraction() - planted.len() as f64 / base.num_items() as f64)
                .abs()
                < 1e-12);
        }
        // Tolerances stay pinned to the base context along the whole stream.
        for day in &stream.days {
            assert_eq!(
                day.tolerance().tolerance(datamodel::AttrId(0)),
                base.tolerance().tolerance(datamodel::AttrId(0))
            );
        }
    }

    #[test]
    fn mutation_stream_is_deterministic_in_its_seed() {
        let world = Scenario::new("mutation_det").scaled_to(0.03).build();
        let base = world.domain.reference_snapshot();
        let a = mutation_stream(base, 2, 0.05, 11);
        let b = mutation_stream(base, 2, 0.05, 11);
        assert_eq!(a.dirty_sets, b.dirty_sets);
        let probe = *a.dirty_sets[0].iter().next().unwrap();
        assert_eq!(a.days[1].observations(probe), b.days[1].observations(probe));
        // A different seed plants different dirt.
        let c = mutation_stream(base, 2, 0.05, 12);
        assert_ne!(a.dirty_sets, c.dirty_sets);
    }

    #[test]
    fn scale_axis_multiplies_objects_and_rows() {
        let small = by_name("scale10_capacity").unwrap();
        assert_eq!(small.config().num_objects, 100);
        let big = small.clone().scaled_to(10.0);
        assert_eq!(big.config().num_objects, 10_000);
        // 25 long-row sources on top of the 55-source base.
        assert_eq!(big.config().num_sources(), 80);
    }
}
