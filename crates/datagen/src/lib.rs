//! Synthetic Deep-Web data generators for the Stock and Flight domains.
//!
//! The paper's experiments run over two crawled data collections that are not
//! redistributable in full fidelity (they were scraped from 55 stock and 38
//! flight websites in 2011). This crate substitutes seeded, deterministic
//! generators that reproduce the *statistical characteristics* the paper
//! reports — source counts, coverage and redundancy distributions, per-source
//! accuracy ranges, the mix of inconsistency reasons (Figure 6), planted copy
//! groups (Table 5), authoritative sources, and paper-style gold standards —
//! so that every downstream measurement and fusion experiment exercises the
//! same code paths it would on the real data.
//!
//! The entry points are [`stock::stock_config`] / [`flight::flight_config`]
//! (paper-scale configurations), [`generate`] (run a configuration), and the
//! [`GeneratedDomain`] output bundle.

pub mod alternatives;
pub mod config;
pub mod flight;
pub mod generator;
pub mod provenance;
pub mod scenario;
pub mod stock;
pub mod world;

pub use config::{AttrSpec, DomainConfig, ErrorMix, GoldMode, GoldSpec, QualityFlip, SourceSpec};
pub use flight::flight_config;
pub use generator::{generate, GeneratedDomain};
pub use provenance::{ClaimOutcome, ClaimProvenance, DayProvenance, InconsistencyReason};
pub use scenario::{
    edges_of_groups, mutation_stream, MutationStream, Scenario, ScenarioWorld, GOLDEN_SEED,
    SCENARIO_NAMES,
};
pub use stock::stock_config;
pub use world::TrueWorld;
