//! Shared pools of plausible-but-wrong values.
//!
//! When several low-quality sources err on the same data item they frequently
//! err *towards the same wrong value* (stale feeds, shared upstream
//! providers, common parsing quirks). The paper's dominance-factor analysis
//! (Figure 7) and its fusion-error analysis (Figure 11, "similar 'false'
//! values are provided" / "'false' value dominant") depend on this clustering.
//! The generator therefore draws pure errors from a small deterministic pool
//! of wrong values per (day, item) rather than from an unbounded random
//! space.

use datamodel::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically derive the wrong-value pool for one (day, item).
#[derive(Debug, Clone)]
pub struct AlternativePool {
    values: Vec<Value>,
}

impl AlternativePool {
    /// Build a pool of `count` wrong values around `truth`, seeded by
    /// `item_seed` (hash of day and item identity).
    pub fn for_item(truth: &Value, item_seed: u64, count: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(item_seed ^ 0xa17e_93b5_u64);
        let mut values = Vec::with_capacity(count);
        for slot in 0..count {
            values.push(perturb(truth, &mut rng, slot));
        }
        Self { values }
    }

    /// The pool values, most popular first (error-making sources are biased
    /// towards the head of the pool).
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Pick a wrong value: weighted towards the head of the pool, with
    /// `fresh_prob` probability of generating a fresh (unshared) error.
    pub fn pick(&self, rng: &mut impl Rng, truth: &Value, fresh_prob: f64) -> Value {
        if self.values.is_empty() || rng.gen_bool(fresh_prob.clamp(0.0, 1.0)) {
            return perturb(truth, rng, usize::MAX);
        }
        // Geometric-ish preference for the first pool entries.
        let mut idx = 0usize;
        while idx + 1 < self.values.len() && rng.gen_bool(0.35) {
            idx += 1;
        }
        self.values[idx].clone()
    }
}

/// Produce a wrong value "near" the truth: numeric values are off by 3–45%,
/// times by 11–90 minutes (always beyond the 10-minute tolerance), text values
/// get a different suffix.
fn perturb(truth: &Value, rng: &mut impl Rng, slot: usize) -> Value {
    match truth {
        Value::Number { value, .. } => {
            let magnitude: f64 = rng.gen_range(0.03..0.45);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            Value::number(value * (1.0 + sign * magnitude))
        }
        Value::Time(m) => {
            let offset: i64 = rng.gen_range(11..90);
            let sign: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
            Value::time(m + sign * offset)
        }
        Value::Text(s) => Value::text(format!("{s}-x{}", slot.min(97) + rng.gen_range(0..3usize))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic() {
        let truth = Value::number(100.0);
        let a = AlternativePool::for_item(&truth, 42, 3);
        let b = AlternativePool::for_item(&truth, 42, 3);
        assert_eq!(a.values(), b.values());
        let c = AlternativePool::for_item(&truth, 43, 3);
        assert_ne!(a.values(), c.values());
    }

    #[test]
    fn wrong_values_differ_from_truth() {
        let truth = Value::number(100.0);
        let pool = AlternativePool::for_item(&truth, 7, 4);
        for v in pool.values() {
            let diff = (v.as_f64().unwrap() - 100.0).abs();
            assert!(diff >= 2.9, "wrong value {v} too close to the truth");
        }
    }

    #[test]
    fn time_errors_exceed_tolerance() {
        let truth = Value::time(600);
        let pool = AlternativePool::for_item(&truth, 9, 4);
        for v in pool.values() {
            let diff = (v.as_f64().unwrap() - 600.0).abs();
            assert!(diff > 10.0, "time error {v} is within the 10-minute tolerance");
        }
    }

    #[test]
    fn text_errors_differ() {
        let truth = Value::text("cat-5");
        let pool = AlternativePool::for_item(&truth, 11, 3);
        for v in pool.values() {
            assert_ne!(*v, truth);
        }
    }

    #[test]
    fn pick_prefers_pool_head() {
        let truth = Value::number(100.0);
        let pool = AlternativePool::for_item(&truth, 1, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut head = 0;
        let trials = 2000;
        for _ in 0..trials {
            if pool.pick(&mut rng, &truth, 0.0) == pool.values()[0] {
                head += 1;
            }
        }
        assert!(
            head as f64 / trials as f64 > 0.5,
            "head of the pool should receive the majority of the errors"
        );
    }

    #[test]
    fn pick_with_full_fresh_prob_ignores_pool() {
        let truth = Value::number(100.0);
        let pool = AlternativePool::for_item(&truth, 1, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let v = pool.pick(&mut rng, &truth, 1.0);
        assert_ne!(v, truth);
    }
}
