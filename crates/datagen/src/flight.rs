//! Paper-calibrated configuration of the Flight domain.
//!
//! Reproduces the collection described in Section 2.2 of the paper: 38
//! sources (3 airline websites, 8 airport websites, 27 third-party sites),
//! 1200 flights, every day of December 2011 (31 snapshots), the 6 popular
//! attributes, and the five copy groups of Table 5. The airline websites are
//! the gold-standard providers (each covers only its own flights); the copy
//! groups deliberately include low-accuracy originals, which is what makes
//! copying so harmful — and ACCUCOPY so helpful — in this domain.

use crate::config::{AttrSpec, DomainConfig, ErrorMix, GoldMode, GoldSpec, SourceSpec};
use datamodel::AttrKind;

/// Number of sources in the Flight collection.
pub const FLIGHT_SOURCES: usize = 38;
/// Number of flights.
pub const FLIGHT_OBJECTS: u32 = 1200;
/// Number of daily snapshots in December 2011.
pub const FLIGHT_DAYS: u32 = 31;

/// The 6 considered attributes: scheduled/actual departure/arrival time and
/// departure/arrival gate. Actual times are marked "statistical" because they
/// are the ones subject to semantics ambiguity (takeoff/landing time versus
/// gate time).
pub fn flight_attributes() -> Vec<AttrSpec> {
    let time = |name: &str, statistical: bool, adoption: f64, drift: f64| AttrSpec {
        name: name.to_string(),
        kind: AttrKind::Time,
        statistical,
        variant_factor: 1.0,
        variant_adoption: adoption,
        drift,
    };
    let gate = |name: &str| AttrSpec {
        name: name.to_string(),
        kind: AttrKind::Categorical { cardinality: 40 },
        statistical: false,
        variant_factor: 1.0,
        variant_adoption: 0.0,
        drift: 0.1,
    };
    vec![
        time("Scheduled departure", false, 0.0, 0.02),
        time("Scheduled arrival", false, 0.0, 0.02),
        time("Actual departure", true, 0.38, 0.40),
        time("Actual arrival", true, 0.38, 0.40),
        gate("Departure gate"),
        gate("Arrival gate"),
    ]
}

/// Build the full Flight-domain configuration for the given master seed.
pub fn flight_config(seed: u64) -> DomainConfig {
    let mut sources = Vec::with_capacity(FLIGHT_SOURCES);

    // Three airline websites: gold-standard providers, each covering only its
    // own flights (objects partitioned by id modulo 3), with very high
    // accuracy on them.
    for (i, name) in ["AA.com", "United.com", "Continental.com"].iter().enumerate() {
        sources.push(
            SourceSpec::independent(*name, 0.985, 1.0)
                .gold_provider()
                .with_object_stride(3, i as u32)
                .with_attr_coverage(1.0),
        );
    }

    // Authoritative third-party aggregators (Table 4).
    sources.push(
        SourceSpec::independent("Orbitz", 0.98, 0.87)
            .authority()
            .with_attr_coverage(0.95),
    );
    sources.push(
        SourceSpec::independent("Travelocity", 0.95, 0.71)
            .authority()
            .with_attr_coverage(0.90),
    );

    // Eight airport websites: accurate but with tiny coverage (≈ 3% of the
    // flights each).
    for i in 0..8 {
        sources.push(
            SourceSpec::independent(format!("Airport {:02}", i + 1), 0.94, 0.03)
                .authority()
                .with_attr_coverage(0.80),
        );
    }

    // Copy groups of Table 5 (within the third-party population):
    //   5 sources, accuracy ≈ .71, schema similarity .80 (claimed dependence)
    //   4 sources, accuracy ≈ .53 (query redirection)
    //   3 sources, accuracy ≈ .92 (claimed dependence)
    //   2 sources, accuracy ≈ .93 (embedded interface)
    //   2 sources, accuracy ≈ .61 (embedded interface)
    let group_specs: [(usize, f64, f64, &str); 5] = [
        (5, 0.71, 0.80, "DependGroup"),
        (4, 0.53, 0.85, "RedirectGroup"),
        (3, 0.92, 1.0, "PartnerGroup"),
        (2, 0.93, 1.0, "EmbedHigh"),
        (2, 0.61, 1.0, "EmbedLow"),
    ];
    for (size, accuracy, attr_cov, label) in group_specs {
        let original_index = sources.len();
        sources.push(
            SourceSpec::independent(format!("{label} Original"), accuracy, 0.70)
                .with_attr_coverage(attr_cov),
        );
        for i in 1..size {
            sources.push(
                SourceSpec::independent(format!("{label} Copy {i}"), accuracy, 0.70)
                    .with_attr_coverage(attr_cov)
                    .copying(original_index, 0.99),
            );
        }
    }

    // Remaining independent third-party sources: accuracies spread over the
    // paper's observed range (.43 – .99, mean ≈ .80) with moderate and varied
    // coverage (the paper reports only 28% of the sources providing more than
    // half of the data items).
    let remaining = FLIGHT_SOURCES - sources.len();
    for i in 0..remaining {
        let frac = i as f64 / (remaining.saturating_sub(1).max(1)) as f64;
        let accuracy = 0.96 - 0.53 * frac * frac;
        let object_coverage = 0.25 + 0.60 * (((i * 5) % 9) as f64 / 8.0);
        let attr_coverage = 0.50 + 0.50 * (((i * 11) % 7) as f64 / 6.0);
        sources.push(
            SourceSpec::independent(format!("FlightSite {:02}", i + 1), accuracy, object_coverage)
                .with_attr_coverage(attr_coverage),
        );
    }

    DomainConfig {
        domain: "flight".to_string(),
        seed,
        num_objects: FLIGHT_OBJECTS,
        num_days: FLIGHT_DAYS,
        attributes: flight_attributes(),
        total_global_attributes: 15,
        total_local_attributes: 43,
        sources,
        error_mix: ErrorMix::flight(),
        gold: GoldSpec {
            mode: GoldMode::TrustedSources,
            num_gold_objects: 100,
            min_providers: 1,
        },
        ambiguous_object_fraction: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_parameters() {
        let cfg = flight_config(1);
        assert_eq!(cfg.num_sources(), FLIGHT_SOURCES);
        assert_eq!(cfg.num_objects, FLIGHT_OBJECTS);
        assert_eq!(cfg.num_days, FLIGHT_DAYS);
        assert_eq!(cfg.num_attributes(), 6);
        assert_eq!(cfg.total_global_attributes, 15);
        assert_eq!(cfg.gold.num_gold_objects, 100);
    }

    #[test]
    fn source_population_structure() {
        let cfg = flight_config(1);
        let gold_providers = cfg.sources.iter().filter(|s| s.gold_provider).count();
        assert_eq!(gold_providers, 3);
        let airports = cfg
            .sources
            .iter()
            .filter(|s| s.name.starts_with("Airport"))
            .count();
        assert_eq!(airports, 8);
        let copiers = cfg.sources.iter().filter(|s| s.copies_from.is_some()).count();
        // (5-1) + (4-1) + (3-1) + (2-1) + (2-1) = 11 copiers.
        assert_eq!(copiers, 11);
        // The copy groups of Table 5 involve 16 sources in total.
        let originals_with_copies: std::collections::HashSet<usize> = cfg
            .sources
            .iter()
            .filter_map(|s| s.copies_from)
            .collect();
        assert_eq!(copiers + originals_with_copies.len(), 16);
    }

    #[test]
    fn airlines_partition_the_objects() {
        let cfg = flight_config(1);
        let strides: Vec<(u32, u32)> = cfg
            .sources
            .iter()
            .filter(|s| s.gold_provider)
            .map(|s| s.object_stride.unwrap())
            .collect();
        assert_eq!(strides, vec![(3, 0), (3, 1), (3, 2)]);
    }

    #[test]
    fn accuracy_band_matches_paper() {
        let cfg = flight_config(1);
        let accuracies: Vec<f64> = cfg
            .sources
            .iter()
            .filter(|s| !s.gold_provider)
            .map(|s| s.accuracy)
            .collect();
        let mean = accuracies.iter().sum::<f64>() / accuracies.len() as f64;
        assert!(mean > 0.74 && mean < 0.88, "mean accuracy {mean}");
        assert!(accuracies.iter().cloned().fold(f64::INFINITY, f64::min) >= 0.42);
    }

    #[test]
    fn actual_times_are_semantics_prone() {
        let attrs = flight_attributes();
        assert!(attrs.iter().any(|a| a.name == "Actual departure" && a.statistical));
        assert!(attrs.iter().any(|a| a.name == "Scheduled departure" && !a.statistical));
        assert_eq!(attrs.len(), 6);
    }
}
