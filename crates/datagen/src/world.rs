//! The generated "real world": the true value of every data item on every day.
//!
//! The world is generated once per configuration and is fully deterministic
//! given the seed. It also produces the *alternative-semantics* value of every
//! item (what a source using a different definition of the attribute would
//! report), which drives the semantics-ambiguity error mode.

use crate::config::{AttrSpec, DomainConfig};
use datamodel::{AttrId, AttrKind, GoldStandard, ItemId, ObjectId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// True values of all items across all days, plus per-item semantic variants.
#[derive(Debug, Clone)]
pub struct TrueWorld {
    num_objects: u32,
    num_days: u32,
    attrs: Vec<AttrSpec>,
    /// `base[attr][object]`: the day-0 true value parameterization.
    base: Vec<Vec<BaseValue>>,
    /// `drift[attr][day]`: multiplicative (numeric) or additive-minute (time)
    /// day-level drift applied to the base value.
    drift: Vec<Vec<f64>>,
    /// Objects subject to instance ambiguity (e.g. terminated stock symbols).
    ambiguous_objects: Vec<bool>,
}

/// Day-0 parameterization of one item's truth.
#[derive(Debug, Clone, Copy)]
enum BaseValue {
    Number(f64),
    Time(i64),
    Category(u32),
}

impl TrueWorld {
    /// Generate the world for `config` (deterministic in `config.seed`).
    pub fn generate(config: &DomainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x57f1d_u64);
        let num_objects = config.num_objects;
        let num_days = config.num_days;
        let mut base = Vec::with_capacity(config.attributes.len());
        let mut drift = Vec::with_capacity(config.attributes.len());
        for spec in &config.attributes {
            let mut per_object = Vec::with_capacity(num_objects as usize);
            for _ in 0..num_objects {
                per_object.push(match spec.kind {
                    AttrKind::Numeric { scale } => {
                        // Log-uniform spread around the attribute scale keeps
                        // magnitudes realistic (prices cluster, volumes spread).
                        let factor: f64 = rng.gen_range(0.2_f64..5.0_f64);
                        BaseValue::Number(scale * factor)
                    }
                    AttrKind::Time => {
                        // Minutes in a day-like window.
                        BaseValue::Time(rng.gen_range(300..1380))
                    }
                    AttrKind::Categorical { cardinality } => {
                        BaseValue::Category(rng.gen_range(0..cardinality.max(1)))
                    }
                });
            }
            let mut per_day = Vec::with_capacity(num_days as usize);
            let mut level = 0.0_f64;
            for _ in 0..num_days {
                level += rng.gen_range(-1.0..1.0) * spec.drift;
                per_day.push(level);
            }
            base.push(per_object);
            drift.push(per_day);
        }
        let ambiguous_objects = (0..num_objects)
            .map(|_| rng.gen_bool(config.ambiguous_object_fraction.clamp(0.0, 1.0)))
            .collect();
        Self {
            num_objects,
            num_days,
            attrs: config.attributes.clone(),
            base,
            drift,
            ambiguous_objects,
        }
    }

    /// Number of objects in the world.
    pub fn num_objects(&self) -> u32 {
        self.num_objects
    }

    /// Number of days in the world.
    pub fn num_days(&self) -> u32 {
        self.num_days
    }

    /// The considered attributes.
    pub fn attributes(&self) -> &[AttrSpec] {
        &self.attrs
    }

    /// Whether `object` is subject to instance ambiguity.
    pub fn is_ambiguous_object(&self, object: ObjectId) -> bool {
        self.ambiguous_objects
            .get(object.index())
            .copied()
            .unwrap_or(false)
    }

    /// The true value of `(object, attr)` on `day`.
    pub fn truth(&self, day: u32, object: ObjectId, attr: AttrId) -> Value {
        let day = day.min(self.num_days.saturating_sub(1));
        let spec = &self.attrs[attr.index()];
        let drift = self.drift[attr.index()][day as usize];
        match self.base[attr.index()][object.index()] {
            BaseValue::Number(v) => Value::number(round_sig(v * (1.0 + drift), 6)),
            BaseValue::Time(m) => Value::time(m + (drift * 60.0).round() as i64),
            BaseValue::Category(c) => {
                // Categories shift occasionally (e.g. gate changes every few days).
                let shift = if spec.drift > 0.0 {
                    (day / 7) % 2
                } else {
                    0
                };
                Value::text(format!("cat-{}", c + shift))
            }
        }
    }

    /// The alternative-semantics value of `(object, attr)` on `day`: what a
    /// source applying a different definition of the attribute would report
    /// (e.g. yearly instead of quarterly dividend, takeoff instead of
    /// gate-departure time, a neighbouring gate for categorical attributes).
    pub fn variant(&self, day: u32, object: ObjectId, attr: AttrId) -> Value {
        let spec = &self.attrs[attr.index()];
        match self.truth(day, object, attr) {
            Value::Number { value, .. } => Value::number(round_sig(value * spec.variant_factor, 6)),
            Value::Time(m) => Value::time(m - 17), // takeoff/landing vs gate time
            Value::Text(s) => Value::text(format!("{s}-alt")),
        }
    }

    /// The truth of the "confused" object used for instance ambiguity: the
    /// next object's value (the paper's example is a terminated symbol being
    /// re-mapped to a different company).
    pub fn confused_truth(&self, day: u32, object: ObjectId, attr: AttrId) -> Value {
        let other = ObjectId((object.0 + 1) % self.num_objects);
        self.truth(day, other, attr)
    }

    /// The full true world of one day as a [`GoldStandard`] over all items.
    pub fn truth_gold(&self, day: u32) -> GoldStandard {
        let mut gold = GoldStandard::new();
        for obj in 0..self.num_objects {
            for (a, _) in self.attrs.iter().enumerate() {
                let item = ItemId::new(ObjectId(obj), AttrId(a as u16));
                gold.insert(item, self.truth(day, item.object, item.attr));
            }
        }
        gold
    }
}

/// Round to `digits` significant digits so that generated truths have a clean
/// printable form (sources then add their own jitter / rounding on top).
fn round_sig(x: f64, digits: i32) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return 0.0;
    }
    let magnitude = x.abs().log10().floor() as i32;
    let factor = 10f64.powi(digits - 1 - magnitude);
    (x * factor).round() / factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stock::stock_config;

    fn small_world() -> TrueWorld {
        let cfg = stock_config(1).scaled(0.02, 0.2);
        TrueWorld::generate(&cfg)
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = stock_config(42).scaled(0.02, 0.2);
        let w1 = TrueWorld::generate(&cfg);
        let w2 = TrueWorld::generate(&cfg);
        let item = ItemId::new(ObjectId(3), AttrId(2));
        assert_eq!(w1.truth(0, item.object, item.attr), w2.truth(0, item.object, item.attr));
        let cfg2 = stock_config(43).scaled(0.02, 0.2);
        let w3 = TrueWorld::generate(&cfg2);
        // Different seeds should (overwhelmingly) differ somewhere.
        let mut any_diff = false;
        for o in 0..w1.num_objects() {
            for a in 0..w1.attributes().len() {
                if w1.truth(0, ObjectId(o), AttrId(a as u16))
                    != w3.truth(0, ObjectId(o), AttrId(a as u16))
                {
                    any_diff = true;
                }
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn variant_differs_from_truth() {
        let w = small_world();
        let mut diffs = 0;
        for a in 0..w.attributes().len() {
            let t = w.truth(0, ObjectId(0), AttrId(a as u16));
            let v = w.variant(0, ObjectId(0), AttrId(a as u16));
            if t != v {
                diffs += 1;
            }
        }
        assert!(diffs > 0, "variants must differ for at least some attributes");
    }

    #[test]
    fn truth_gold_covers_all_items() {
        let w = small_world();
        let gold = w.truth_gold(0);
        assert_eq!(
            gold.len(),
            (w.num_objects() as usize) * w.attributes().len()
        );
    }

    #[test]
    fn confused_truth_wraps_around() {
        let w = small_world();
        let last = ObjectId(w.num_objects() - 1);
        // Should not panic and should return the first object's truth.
        let confused = w.confused_truth(0, last, AttrId(0));
        assert_eq!(confused, w.truth(0, ObjectId(0), AttrId(0)));
    }

    #[test]
    fn round_sig_behaviour() {
        assert_eq!(round_sig(123456.789, 6), 123457.0);
        assert_eq!(round_sig(0.0012345678, 6), 0.00123457);
        assert_eq!(round_sig(0.0, 6), 0.0);
    }

    #[test]
    fn day_clamping() {
        let w = small_world();
        let last_day = w.num_days() - 1;
        assert_eq!(
            w.truth(last_day + 10, ObjectId(0), AttrId(0)),
            w.truth(last_day, ObjectId(0), AttrId(0))
        );
    }
}
