//! The generation driver: turn a [`DomainConfig`] into a multi-day
//! [`Collection`] with provenance, planted copy groups, and gold standards.

use crate::alternatives::AlternativePool;
use crate::config::{DomainConfig, GoldMode, SourceSpec};
use crate::provenance::{ClaimOutcome, ClaimProvenance, DayProvenance, InconsistencyReason};
use crate::world::TrueWorld;
use datamodel::{
    AttrId, AttrKind, Collection, DomainSchema, GoldStandard, ItemId, ObjectId, Snapshot,
    SnapshotBuilder, SourceId, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything the generator produces for one domain.
#[derive(Debug, Clone)]
pub struct GeneratedDomain {
    /// The configuration the domain was generated from.
    pub config: DomainConfig,
    /// Multi-day observation tables with paper-style gold standards and the
    /// generator's true world per day.
    pub collection: Collection,
    /// Per-day claim provenance (reason behind every erroneous claim).
    pub provenance: Vec<DayProvenance>,
    /// The planted copy groups (original first, then its copiers).
    pub copy_groups: Vec<Vec<SourceId>>,
    /// For every *global* attribute of the domain (not only the considered
    /// ones), the number of sources providing it — the Figure-1 distribution.
    pub global_attribute_providers: Vec<u32>,
    /// The generated true world.
    pub world: TrueWorld,
}

impl GeneratedDomain {
    /// The snapshot the paper-style single-day analyses use (a mid-period
    /// day, mirroring the paper's choice of 7/7/2011 and 12/8/2011).
    pub fn reference_snapshot(&self) -> &Snapshot {
        &self.collection.reference_day().snapshot
    }

    /// The paper-style gold standard of the reference day.
    pub fn reference_gold(&self) -> &GoldStandard {
        &self.collection.reference_day().gold
    }

    /// The true world of the reference day.
    pub fn reference_truth(&self) -> &GoldStandard {
        &self.collection.reference_day().truth
    }

    /// Provenance of the reference day.
    pub fn reference_provenance(&self) -> &DayProvenance {
        &self.provenance[self.collection.reference_day_index()]
    }
}

/// Per-source derived generation plan (coverage sets and error probabilities).
struct SourcePlan {
    covered_objects: Vec<bool>,
    covered_attrs: Vec<bool>,
    variant_attrs: Vec<bool>,
    mismapped_objects: Vec<bool>,
    stale_prob: f64,
    unit_prob: f64,
    pure_prob: f64,
    /// Absolute rounding granularity per attribute (0 = exact).
    rounding: Vec<f64>,
    /// Stochastic error probabilities that replace `stale/unit/pure_prob`
    /// from the flip day onwards (the scenario quality-flip knob).
    post_flip: Option<PostFlip>,
}

/// The re-budgeted stochastic error probabilities of a quality-flipped
/// source. Structural modes (semantics/instance ambiguity) are fixed per
/// run, so their share of the flipped budget is realized as pure errors.
#[derive(Debug, Clone, Copy)]
struct PostFlip {
    day: u32,
    stale_prob: f64,
    unit_prob: f64,
    pure_prob: f64,
}

/// Generate a domain from its configuration. Fully deterministic in
/// `config.seed`.
pub fn generate(config: &DomainConfig) -> GeneratedDomain {
    let schema = Arc::new(build_schema(config));
    let world = TrueWorld::generate(config);
    let plans: Vec<SourcePlan> = config
        .sources
        .iter()
        .enumerate()
        .map(|(i, spec)| build_plan(config, &world, spec, i))
        .collect();

    let mut collection = Collection::new(Arc::clone(&schema));
    let mut provenance = Vec::with_capacity(config.num_days as usize);
    for day in 0..config.num_days {
        let (snapshot, day_prov) = generate_day(config, &schema, &world, &plans, day);
        let gold = build_gold(config, &snapshot);
        let truth = restrict_truth(&world.truth_gold(day), &snapshot);
        collection.push_day(snapshot, gold, truth);
        provenance.push(day_prov);
    }

    GeneratedDomain {
        config: config.clone(),
        copy_groups: schema.copy_groups(),
        global_attribute_providers: global_attribute_providers(config),
        collection,
        provenance,
        world,
    }
}

fn build_schema(config: &DomainConfig) -> DomainSchema {
    let mut schema = DomainSchema::new(config.domain.clone());
    for attr in &config.attributes {
        schema.add_attribute(attr.name.clone(), attr.kind, attr.statistical);
    }
    for spec in &config.sources {
        schema.add_source(spec.name.clone(), spec.authority);
    }
    for (i, spec) in config.sources.iter().enumerate() {
        if let Some(orig) = spec.copies_from {
            schema.set_copy_of(SourceId(i as u32), SourceId(orig as u32));
        }
    }
    schema
}

fn build_plan(
    config: &DomainConfig,
    world: &TrueWorld,
    spec: &SourceSpec,
    source_index: usize,
) -> SourcePlan {
    let mut rng = StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(source_index as u64 + 1),
    );
    let num_attrs = config.attributes.len();
    let num_objects = config.num_objects as usize;

    // Attribute coverage (at least one attribute).
    let mut covered_attrs: Vec<bool> = (0..num_attrs)
        .map(|_| rng.gen_bool(spec.attr_coverage.clamp(0.0, 1.0)))
        .collect();
    if !covered_attrs.iter().any(|c| *c) {
        covered_attrs[rng.gen_range(0..num_attrs)] = true;
    }

    // Object coverage, optionally within a deterministic partition.
    let covered_objects: Vec<bool> = (0..num_objects)
        .map(|o| {
            let in_partition = match spec.object_stride {
                Some((modulus, remainder)) => (o as u32) % modulus.max(1) == remainder,
                None => true,
            };
            in_partition && rng.gen_bool(spec.object_coverage.clamp(0.0, 1.0))
        })
        .collect();

    // Error budget split.
    let error_budget = (1.0 - spec.accuracy).clamp(0.0, 1.0);
    let mix_total = config.error_mix.total().max(1e-9);
    let semantics_budget = error_budget * config.error_mix.semantics / mix_total;
    let instance_budget = error_budget * config.error_mix.instance / mix_total;
    let stale_budget = error_budget * config.error_mix.out_of_date / mix_total;
    let unit_budget = error_budget * config.error_mix.unit / mix_total;
    let pure_budget = error_budget * config.error_mix.pure / mix_total;

    // Semantics ambiguity: structural per (source, statistical attribute).
    // The adoption rate is attribute-driven (`variant_adoption`) and scaled
    // by the source's own semantics error budget relative to a typical
    // source, so accurate/authoritative sources mostly keep the standard
    // semantics while sloppier sources adopt the variants more often.
    let statistical_covered = config
        .attributes
        .iter()
        .enumerate()
        .filter(|(i, a)| covered_attrs[*i] && a.statistical)
        .count();
    const TYPICAL_SEMANTICS_BUDGET: f64 = 0.06;
    // Super-linear scaling concentrates variant adoption on the sloppier
    // sources: authoritative sources essentially always keep the standard
    // semantics (so gold-standard voting stays on it), while low-accuracy
    // sources adopt the variants often — which is what lets the
    // trust-aware fusion methods recover the items where a variant value
    // happens to dominate.
    let semantic_factor = (semantics_budget / TYPICAL_SEMANTICS_BUDGET)
        .powf(1.15)
        .clamp(0.0, 2.2);
    let variant_attrs: Vec<bool> = config
        .attributes
        .iter()
        .enumerate()
        .map(|(i, a)| {
            covered_attrs[i]
                && a.statistical
                && rng.gen_bool((a.variant_adoption * semantic_factor).clamp(0.0, 1.0))
        })
        .collect();

    // Instance ambiguity: structural per (source, ambiguous object).
    let ambiguous_fraction = config.ambiguous_object_fraction.max(1e-9);
    let mismap_prob = (instance_budget / ambiguous_fraction).clamp(0.0, 1.0);
    let mismapped_objects: Vec<bool> = (0..num_objects)
        .map(|o| {
            covered_objects[o]
                && world.is_ambiguous_object(ObjectId(o as u32))
                && rng.gen_bool(mismap_prob)
        })
        .collect();

    // Semantics errors not realizable (no statistical attribute covered) are
    // folded into the pure-error budget so low-coverage sources still hit
    // their accuracy target.
    let unrealized_semantics = if statistical_covered == 0 {
        semantics_budget
    } else {
        0.0
    };

    let rounding: Vec<f64> = config
        .attributes
        .iter()
        .map(|a| match a.kind {
            AttrKind::Numeric { scale } => spec.relative_rounding * scale,
            _ => 0.0,
        })
        .collect();

    // Mid-stream quality flip: re-budget only the stochastic modes for the
    // flipped accuracy (no RNG draws here — determinism of unflipped
    // sources is untouched). The structural semantics/instance shares of
    // the flipped budget cannot be re-realized mid-run and fold into pure
    // errors, exactly like unrealizable semantics above.
    let post_flip = spec.quality_flip.map(|flip| {
        let err = (1.0 - flip.accuracy_after).clamp(0.0, 1.0);
        let stale = err * config.error_mix.out_of_date / mix_total;
        let unit = err * config.error_mix.unit / mix_total;
        let pure = err
            * (config.error_mix.pure + config.error_mix.semantics + config.error_mix.instance)
            / mix_total;
        PostFlip {
            day: flip.day,
            stale_prob: (stale * 1.6).clamp(0.0, 1.0),
            unit_prob: unit.clamp(0.0, 1.0),
            pure_prob: pure.clamp(0.0, 1.0),
        }
    });

    SourcePlan {
        covered_objects,
        covered_attrs,
        variant_attrs,
        mismapped_objects,
        // Roughly half of the stale claims still match today's truth (slow-
        // moving attributes), so over-provision the stale probability.
        stale_prob: (stale_budget * 1.6).clamp(0.0, 1.0),
        unit_prob: unit_budget.clamp(0.0, 1.0),
        pure_prob: (pure_budget + unrealized_semantics).clamp(0.0, 1.0),
        rounding,
        post_flip,
    }
}

/// Claims a source produces for one day: `(item, value, provenance)`.
type Claims = Vec<(ItemId, Value, ClaimProvenance)>;

fn generate_day(
    config: &DomainConfig,
    schema: &Arc<DomainSchema>,
    world: &TrueWorld,
    plans: &[SourcePlan],
    day: u32,
) -> (Snapshot, DayProvenance) {
    let mut builder = SnapshotBuilder::new(day);
    let mut day_prov = DayProvenance::new();

    // Independent sources first; copiers need their originals' claims.
    let mut materialized: BTreeMap<usize, Claims> = BTreeMap::new();
    for (i, spec) in config.sources.iter().enumerate() {
        if spec.copies_from.is_some() {
            continue;
        }
        let claims = generate_independent_claims(config, world, &plans[i], spec, i, day);
        materialized.insert(i, claims);
    }

    // Copier chains (scenario copier rings copy from other copiers):
    // materialize in dependency order until the fixpoint. A provenance cycle
    // with no independent head would make no progress; its members then
    // produce nothing that day (defensive — the scenario layer always roots
    // rings at an independent source).
    let mut pending: Vec<usize> = config
        .sources
        .iter()
        .enumerate()
        .filter(|(_, spec)| spec.copies_from.is_some())
        .map(|(i, _)| i)
        .collect();
    while !pending.is_empty() {
        let mut progress = false;
        let mut still_pending = Vec::with_capacity(pending.len());
        for i in pending {
            let spec = &config.sources[i];
            let orig = spec.copies_from.expect("pending sources are copiers");
            match materialized.get(&orig) {
                Some(original) => {
                    let claims = copy_claims(config, &plans[i], spec, i, day, original);
                    materialized.insert(i, claims);
                    progress = true;
                }
                None => still_pending.push(i),
            }
        }
        pending = still_pending;
        if !progress {
            break;
        }
    }

    for i in 0..config.sources.len() {
        let source = SourceId(i as u32);
        if let Some(claims) = materialized.get(&i) {
            for (item, value, prov) in claims {
                builder.add(source, item.object, item.attr, value.clone());
                day_prov.record(*item, source, *prov);
            }
        }
    }

    (builder.build(Arc::clone(schema)), day_prov)
}

fn claim_rng(config: &DomainConfig, source_index: usize, effective_day: u32) -> StdRng {
    StdRng::seed_from_u64(
        config
            .seed
            .wrapping_mul(0xd6e8_feb8_6659_fd93)
            .wrapping_add((source_index as u64) << 32)
            .wrapping_add(effective_day as u64 + 1),
    )
}

fn generate_independent_claims(
    config: &DomainConfig,
    world: &TrueWorld,
    plan: &SourcePlan,
    spec: &SourceSpec,
    source_index: usize,
    day: u32,
) -> Claims {
    // A dead source keeps serving the claims of its last refreshed day.
    let effective_day = match spec.dead_after_day {
        Some(dead) if day > dead => dead,
        _ => day,
    };
    let mut rng = claim_rng(config, source_index, effective_day);
    let mut claims = Vec::new();

    // Format drift: the rounding granularity grows by `rounding_drift`× per
    // day. Keyed on the effective day — a dead source keeps serving the
    // formatting of its last refreshed day along with its values.
    let drift_factor = if spec.rounding_drift == 1.0 {
        1.0
    } else {
        spec.rounding_drift.powi(effective_day as i32)
    };

    for (o, covered) in plan.covered_objects.iter().enumerate() {
        if !covered {
            continue;
        }
        let object = ObjectId(o as u32);
        for (a, covered_attr) in plan.covered_attrs.iter().enumerate() {
            if !covered_attr {
                continue;
            }
            let attr = AttrId(a as u16);
            let item = ItemId::new(object, attr);
            let truth_today = world.truth(day, object, attr);
            let truth_effective = world.truth(effective_day, object, attr);

            let (raw_value, mut reason) =
                produce_value(config, world, plan, spec, &mut rng, effective_day, item);

            // For dead sources the produced value reflects the stale day; the
            // outcome must be judged against *today's* truth.
            if effective_day != day && raw_value == truth_effective && raw_value != truth_today {
                reason = Some(InconsistencyReason::OutOfDate);
            }

            let outcome = match reason {
                Some(r) => ClaimOutcome::Error(r),
                None => ClaimOutcome::Correct,
            };
            let value = apply_rounding(raw_value, plan.rounding[a] * drift_factor);
            claims.push((
                item,
                value,
                ClaimProvenance {
                    outcome,
                    copied: false,
                },
            ));
        }
    }
    claims
}

/// Produce the raw (pre-rounding) value of one claim and the reason it is
/// wrong, if it is.
fn produce_value(
    config: &DomainConfig,
    world: &TrueWorld,
    plan: &SourcePlan,
    spec: &SourceSpec,
    rng: &mut StdRng,
    day: u32,
    item: ItemId,
) -> (Value, Option<InconsistencyReason>) {
    let truth = world.truth(day, item.object, item.attr);

    if plan.mismapped_objects[item.object.index()] {
        let confused = world.confused_truth(day, item.object, item.attr);
        if confused != truth {
            return (confused, Some(InconsistencyReason::InstanceAmbiguity));
        }
        return (truth, None);
    }

    if plan.variant_attrs[item.attr.index()] {
        let variant = world.variant(day, item.object, item.attr);
        if variant != truth {
            return (variant, Some(InconsistencyReason::SemanticsAmbiguity));
        }
        return (truth, None);
    }

    // The stochastic error budget: pre-flip probabilities, or the flipped
    // ones once a quality-flipped source passes its flip day.
    let (stale_prob, unit_prob, pure_prob) = match plan.post_flip {
        Some(post) if day >= post.day => (post.stale_prob, post.unit_prob, post.pure_prob),
        _ => (plan.stale_prob, plan.unit_prob, plan.pure_prob),
    };
    let u: f64 = rng.gen();
    let stale_end = stale_prob;
    let unit_end = stale_end + unit_prob;
    let pure_end = unit_end + pure_prob;

    if u < stale_end {
        let stale_day = day.saturating_sub(spec.staleness_days.max(1));
        let stale = world.truth(stale_day, item.object, item.attr);
        if stale != truth {
            return (stale, Some(InconsistencyReason::OutOfDate));
        }
        return (truth, None);
    }
    if u < unit_end {
        if let Some(x) = truth.as_f64() {
            if truth.kind() == datamodel::ValueKind::Number {
                return (Value::number(x * 1000.0), Some(InconsistencyReason::UnitError));
            }
        }
        // Unit errors are meaningless for non-numeric attributes; fall through
        // to a pure error instead.
    }
    if u < pure_end {
        let pool_seed = config
            .seed
            .wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            .wrapping_add((day as u64) << 40)
            .wrapping_add((item.object.0 as u64) << 8)
            .wrapping_add(item.attr.0 as u64);
        let pool = AlternativePool::for_item(&truth, pool_seed, 3);
        let wrong = pool.pick(rng, &truth, 0.2);
        if wrong != truth {
            return (wrong, Some(InconsistencyReason::PureError));
        }
    }
    (truth, None)
}

fn apply_rounding(value: Value, granularity: f64) -> Value {
    match value {
        Value::Number { value: x, .. } if granularity > 0.0 => {
            Value::rounded_number(x, granularity)
        }
        other => other,
    }
}

fn copy_claims(
    config: &DomainConfig,
    plan: &SourcePlan,
    spec: &SourceSpec,
    source_index: usize,
    day: u32,
    original: &Claims,
) -> Claims {
    let mut rng = claim_rng(config, source_index, day);
    let fidelity = spec.copy_fidelity.clamp(0.0, 1.0);
    original
        .iter()
        .filter(|(item, _, _)| {
            // The copier exposes only the attributes it covers (copy groups in
            // Table 5 have schema similarity between 0.8 and 1.0).
            plan.covered_attrs[item.attr.index()]
        })
        .filter_map(|(item, value, prov)| {
            if rng.gen_bool(fidelity) {
                Some((
                    *item,
                    value.clone(),
                    ClaimProvenance {
                        outcome: prov.outcome,
                        copied: true,
                    },
                ))
            } else {
                None
            }
        })
        .collect()
}

fn build_gold(config: &DomainConfig, snapshot: &Snapshot) -> GoldStandard {
    let gold_objects: Vec<ObjectId> = (0..config.gold.num_gold_objects.min(config.num_objects))
        .map(ObjectId)
        .collect();
    match config.gold.mode {
        GoldMode::AuthorityVoting => {
            let authorities = snapshot.schema().authority_sources();
            let full = GoldStandard::from_authority_voting(
                snapshot,
                &authorities,
                config.gold.min_providers,
            );
            full.iter()
                .filter(|(item, _)| gold_objects.contains(&item.object))
                .map(|(item, value)| (*item, value.clone()))
                .collect()
        }
        GoldMode::TrustedSources => {
            let gold_sources: Vec<SourceId> = config
                .sources
                .iter()
                .enumerate()
                .filter(|(_, s)| s.gold_provider)
                .map(|(i, _)| SourceId(i as u32))
                .collect();
            let mut gold = GoldStandard::new();
            for (item, obs) in snapshot.items() {
                if !gold_objects.contains(&item.object) {
                    continue;
                }
                if let Some(o) = obs.iter().find(|o| gold_sources.contains(&o.source)) {
                    gold.insert(*item, o.value.clone());
                }
            }
            gold
        }
    }
}

/// Restrict the true world to the items at least one source provides, so that
/// recall over the truth is well-defined.
fn restrict_truth(truth: &GoldStandard, snapshot: &Snapshot) -> GoldStandard {
    truth
        .iter()
        .filter(|(item, _)| !snapshot.observations(**item).is_empty())
        .map(|(item, value)| (*item, value.clone()))
        .collect()
}

/// The Figure-1 distribution: for every global attribute of the domain, the
/// number of sources providing it. The head of the distribution corresponds
/// to the considered attributes; the tail follows a Zipf-like decay, matching
/// the paper's observation that only a small portion of attributes have high
/// coverage.
fn global_attribute_providers(config: &DomainConfig) -> Vec<u32> {
    let num_sources = config.num_sources() as f64;
    let total = config.total_global_attributes.max(1);
    let mut providers = Vec::with_capacity(total as usize);
    for rank in 1..=total {
        let fraction = (2.2 / (rank as f64).powf(0.85)).min(1.0);
        let count = (num_sources * fraction).round().max(1.0) as u32;
        providers.push(count.min(config.num_sources() as u32));
    }
    providers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::flight_config;
    use crate::stock::stock_config;

    fn small_stock() -> GeneratedDomain {
        generate(&stock_config(11).scaled(0.03, 0.15))
    }

    fn small_flight() -> GeneratedDomain {
        generate(&flight_config(11).scaled(0.05, 0.1))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_stock();
        let b = small_stock();
        assert_eq!(
            a.reference_snapshot().num_observations(),
            b.reference_snapshot().num_observations()
        );
        let item = a.reference_snapshot().item_ids().next().unwrap();
        assert_eq!(
            a.reference_snapshot().observations(item),
            b.reference_snapshot().observations(item)
        );
    }

    #[test]
    fn every_claim_has_provenance() {
        let d = small_stock();
        let snap = d.reference_snapshot();
        let prov = d.reference_provenance();
        assert_eq!(prov.len(), snap.num_observations());
        for (item, obs) in snap.items() {
            for o in obs {
                assert!(prov.get(*item, o.source).is_some());
            }
        }
    }

    #[test]
    fn copiers_mirror_their_original() {
        let d = small_flight();
        let snap = d.reference_snapshot();
        let groups = d.copy_groups.clone();
        assert!(!groups.is_empty());
        let group = &groups[0];
        let original = group[0];
        let copier = group[1];
        let copier_items = snap.items_of_source(copier);
        assert!(!copier_items.is_empty());
        let mut same = 0usize;
        for item in &copier_items {
            if snap.value_of(original, *item) == snap.value_of(copier, *item) {
                same += 1;
            }
        }
        let agreement = same as f64 / copier_items.len() as f64;
        assert!(agreement > 0.95, "copier agreement {agreement} too low");
    }

    #[test]
    fn gold_standard_only_covers_gold_objects() {
        let d = small_stock();
        let max_gold_object = d.config.gold.num_gold_objects;
        for (item, _) in d.reference_gold().iter() {
            assert!(item.object.0 < max_gold_object);
        }
        assert!(!d.reference_gold().is_empty());
    }

    #[test]
    fn flight_gold_comes_from_airlines() {
        let d = small_flight();
        assert!(!d.reference_gold().is_empty());
        // Airline-provided gold values should agree with the truth most of the
        // time (airlines are configured with very high accuracy).
        let agreement = d
            .reference_gold()
            .agreement_with(d.reference_truth(), d.reference_snapshot())
            .unwrap();
        assert!(agreement > 0.9, "gold/truth agreement {agreement} too low");
    }

    #[test]
    fn accuracy_targets_are_roughly_met() {
        let d = small_stock();
        let snap = d.reference_snapshot();
        let truth = d.reference_truth();
        // Average accuracy over all sources should be in the right band
        // (paper: 0.86 for Stock).
        let mut accs = Vec::new();
        for s in snap.active_sources() {
            let items = snap.items_of_source(s);
            let mut total = 0;
            let mut correct = 0;
            for item in items {
                if let Some(v) = snap.value_of(s, item) {
                    if let Some(ok) = truth.judge(snap, item, v) {
                        total += 1;
                        if ok {
                            correct += 1;
                        }
                    }
                }
            }
            if total > 20 {
                accs.push(correct as f64 / total as f64);
            }
        }
        let avg = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!(avg > 0.75 && avg < 0.97, "average source accuracy {avg} out of band");
    }

    #[test]
    fn error_reason_mix_has_all_configured_components() {
        let d = small_stock();
        let hist = d.reference_provenance().reason_histogram();
        assert!(hist.get(&InconsistencyReason::SemanticsAmbiguity).copied().unwrap_or(0) > 0);
        assert!(hist.get(&InconsistencyReason::OutOfDate).copied().unwrap_or(0) > 0);
        assert!(hist.get(&InconsistencyReason::PureError).copied().unwrap_or(0) > 0);
    }

    #[test]
    fn global_attribute_distribution_is_zipf_like() {
        let d = small_stock();
        let providers = &d.global_attribute_providers;
        assert_eq!(providers.len(), d.config.total_global_attributes as usize);
        assert!(providers[0] >= providers[providers.len() - 1]);
        // Head: covered by most sources; tail: covered by few.
        assert!(providers[0] as usize >= d.config.num_sources() / 2);
        assert!((providers[providers.len() - 1] as usize) < d.config.num_sources() / 4);
    }

    #[test]
    fn multi_day_collection_has_distinct_snapshots() {
        let cfg = stock_config(3).scaled(0.02, 0.2);
        let d = generate(&cfg);
        assert_eq!(d.collection.num_days() as u32, cfg.num_days);
        assert!(d.collection.num_days() >= 2);
        let day0 = &d.collection.day(0).snapshot;
        let day1 = &d.collection.day(1).snapshot;
        // Real-time values drift day to day, so the snapshots must differ.
        let mut differs = false;
        for item in day0.item_ids().take(200) {
            if day0.observations(item) != day1.observations(item) {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }
}
