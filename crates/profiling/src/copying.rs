//! Commonality statistics of copy groups (Section 3.4, Table 5).
//!
//! For each group of sources suspected (or known) to copy from one another,
//! the paper reports the average pairwise Jaccard similarity of their
//! provided attribute sets (schema commonality) and object sets (object
//! commonality), the average fraction of equal values on shared data items
//! (value commonality), and the average source accuracy.

use datamodel::{GoldStandard, Snapshot, SourceId};
use serde::Serialize;
use std::collections::BTreeSet;

/// Table-5 statistics of one copy group.
#[derive(Debug, Clone, Serialize)]
pub struct CopyGroupStats {
    /// The sources in the group.
    pub sources: Vec<SourceId>,
    /// Group size.
    pub size: usize,
    /// Average pairwise Jaccard similarity of provided attribute sets.
    pub schema_commonality: f64,
    /// Average pairwise Jaccard similarity of provided object sets.
    pub object_commonality: f64,
    /// Average fraction of equal values over shared data items.
    pub value_commonality: f64,
    /// Average accuracy of the group's sources against the gold standard.
    pub average_accuracy: f64,
}

fn jaccard<T: Ord>(a: &BTreeSet<T>, b: &BTreeSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.union(b).count();
    inter as f64 / union.max(1) as f64
}

/// Compute the Table-5 statistics for one group of sources.
pub fn copy_group_stats(
    snapshot: &Snapshot,
    gold: &GoldStandard,
    group: &[SourceId],
) -> CopyGroupStats {
    let attr_sets: Vec<BTreeSet<_>> = group
        .iter()
        .map(|s| snapshot.attrs_of_source(*s))
        .collect();
    let object_sets: Vec<BTreeSet<_>> = group
        .iter()
        .map(|s| snapshot.objects_of_source(*s))
        .collect();

    let mut schema_sims = Vec::new();
    let mut object_sims = Vec::new();
    let mut value_sims = Vec::new();
    for i in 0..group.len() {
        for j in (i + 1)..group.len() {
            schema_sims.push(jaccard(&attr_sets[i], &attr_sets[j]));
            object_sims.push(jaccard(&object_sets[i], &object_sets[j]));
            value_sims.push(value_commonality(snapshot, group[i], group[j]));
        }
    }

    let accuracies: Vec<f64> = group
        .iter()
        .filter_map(|s| crate::accuracy::source_accuracy(snapshot, gold, *s).accuracy)
        .collect();

    CopyGroupStats {
        sources: group.to_vec(),
        size: group.len(),
        schema_commonality: datamodel::mean(&schema_sims),
        object_commonality: datamodel::mean(&object_sims),
        value_commonality: datamodel::mean(&value_sims),
        average_accuracy: datamodel::mean(&accuracies),
    }
}

/// Fraction of equal values over the data items both sources provide.
pub fn value_commonality(snapshot: &Snapshot, a: SourceId, b: SourceId) -> f64 {
    let mut shared = 0usize;
    let mut equal = 0usize;
    for (item, obs) in snapshot.items() {
        let va = obs.iter().find(|o| o.source == a).map(|o| &o.value);
        let vb = obs.iter().find(|o| o.source == b).map(|o| &o.value);
        if let (Some(va), Some(vb)) = (va, vb) {
            shared += 1;
            let tol = snapshot.tolerance().tolerance(item.attr);
            if va.matches(vb, tol) {
                equal += 1;
            }
        }
    }
    if shared == 0 {
        0.0
    } else {
        equal as f64 / shared as f64
    }
}

/// Compute Table-5 statistics for every group.
pub fn all_copy_group_stats(
    snapshot: &Snapshot,
    gold: &GoldStandard,
    groups: &[Vec<SourceId>],
) -> Vec<CopyGroupStats> {
    groups
        .iter()
        .map(|g| copy_group_stats(snapshot, gold, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{flight_config, generate};

    #[test]
    fn planted_copy_groups_have_high_commonality() {
        let domain = generate(&flight_config(3).scaled(0.1, 0.06));
        let snap = domain.reference_snapshot();
        let gold = domain.reference_gold();
        let stats = all_copy_group_stats(snap, gold, &domain.copy_groups);
        assert_eq!(stats.len(), 5);
        for s in &stats {
            assert!(s.size >= 2);
            assert!(
                s.object_commonality > 0.9,
                "object commonality {} too low",
                s.object_commonality
            );
            assert!(
                s.value_commonality > 0.95,
                "value commonality {} too low",
                s.value_commonality
            );
            assert!(s.schema_commonality > 0.5);
        }
        // The low-accuracy redirect group must show up as such.
        let min_acc = stats
            .iter()
            .map(|s| s.average_accuracy)
            .fold(f64::INFINITY, f64::min);
        assert!(min_acc < 0.8, "lowest group accuracy {min_acc}");
    }

    #[test]
    fn jaccard_edge_cases() {
        let empty: BTreeSet<u32> = BTreeSet::new();
        let set: BTreeSet<u32> = [1, 2, 3].into_iter().collect();
        assert_eq!(jaccard(&empty, &empty), 1.0);
        assert_eq!(jaccard(&set, &empty), 0.0);
        assert_eq!(jaccard(&set, &set), 1.0);
    }

    #[test]
    fn unrelated_sources_have_lower_value_commonality() {
        let domain = generate(&flight_config(3).scaled(0.1, 0.06));
        let snap = domain.reference_snapshot();
        // Compare a copy pair against an unrelated pair.
        let group = &domain.copy_groups[1]; // the low-accuracy redirect group
        let copier_sim = value_commonality(snap, group[0], group[1]);
        // Two independent low-quality sources.
        let sources: Vec<_> = snap.active_sources().into_iter().collect();
        let a = sources[sources.len() - 1];
        let b = sources[sources.len() - 3];
        let independent_sim = value_commonality(snap, a, b);
        assert!(copier_sim > independent_sim);
    }
}
