//! Attribute-coverage distribution (Section 2.2, Figure 1).
//!
//! Figure 1 plots, for increasing source-count thresholds, the percentage of
//! global attributes provided by more than that many sources. The generator
//! supplies the per-attribute provider counts (for all global attributes, not
//! only the considered ones); this module turns them into the Figure-1
//! series and the summary fractions quoted in the paper's text.

use serde::Serialize;

/// One point of the Figure-1 series.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CoveragePoint {
    /// Source-count threshold ("more than N sources").
    pub min_sources: u32,
    /// Fraction of global attributes provided by more than `min_sources`
    /// sources.
    pub fraction_of_attributes: f64,
}

/// The Figure-1 series for the given provider counts and thresholds.
pub fn attribute_coverage_cdf(provider_counts: &[u32], thresholds: &[u32]) -> Vec<CoveragePoint> {
    let total = provider_counts.len().max(1) as f64;
    thresholds
        .iter()
        .map(|&min_sources| CoveragePoint {
            min_sources,
            fraction_of_attributes: provider_counts
                .iter()
                .filter(|&&c| c > min_sources)
                .count() as f64
                / total,
        })
        .collect()
}

/// The thresholds Figure 1 uses: more than 5, 10, 20, 30, 40, 50 sources.
pub fn default_thresholds() -> Vec<u32> {
    vec![5, 10, 20, 30, 40, 50]
}

/// Fraction of attributes provided by at least `fraction` of the `num_sources`
/// sources (the paper quotes e.g. "21 attributes (13.7%) are provided by at
/// least one third of the sources").
pub fn fraction_covered_by(provider_counts: &[u32], num_sources: usize, fraction: f64) -> f64 {
    let threshold = (num_sources as f64 * fraction).ceil() as u32;
    provider_counts.iter().filter(|&&c| c >= threshold).count() as f64
        / provider_counts.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_counts_strictly_above_threshold() {
        let counts = vec![55, 40, 30, 10, 5, 2, 2, 1];
        let cdf = attribute_coverage_cdf(&counts, &[5, 10, 20, 30, 40, 50]);
        assert_eq!(cdf.len(), 6);
        assert!((cdf[0].fraction_of_attributes - 4.0 / 8.0).abs() < 1e-12); // > 5
        assert!((cdf[1].fraction_of_attributes - 3.0 / 8.0).abs() < 1e-12); // > 10
        assert!((cdf[5].fraction_of_attributes - 1.0 / 8.0).abs() < 1e-12); // > 50
        // Monotone non-increasing.
        for w in cdf.windows(2) {
            assert!(w[0].fraction_of_attributes >= w[1].fraction_of_attributes);
        }
    }

    #[test]
    fn fraction_covered_matches_paper_style_quote() {
        // 4 attrs out of 8 covered by at least one third of 55 sources (≥ 19).
        let counts = vec![55, 40, 30, 19, 18, 2, 2, 1];
        let f = fraction_covered_by(&counts, 55, 1.0 / 3.0);
        assert!((f - 4.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_safe() {
        let cdf = attribute_coverage_cdf(&[], &default_thresholds());
        assert!(cdf.iter().all(|p| p.fraction_of_attributes == 0.0));
        assert_eq!(fraction_covered_by(&[], 10, 0.5), 0.0);
    }
}
