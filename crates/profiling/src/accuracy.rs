//! Source accuracy and its stability over time (Section 3.3, Figure 8,
//! Table 4).
//!
//! The accuracy of a source is the fraction of its provided values that agree
//! with the gold standard, over the items the gold standard covers; coverage
//! is the fraction of gold items the source provides. Accuracy deviation is
//! the standard deviation of a source's accuracy across the collection days.

use datamodel::{stddev, Collection, GoldStandard, Snapshot, SourceId};
use serde::Serialize;
use std::collections::BTreeMap;

/// Accuracy and coverage of one source on one snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct SourceAccuracy {
    /// The source.
    pub source: SourceId,
    /// Source name.
    pub name: String,
    /// Whether the source is flagged as authoritative in the schema.
    pub authority: bool,
    /// Fraction of gold-covered provided items whose value matches the gold
    /// standard. `None` when the source provides no gold-covered item.
    pub accuracy: Option<f64>,
    /// Fraction of gold items the source provides.
    pub coverage: f64,
    /// Number of gold-covered items the source provides.
    pub judged_items: usize,
}

/// Accuracy of one source across the days of a collection.
#[derive(Debug, Clone, Serialize)]
pub struct SourceAccuracyOverTime {
    /// The source.
    pub source: SourceId,
    /// Source name.
    pub name: String,
    /// Per-day accuracy (days where the source provides no gold item are
    /// skipped).
    pub daily_accuracy: Vec<f64>,
    /// Mean accuracy over the period.
    pub mean_accuracy: f64,
    /// Standard deviation of the accuracy over the period (Figure 8(b)).
    pub accuracy_deviation: f64,
}

/// Accuracy and coverage of one source on one snapshot.
pub fn source_accuracy(
    snapshot: &Snapshot,
    gold: &GoldStandard,
    source: SourceId,
) -> SourceAccuracy {
    let info = snapshot.schema().source(source);
    let mut judged = 0usize;
    let mut correct = 0usize;
    let mut provided_gold_items = 0usize;
    for (item, truth) in gold.iter() {
        if let Some(value) = snapshot.value_of(source, *item) {
            provided_gold_items += 1;
            let tol = snapshot.tolerance().tolerance(item.attr);
            judged += 1;
            if truth.matches(value, tol) || value.subsumes(truth) {
                correct += 1;
            }
        }
    }
    SourceAccuracy {
        source,
        name: info.name.clone(),
        authority: info.authority,
        accuracy: if judged == 0 {
            None
        } else {
            Some(correct as f64 / judged as f64)
        },
        coverage: provided_gold_items as f64 / gold.len().max(1) as f64,
        judged_items: judged,
    }
}

/// Accuracy and coverage of every active source of the snapshot.
pub fn source_accuracies(snapshot: &Snapshot, gold: &GoldStandard) -> Vec<SourceAccuracy> {
    snapshot
        .active_sources()
        .into_iter()
        .map(|s| source_accuracy(snapshot, gold, s))
        .collect()
}

/// Distribution of source accuracies over the Figure-8(a) bins
/// `[0,.1), [.1,.2), ..., [.9,1]`.
pub fn accuracy_histogram(accuracies: &[SourceAccuracy]) -> Vec<f64> {
    let values: Vec<f64> = accuracies.iter().filter_map(|a| a.accuracy).collect();
    let n = values.len().max(1) as f64;
    let mut bins = vec![0.0; 10];
    for v in values {
        let idx = ((v * 10.0).floor() as usize).min(9);
        bins[idx] += 1.0 / n;
    }
    bins
}

/// Per-source accuracy trajectory over a collection (Figure 8(b)).
pub fn accuracy_over_time(collection: &Collection) -> Vec<SourceAccuracyOverTime> {
    accuracy_over_time_from_daily(
        collection
            .days()
            .map(|day| source_accuracies(&day.snapshot, &day.gold)),
    )
}

/// Merge per-day accuracy measurements (one `Vec<SourceAccuracy>` per day,
/// in day order) into per-source trajectories. Split out from
/// [`accuracy_over_time`] so the per-day measurements can be computed on a
/// parallel runner and merged here.
pub fn accuracy_over_time_from_daily(
    per_day: impl IntoIterator<Item = Vec<SourceAccuracy>>,
) -> Vec<SourceAccuracyOverTime> {
    let mut daily: BTreeMap<SourceId, Vec<f64>> = BTreeMap::new();
    let mut names: BTreeMap<SourceId, String> = BTreeMap::new();
    for day_accuracies in per_day {
        for acc in day_accuracies {
            names.entry(acc.source).or_insert_with(|| acc.name.clone());
            if let Some(a) = acc.accuracy {
                daily.entry(acc.source).or_default().push(a);
            }
        }
    }
    daily
        .into_iter()
        .map(|(source, daily_accuracy)| {
            let mean = datamodel::mean(&daily_accuracy);
            let deviation = stddev(&daily_accuracy);
            SourceAccuracyOverTime {
                source,
                name: names.get(&source).cloned().unwrap_or_default(),
                daily_accuracy,
                mean_accuracy: mean,
                accuracy_deviation: deviation,
            }
        })
        .collect()
}

/// Table 4: accuracy and coverage of the authoritative sources only.
pub fn authority_report(snapshot: &Snapshot, gold: &GoldStandard) -> Vec<SourceAccuracy> {
    source_accuracies(snapshot, gold)
        .into_iter()
        .filter(|a| a.authority)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, DomainSchema, ItemId, ObjectId, SnapshotBuilder, Value};
    use std::sync::Arc;

    fn setup() -> (Snapshot, GoldStandard) {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_source("good", true);
        schema.add_source("bad", false);
        schema.add_source("sparse", false);
        let mut b = SnapshotBuilder::new(0);
        for obj in 0..4 {
            b.add(SourceId(0), ObjectId(obj), AttrId(0), Value::number(100.0));
            // "bad" is wrong on half of the items.
            let bad_value = if obj % 2 == 0 { 100.0 } else { 170.0 };
            b.add(SourceId(1), ObjectId(obj), AttrId(0), Value::number(bad_value));
        }
        b.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(100.0));
        let snap = b.build(Arc::new(schema));
        let mut gold = GoldStandard::new();
        for obj in 0..4 {
            gold.insert(ItemId::new(ObjectId(obj), AttrId(0)), Value::number(100.0));
        }
        (snap, gold)
    }

    #[test]
    fn accuracy_and_coverage() {
        let (snap, gold) = setup();
        let good = source_accuracy(&snap, &gold, SourceId(0));
        assert_eq!(good.accuracy, Some(1.0));
        assert_eq!(good.coverage, 1.0);
        assert!(good.authority);

        let bad = source_accuracy(&snap, &gold, SourceId(1));
        assert_eq!(bad.accuracy, Some(0.5));

        let sparse = source_accuracy(&snap, &gold, SourceId(2));
        assert_eq!(sparse.accuracy, Some(1.0));
        assert!((sparse.coverage - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unjudged_source_has_no_accuracy() {
        let (snap, _) = setup();
        let empty = GoldStandard::new();
        let a = source_accuracy(&snap, &empty, SourceId(0));
        assert_eq!(a.accuracy, None);
        assert_eq!(a.judged_items, 0);
    }

    #[test]
    fn histogram_is_normalized() {
        let (snap, gold) = setup();
        let accs = source_accuracies(&snap, &gold);
        let hist = accuracy_histogram(&accs);
        assert_eq!(hist.len(), 10);
        assert!((hist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // One source at 0.5 (bin 5), two at 1.0 (bin 9).
        assert!((hist[5] - 1.0 / 3.0).abs() < 1e-9);
        assert!((hist[9] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn authority_report_filters() {
        let (snap, gold) = setup();
        let report = authority_report(&snap, &gold);
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "good");
    }

    #[test]
    fn over_time_deviation() {
        let (snap, gold) = setup();
        let mut collection = Collection::new(snap.schema_arc());
        collection.push_day(snap.clone(), gold.clone(), GoldStandard::new());
        collection.push_day(snap, gold, GoldStandard::new());
        let over_time = accuracy_over_time(&collection);
        assert_eq!(over_time.len(), 3);
        for s in &over_time {
            assert_eq!(s.daily_accuracy.len(), 2);
            assert!(s.accuracy_deviation.abs() < 1e-12);
        }
    }
}
