//! Heap-allocation counting for the efficiency experiments.
//!
//! The batch evaluation's warm-arena claim is "near-zero steady-state
//! allocation"; the `exp_fig8_accuracy --batch` / `exp_fig12_efficiency
//! --batch` modes make that measurable by installing [`CountingAllocator`]
//! as the binary's global allocator and reporting the
//! [`allocation_count`] delta around each evaluation pass:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: profiling::CountingAllocator = profiling::CountingAllocator::new();
//!
//! let before = profiling::allocation_count();
//! run_pass();
//! println!("{} allocations", profiling::allocation_count() - before);
//! ```
//!
//! The counter is a single relaxed atomic increment per `alloc` /
//! `alloc_zeroed` / `realloc` call (frees are not counted), cheap enough to
//! leave enabled in measurement binaries; library crates never install it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed global allocator that counts every allocation
/// (including zeroed allocations and reallocations). Install with
/// `#[global_allocator]` in a measurement binary and read the running total
/// with [`allocation_count`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAllocator;

impl CountingAllocator {
    /// The allocator value to place in a `#[global_allocator]` static.
    pub const fn new() -> Self {
        Self
    }
}

// SAFETY: every call is forwarded verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATION_COUNT.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Number of heap allocations performed since process start **when
/// [`CountingAllocator`] is installed as the global allocator**; stays 0
/// otherwise. Subtract two readings to count the allocations of a region.
pub fn allocation_count() -> u64 {
    ALLOCATION_COUNT.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the counter only
    // moves if some other binary-level harness installed it; both behaviors
    // are monotone.
    #[test]
    fn counter_is_monotone() {
        let a = allocation_count();
        let _v: Vec<u64> = (0..1024).collect();
        let b = allocation_count();
        assert!(b >= a);
    }

    #[test]
    fn allocator_forwards_to_system() {
        // Exercise the GlobalAlloc impl directly (without installing it).
        let alloc = CountingAllocator::new();
        let before = allocation_count();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = alloc.alloc(layout);
            assert!(!p.is_null());
            let p = alloc.realloc(p, layout, 128);
            assert!(!p.is_null());
            alloc.dealloc(p, Layout::from_size_align(128, 8).unwrap());
            let z = alloc.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(*z, 0);
            alloc.dealloc(z, layout);
        }
        assert!(allocation_count() >= before + 3);
    }
}
