//! Attribution of value inconsistency to reasons (Section 3.2, Figure 6).
//!
//! The paper manually inspects a sample of inconsistent data items and
//! attributes each to a reason (semantics ambiguity, instance ambiguity,
//! out-of-date data, unit error, pure error). With generated data the reason
//! behind every erroneous claim is known, so the attribution can be computed
//! exactly: every inconsistent item is labelled with the most common reason
//! among its erroneous claims, and Figure 6 reports the distribution of those
//! labels.

use datagen::{DayProvenance, InconsistencyReason};
use datamodel::Snapshot;
use serde::Serialize;

/// Share of inconsistent items attributed to one reason.
#[derive(Debug, Clone, Serialize)]
pub struct ReasonShare {
    /// Human-readable reason label.
    pub reason: String,
    /// Fraction of inconsistent items attributed to this reason.
    pub share: f64,
    /// Number of inconsistent items attributed to this reason.
    pub items: usize,
}

/// Figure 6: distribution of inconsistency reasons over the inconsistent
/// items of a snapshot.
pub fn inconsistency_reasons(snapshot: &Snapshot, provenance: &DayProvenance) -> Vec<ReasonShare> {
    let mut counts: Vec<(InconsistencyReason, usize)> = InconsistencyReason::ALL
        .iter()
        .map(|r| (*r, 0usize))
        .collect();
    let mut inconsistent_items = 0usize;

    for item in snapshot.item_ids() {
        let buckets = snapshot.buckets(item);
        if buckets.len() <= 1 {
            continue;
        }
        inconsistent_items += 1;
        let reasons = provenance.item_reasons(item);
        // Attribute the item to its most common error reason (ties broken by
        // the Figure-6 ordering).
        let mut best: Option<(InconsistencyReason, usize)> = None;
        for reason in InconsistencyReason::ALL {
            let count = reasons.get(&reason).copied().unwrap_or(0);
            if count > 0 && best.map(|(_, c)| count > c).unwrap_or(true) {
                best = Some((reason, count));
            }
        }
        let attributed = best.map(|(r, _)| r).unwrap_or(InconsistencyReason::PureError);
        if let Some(slot) = counts.iter_mut().find(|(r, _)| *r == attributed) {
            slot.1 += 1;
        }
    }

    let denom = inconsistent_items.max(1) as f64;
    counts
        .into_iter()
        .map(|(reason, items)| ReasonShare {
            reason: reason.label().to_string(),
            share: items as f64 / denom,
            items,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{generate, stock_config};

    #[test]
    fn shares_sum_to_one_on_generated_data() {
        let domain = generate(&stock_config(5).scaled(0.02, 0.15));
        let shares = inconsistency_reasons(
            domain.reference_snapshot(),
            domain.reference_provenance(),
        );
        assert_eq!(shares.len(), 5);
        let total: f64 = shares.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        // Semantics ambiguity must be the single largest reason in Stock
        // (paper: 46%).
        let semantics = shares
            .iter()
            .find(|s| s.reason == "semantics ambiguity")
            .unwrap();
        assert!(semantics.share > 0.2, "semantics share {}", semantics.share);
    }

    #[test]
    fn consistent_snapshot_has_no_attributions() {
        use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, SourceId, Value};
        use std::sync::Arc;
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("a", AttrKind::Numeric { scale: 1.0 }, false);
        schema.add_source("s0", false);
        schema.add_source("s1", false);
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(1.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(1.0));
        let snap = b.build(Arc::new(schema));
        let shares = inconsistency_reasons(&snap, &DayProvenance::new());
        assert!(shares.iter().all(|s| s.items == 0));
    }
}
