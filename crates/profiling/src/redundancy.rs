//! Redundancy measurements (Section 3.1, Figures 2 and 3).
//!
//! Object (resp. data-item) redundancy is the fraction of sources that
//! provide a particular object (resp. data item). The paper reports the
//! complementary CDF: the percentage of objects/items whose redundancy is
//! above a threshold x.

use datamodel::Snapshot;
use serde::Serialize;

/// Summary of a snapshot's redundancy (the numbers quoted in the paper's
/// Section 3.1 text).
#[derive(Debug, Clone, Serialize)]
pub struct RedundancySummary {
    /// Number of sources active in the snapshot.
    pub num_sources: usize,
    /// Number of objects.
    pub num_objects: usize,
    /// Number of data items.
    pub num_items: usize,
    /// Mean data-item redundancy (paper: 66% Stock, 32% Flight).
    pub mean_item_redundancy: f64,
    /// Mean object redundancy.
    pub mean_object_redundancy: f64,
    /// Fraction of objects with redundancy above 0.5.
    pub objects_above_half: f64,
    /// Fraction of data items with redundancy above 0.5.
    pub items_above_half: f64,
    /// Fraction of sources covering more than half of the data items.
    pub sources_covering_half_items: f64,
}

/// Per-object redundancy values (fraction of sources providing each object).
pub fn object_redundancies(snapshot: &Snapshot) -> Vec<f64> {
    use std::collections::{BTreeMap, BTreeSet};
    let num_sources = snapshot.active_sources().len().max(1) as f64;
    let mut providers: BTreeMap<datamodel::ObjectId, BTreeSet<datamodel::SourceId>> =
        BTreeMap::new();
    for (item, obs) in snapshot.items() {
        let entry = providers.entry(item.object).or_default();
        for o in obs {
            entry.insert(o.source);
        }
    }
    providers
        .values()
        .map(|sources| sources.len() as f64 / num_sources)
        .collect()
}

/// Per-item redundancy values (fraction of sources providing each item).
pub fn item_redundancies(snapshot: &Snapshot) -> Vec<f64> {
    let num_sources = snapshot.active_sources().len().max(1) as f64;
    snapshot
        .items()
        .map(|(_, obs)| obs.len() as f64 / num_sources)
        .collect()
}

/// One point of a complementary-CDF series: fraction of elements whose
/// redundancy is at least `threshold`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CdfPoint {
    /// Redundancy threshold x.
    pub threshold: f64,
    /// Fraction of elements with redundancy ≥ x.
    pub fraction_above: f64,
}

fn ccdf(values: &[f64], thresholds: &[f64]) -> Vec<CdfPoint> {
    let n = values.len().max(1) as f64;
    thresholds
        .iter()
        .map(|&threshold| CdfPoint {
            threshold,
            fraction_above: values.iter().filter(|&&v| v >= threshold).count() as f64 / n,
        })
        .collect()
}

/// Default thresholds used by Figures 2 and 3 (0.0, 0.1, ..., 1.0).
pub fn default_thresholds() -> Vec<f64> {
    (0..=10).map(|i| i as f64 / 10.0).collect()
}

/// The Figure-2 series: fraction of objects with redundancy above x.
pub fn object_redundancy_cdf(snapshot: &Snapshot) -> Vec<CdfPoint> {
    ccdf(&object_redundancies(snapshot), &default_thresholds())
}

/// The Figure-3 series: fraction of data items with redundancy above x.
pub fn item_redundancy_cdf(snapshot: &Snapshot) -> Vec<CdfPoint> {
    ccdf(&item_redundancies(snapshot), &default_thresholds())
}

/// Summary statistics of a snapshot's redundancy.
pub fn redundancy_summary(snapshot: &Snapshot) -> RedundancySummary {
    let objects = object_redundancies(snapshot);
    let items = item_redundancies(snapshot);
    let num_sources = snapshot.active_sources().len();
    let num_items = snapshot.num_items().max(1);

    let sources_covering_half_items = snapshot
        .active_sources()
        .into_iter()
        .filter(|s| snapshot.items_of_source(*s).len() * 2 >= num_items)
        .count() as f64
        / num_sources.max(1) as f64;

    RedundancySummary {
        num_sources,
        num_objects: objects.len(),
        num_items: snapshot.num_items(),
        mean_item_redundancy: datamodel::mean(&items),
        mean_object_redundancy: datamodel::mean(&objects),
        objects_above_half: objects.iter().filter(|&&r| r >= 0.5).count() as f64
            / objects.len().max(1) as f64,
        items_above_half: items.iter().filter(|&&r| r >= 0.5).count() as f64
            / items.len().max(1) as f64,
        sources_covering_half_items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, SourceId, Value};
    use std::sync::Arc;

    fn snapshot() -> Snapshot {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("a", AttrKind::Numeric { scale: 1.0 }, false);
        schema.add_attribute("b", AttrKind::Numeric { scale: 1.0 }, false);
        for i in 0..4 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        // Object 0: attr a provided by all 4 sources, attr b by 1.
        for s in 0..4 {
            b.add(SourceId(s), ObjectId(0), AttrId(0), Value::number(1.0));
        }
        b.add(SourceId(0), ObjectId(0), AttrId(1), Value::number(2.0));
        // Object 1: attr a provided by 2 sources.
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(3.0));
        b.add(SourceId(1), ObjectId(1), AttrId(0), Value::number(3.0));
        b.build(Arc::new(schema))
    }

    #[test]
    fn item_redundancy_values() {
        let snap = snapshot();
        let mut reds = item_redundancies(&snap);
        reds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(reds, vec![0.25, 0.5, 1.0]);
    }

    #[test]
    fn object_redundancy_values() {
        let snap = snapshot();
        let mut reds = object_redundancies(&snap);
        reds.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Object 1 reached by 2/4 sources, object 0 by 4/4.
        assert_eq!(reds, vec![0.5, 1.0]);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let snap = snapshot();
        let cdf = item_redundancy_cdf(&snap);
        assert_eq!(cdf.len(), 11);
        assert_eq!(cdf[0].fraction_above, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].fraction_above >= w[1].fraction_above);
        }
        for p in &cdf {
            assert!(p.fraction_above >= 0.0 && p.fraction_above <= 1.0);
        }
    }

    #[test]
    fn summary_statistics() {
        let snap = snapshot();
        let s = redundancy_summary(&snap);
        assert_eq!(s.num_sources, 4);
        assert_eq!(s.num_objects, 2);
        assert_eq!(s.num_items, 3);
        assert!((s.mean_item_redundancy - (0.25 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
        assert!((s.items_above_half - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.objects_above_half, 1.0);
        // Sources 0 and 1 provide ≥ 2 of the 3 items.
        assert!((s.sources_covering_half_items - 0.5).abs() < 1e-12);
    }
}
