//! Dominant-value analysis (Section 3.2, Figure 7, Figure 8(c)).
//!
//! The dominant value of an item is the bucketed value with the largest
//! number of providers. The paper measures the distribution of *dominance
//! factors* (the fraction of an item's providers supporting the dominant
//! value) and the precision of dominant values — overall, per dominance-
//! factor bin, and over time. Choosing dominant values is exactly the VOTE
//! fusion strategy, so [`dominant_value_precision`] is also VOTE's precision.

use datamodel::{Collection, GoldStandard, ItemId, Snapshot};
use serde::Serialize;

/// Dominance information of one data item.
#[derive(Debug, Clone, Serialize)]
pub struct ItemDominance {
    /// The data item.
    pub item: ItemId,
    /// Dominance factor F(d) = |S̄(d, v0)| / |S̄(d)|.
    pub factor: f64,
    /// Whether the dominant value agrees with the gold standard (`None` when
    /// the gold standard does not cover the item).
    pub dominant_correct: Option<bool>,
}

/// One dominance-factor bin of Figure 7.
#[derive(Debug, Clone, Serialize)]
pub struct DominanceBucket {
    /// Lower edge of the bin (bins are `[lo, lo + 0.1)`, the last one
    /// includes 1.0).
    pub factor_low: f64,
    /// Fraction of items whose dominance factor falls in this bin.
    pub fraction_of_items: f64,
    /// Precision of dominant values among the gold-covered items of the bin.
    pub precision: f64,
    /// Number of gold-covered items in the bin.
    pub gold_items: usize,
}

/// Full dominance profile of a snapshot (both plots of Figure 7).
#[derive(Debug, Clone, Serialize)]
pub struct DominanceProfile {
    /// Per-bin distribution and precision.
    pub buckets: Vec<DominanceBucket>,
    /// Overall precision of dominant values on gold-covered items.
    pub overall_precision: f64,
    /// Fraction of items with dominance factor above 0.5.
    pub fraction_above_half: f64,
    /// Fraction of items with dominance factor above 0.9.
    pub fraction_above_09: f64,
}

/// Dominance information for every item of the snapshot.
pub fn item_dominances(snapshot: &Snapshot, gold: &GoldStandard) -> Vec<ItemDominance> {
    snapshot
        .item_ids()
        .map(|item| {
            let buckets = snapshot.buckets(item);
            let total: usize = buckets.iter().map(|b| b.support()).sum();
            let dominant = buckets.first();
            let factor = dominant
                .map(|b| b.support() as f64 / total.max(1) as f64)
                .unwrap_or(0.0);
            let dominant_correct = dominant
                .and_then(|b| gold.judge(snapshot, item, &b.representative));
            ItemDominance {
                item,
                factor,
                dominant_correct,
            }
        })
        .collect()
}

/// Overall precision of dominant values on the gold-covered items — the
/// precision of the VOTE strategy (paper: .908 Stock, .864 Flight).
pub fn dominant_value_precision(snapshot: &Snapshot, gold: &GoldStandard) -> f64 {
    let doms = item_dominances(snapshot, gold);
    let judged: Vec<bool> = doms.iter().filter_map(|d| d.dominant_correct).collect();
    if judged.is_empty() {
        return 0.0;
    }
    judged.iter().filter(|c| **c).count() as f64 / judged.len() as f64
}

/// The Figure-7 profile: dominance-factor distribution and per-bin precision.
pub fn dominance_profile(snapshot: &Snapshot, gold: &GoldStandard) -> DominanceProfile {
    let doms = item_dominances(snapshot, gold);
    let n = doms.len().max(1) as f64;
    let mut buckets = Vec::with_capacity(10);
    for bin in 0..10 {
        let lo = bin as f64 / 10.0;
        let hi = lo + 0.1;
        let in_bin: Vec<&ItemDominance> = doms
            .iter()
            .filter(|d| d.factor >= lo && (d.factor < hi || (bin == 9 && d.factor <= 1.0)))
            .collect();
        let judged: Vec<bool> = in_bin.iter().filter_map(|d| d.dominant_correct).collect();
        let precision = if judged.is_empty() {
            0.0
        } else {
            judged.iter().filter(|c| **c).count() as f64 / judged.len() as f64
        };
        buckets.push(DominanceBucket {
            factor_low: lo,
            fraction_of_items: in_bin.len() as f64 / n,
            precision,
            gold_items: judged.len(),
        });
    }
    let overall_precision = dominant_value_precision(snapshot, gold);
    DominanceProfile {
        overall_precision,
        fraction_above_half: doms.iter().filter(|d| d.factor > 0.5).count() as f64 / n,
        fraction_above_09: doms.iter().filter(|d| d.factor > 0.9).count() as f64 / n,
        buckets,
    }
}

/// Figure 8(c): the precision of dominant values for every day of a
/// collection.
pub fn dominant_precision_over_time(collection: &Collection) -> Vec<f64> {
    collection
        .days()
        .map(|day| dominant_value_precision(&day.snapshot, &day.gold))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, SourceId, Value};
    use std::sync::Arc;

    fn setup() -> (Snapshot, GoldStandard) {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        for i in 0..4 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        // Item 0: 3-vs-1, dominant value correct.
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(3), ObjectId(0), AttrId(0), Value::number(150.0));
        // Item 1: 2-vs-2 tie, dominant (deterministically the smaller) wrong.
        b.add(SourceId(0), ObjectId(1), AttrId(0), Value::number(40.0));
        b.add(SourceId(1), ObjectId(1), AttrId(0), Value::number(40.0));
        b.add(SourceId(2), ObjectId(1), AttrId(0), Value::number(80.0));
        b.add(SourceId(3), ObjectId(1), AttrId(0), Value::number(80.0));
        let snap = b.build(Arc::new(schema));
        let mut gold = GoldStandard::new();
        gold.insert(ItemId::new(ObjectId(0), AttrId(0)), Value::number(100.0));
        gold.insert(ItemId::new(ObjectId(1), AttrId(0)), Value::number(80.0));
        (snap, gold)
    }

    #[test]
    fn factors_and_precision() {
        let (snap, gold) = setup();
        let doms = item_dominances(&snap, &gold);
        assert_eq!(doms.len(), 2);
        let d0 = doms
            .iter()
            .find(|d| d.item.object == ObjectId(0))
            .unwrap();
        assert!((d0.factor - 0.75).abs() < 1e-12);
        assert_eq!(d0.dominant_correct, Some(true));
        let d1 = doms
            .iter()
            .find(|d| d.item.object == ObjectId(1))
            .unwrap();
        assert!((d1.factor - 0.5).abs() < 1e-12);
        assert_eq!(d1.dominant_correct, Some(false));
        assert!((dominant_value_precision(&snap, &gold) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn profile_bins_sum_to_one() {
        let (snap, gold) = setup();
        let profile = dominance_profile(&snap, &gold);
        let total: f64 = profile.buckets.iter().map(|b| b.fraction_of_items).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((profile.overall_precision - 0.5).abs() < 1e-12);
        assert!((profile.fraction_above_half - 0.5).abs() < 1e-12);
        assert_eq!(profile.buckets.len(), 10);
    }

    #[test]
    fn uncovered_items_are_excluded_from_precision() {
        let (snap, _) = setup();
        let empty_gold = GoldStandard::new();
        assert_eq!(dominant_value_precision(&snap, &empty_gold), 0.0);
        let profile = dominance_profile(&snap, &empty_gold);
        assert!(profile.buckets.iter().all(|b| b.gold_items == 0));
    }
}
