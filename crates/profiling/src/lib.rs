//! Data-quality profiling: every measurement of Section 3 of the paper.
//!
//! * [`redundancy`] — object and data-item redundancy (Figures 2 and 3);
//! * [`coverage`] — attribute-coverage distribution (Figure 1);
//! * [`inconsistency`] — number of values, entropy (Equation 1), and
//!   deviation (Equation 2) per item and per attribute (Figure 4, Table 3);
//! * [`dominance`] — dominance factors and the precision of dominant values
//!   (Figure 7, Figure 8(c));
//! * [`accuracy`] — source accuracy, coverage, and stability over time
//!   (Figure 8(a)/(b), Table 4);
//! * [`reasons`] — attribution of inconsistency to reasons (Figure 6);
//! * [`copying`] — commonality statistics of copy groups (Table 5);
//! * [`alloc`] — allocation counting for the efficiency binaries (the
//!   `--batch` modes report heap-allocation deltas per evaluation pass).

pub mod accuracy;
pub mod alloc;
pub mod copying;
pub mod coverage;
pub mod dominance;
pub mod inconsistency;
pub mod reasons;
pub mod redundancy;

pub use accuracy::{
    accuracy_histogram, accuracy_over_time, accuracy_over_time_from_daily, authority_report,
    source_accuracies, source_accuracy, SourceAccuracy, SourceAccuracyOverTime,
};
pub use alloc::{allocation_count, CountingAllocator};
pub use copying::{all_copy_group_stats, copy_group_stats, value_commonality, CopyGroupStats};
pub use coverage::{attribute_coverage_cdf, fraction_covered_by, CoveragePoint};
pub use dominance::{
    dominance_profile, dominant_precision_over_time, dominant_value_precision, item_dominances,
    DominanceBucket, DominanceProfile, ItemDominance,
};
pub use inconsistency::{
    all_item_inconsistencies, attribute_inconsistency, dominant_value, item_inconsistency,
    snapshot_inconsistency, AttributeInconsistency, InconsistencyDistributions, ItemInconsistency,
};
pub use reasons::{inconsistency_reasons, ReasonShare};
pub use redundancy::{
    item_redundancies, item_redundancy_cdf, object_redundancies, object_redundancy_cdf,
    redundancy_summary, CdfPoint, RedundancySummary,
};
