//! Value-inconsistency measurements (Section 3.2, Figure 4, Table 3).
//!
//! For every data item the paper measures:
//! * the **number of different values** after bucketing,
//! * the **entropy** of the value distribution (Equation 1),
//! * the **deviation** of numerical values from the dominant value
//!   (Equation 2) — relative for general numeric attributes, absolute in
//!   minutes for time attributes.

use datamodel::{entropy, AttrId, ItemId, Snapshot, Value, ValueKind};
use serde::Serialize;
use std::collections::BTreeMap;

/// Inconsistency measures of one data item.
#[derive(Debug, Clone, Serialize)]
pub struct ItemInconsistency {
    /// The data item.
    pub item: ItemId,
    /// Number of providers.
    pub num_providers: usize,
    /// Number of different values after bucketing.
    pub num_values: usize,
    /// Entropy of the bucketed value distribution (Equation 1).
    pub entropy: f64,
    /// Deviation of the values from the dominant value (Equation 2); `None`
    /// for non-numeric items or items with a single value.
    pub deviation: Option<f64>,
}

/// Aggregate inconsistency of one attribute (one row of Table 3).
#[derive(Debug, Clone, Serialize)]
pub struct AttributeInconsistency {
    /// The attribute.
    pub attr: AttrId,
    /// Attribute name.
    pub name: String,
    /// Mean number of values per item.
    pub mean_num_values: f64,
    /// Mean entropy per item.
    pub mean_entropy: f64,
    /// Mean deviation per item (over items where it is defined).
    pub mean_deviation: f64,
    /// Number of items of this attribute.
    pub num_items: usize,
}

/// Distributions reported in Figure 4.
#[derive(Debug, Clone, Serialize)]
pub struct InconsistencyDistributions {
    /// Histogram of the number of values: index 0 holds the fraction of items
    /// with 1 value, ..., index 8 the fraction with 9, index 9 the fraction
    /// with 10 or more.
    pub num_values_histogram: Vec<f64>,
    /// Histogram of entropy over the Figure-4 bins
    /// `[0,.1), [.1,.2), ..., [.9,1), [1,∞)`. The first bin also counts
    /// zero-entropy (single-value) items.
    pub entropy_histogram: Vec<f64>,
    /// Histogram of deviation over the Figure-4 bins (same binning as
    /// entropy; time deviations are measured in units of 1 minute so the bins
    /// read as `(0,1min), [1,2min), ...`).
    pub deviation_histogram: Vec<f64>,
    /// Fraction of items with more than one value (the paper's "70% of data
    /// items have more than one value" headline).
    pub fraction_conflicting: f64,
    /// Mean number of values per item.
    pub mean_num_values: f64,
    /// Mean entropy per item.
    pub mean_entropy: f64,
    /// Mean deviation per item (where defined).
    pub mean_deviation: f64,
}

/// Compute the inconsistency measures of one item.
pub fn item_inconsistency(snapshot: &Snapshot, item: ItemId) -> ItemInconsistency {
    let buckets = snapshot.buckets(item);
    let num_providers: usize = buckets.iter().map(|b| b.support()).sum();
    let counts: Vec<usize> = buckets.iter().map(|b| b.support()).collect();
    let e = entropy(&counts);
    let deviation = deviation_of(&buckets);
    ItemInconsistency {
        item,
        num_providers,
        num_values: buckets.len(),
        entropy: e,
        deviation,
    }
}

/// Equation 2: root-mean-square relative deviation of each distinct value from
/// the dominant value v0 (absolute difference in minutes for time values).
fn deviation_of(buckets: &[datamodel::ValueBucket]) -> Option<f64> {
    if buckets.is_empty() {
        return None;
    }
    let dominant = &buckets[0].representative;
    let kind = dominant.kind();
    if kind == ValueKind::Text {
        return None;
    }
    let v0 = dominant.as_f64()?;
    let values: Vec<f64> = buckets
        .iter()
        .filter_map(|b| b.representative.as_f64())
        .collect();
    if values.is_empty() {
        return None;
    }
    let sum_sq: f64 = values
        .iter()
        .map(|v| match kind {
            ValueKind::Time => (v - v0) * (v - v0),
            _ => {
                if v0.abs() < f64::EPSILON {
                    0.0
                } else {
                    let rel = (v - v0) / v0;
                    rel * rel
                }
            }
        })
        .sum();
    Some((sum_sq / values.len() as f64).sqrt())
}

/// Per-item inconsistency for every item of the snapshot.
pub fn all_item_inconsistencies(snapshot: &Snapshot) -> Vec<ItemInconsistency> {
    snapshot
        .item_ids()
        .map(|item| item_inconsistency(snapshot, item))
        .collect()
}

/// Table 3: aggregate inconsistency per attribute.
pub fn attribute_inconsistency(snapshot: &Snapshot) -> Vec<AttributeInconsistency> {
    let mut per_attr: BTreeMap<AttrId, Vec<ItemInconsistency>> = BTreeMap::new();
    for inc in all_item_inconsistencies(snapshot) {
        per_attr.entry(inc.item.attr).or_default().push(inc);
    }
    per_attr
        .into_iter()
        .map(|(attr, items)| {
            let num_values: Vec<f64> = items.iter().map(|i| i.num_values as f64).collect();
            let entropies: Vec<f64> = items.iter().map(|i| i.entropy).collect();
            let deviations: Vec<f64> = items.iter().filter_map(|i| i.deviation).collect();
            AttributeInconsistency {
                attr,
                name: snapshot.schema().attribute(attr).name.clone(),
                mean_num_values: datamodel::mean(&num_values),
                mean_entropy: datamodel::mean(&entropies),
                mean_deviation: datamodel::mean(&deviations),
                num_items: items.len(),
            }
        })
        .collect()
}

/// Figure 4: distributions of number-of-values, entropy, and deviation.
pub fn snapshot_inconsistency(snapshot: &Snapshot) -> InconsistencyDistributions {
    let items = all_item_inconsistencies(snapshot);
    let n = items.len().max(1) as f64;

    let mut num_values_histogram = vec![0.0; 10];
    for inc in &items {
        let idx = (inc.num_values.saturating_sub(1)).min(9);
        num_values_histogram[idx] += 1.0 / n;
    }

    let bin_of = |x: f64| -> usize {
        if x >= 1.0 {
            10
        } else {
            (x / 0.1).floor() as usize
        }
    };
    let mut entropy_histogram = vec![0.0; 11];
    for inc in &items {
        entropy_histogram[bin_of(inc.entropy)] += 1.0 / n;
    }

    let deviations: Vec<(f64, ValueKind)> = items
        .iter()
        .filter_map(|inc| {
            inc.deviation.map(|d| {
                let kind = snapshot
                    .schema()
                    .attribute(inc.item.attr)
                    .kind
                    .value_kind();
                (d, kind)
            })
        })
        .collect();
    let dn = deviations.len().max(1) as f64;
    let mut deviation_histogram = vec![0.0; 11];
    for (d, kind) in &deviations {
        // Time deviations are binned per minute (Figure 4's right plot).
        let x = match kind {
            ValueKind::Time => d / 10.0,
            _ => *d,
        };
        deviation_histogram[bin_of(x)] += 1.0 / dn;
    }

    let conflicting = items.iter().filter(|i| i.num_values > 1).count() as f64 / n;
    let nv: Vec<f64> = items.iter().map(|i| i.num_values as f64).collect();
    let ent: Vec<f64> = items.iter().map(|i| i.entropy).collect();
    let devs: Vec<f64> = deviations.iter().map(|(d, _)| *d).collect();

    InconsistencyDistributions {
        num_values_histogram,
        entropy_histogram,
        deviation_histogram,
        fraction_conflicting: conflicting,
        mean_num_values: datamodel::mean(&nv),
        mean_entropy: datamodel::mean(&ent),
        mean_deviation: datamodel::mean(&devs),
    }
}

/// Helper for tests and experiments: the dominant (most-provided) value of an
/// item, if any.
pub fn dominant_value(snapshot: &Snapshot, item: ItemId) -> Option<Value> {
    snapshot.buckets(item).first().map(|b| b.representative.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrKind, DomainSchema, ObjectId, SnapshotBuilder, SourceId};
    use std::sync::Arc;

    fn snapshot() -> Snapshot {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_attribute("depart", AttrKind::Time, false);
        schema.add_attribute("gate", AttrKind::Categorical { cardinality: 10 }, false);
        for i in 0..4 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        // price of object 0: three agree, one off by 50%.
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(100.3));
        b.add(SourceId(3), ObjectId(0), AttrId(0), Value::number(150.0));
        // departure time of object 0: two values 30 minutes apart.
        b.add(SourceId(0), ObjectId(0), AttrId(1), Value::time(600));
        b.add(SourceId(1), ObjectId(0), AttrId(1), Value::time(630));
        // gate: single value.
        b.add(SourceId(0), ObjectId(0), AttrId(2), Value::text("B1"));
        b.build(Arc::new(schema))
    }

    use datamodel::AttrId;

    #[test]
    fn item_measures() {
        let snap = snapshot();
        let inc = item_inconsistency(&snap, ItemId::new(ObjectId(0), AttrId(0)));
        assert_eq!(inc.num_providers, 4);
        assert_eq!(inc.num_values, 2);
        // 3-vs-1 split entropy ≈ 0.811.
        assert!((inc.entropy - 0.8113).abs() < 1e-3);
        // Deviation: sqrt(((0)^2 + (0.5)^2)/2) ≈ 0.354.
        assert!((inc.deviation.unwrap() - 0.3536).abs() < 1e-3);
    }

    #[test]
    fn time_deviation_is_absolute_minutes() {
        let snap = snapshot();
        let inc = item_inconsistency(&snap, ItemId::new(ObjectId(0), AttrId(1)));
        assert_eq!(inc.num_values, 2);
        // Deviation = sqrt((0 + 30^2)/2) ≈ 21.2 minutes.
        assert!((inc.deviation.unwrap() - 21.21).abs() < 0.1);
    }

    #[test]
    fn text_items_have_no_deviation() {
        let snap = snapshot();
        let inc = item_inconsistency(&snap, ItemId::new(ObjectId(0), AttrId(2)));
        assert_eq!(inc.num_values, 1);
        assert_eq!(inc.entropy, 0.0);
        assert!(inc.deviation.is_none());
    }

    #[test]
    fn attribute_aggregates() {
        let snap = snapshot();
        let per_attr = attribute_inconsistency(&snap);
        assert_eq!(per_attr.len(), 3);
        let price = per_attr.iter().find(|a| a.name == "price").unwrap();
        assert_eq!(price.num_items, 1);
        assert!((price.mean_num_values - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distributions_are_normalized() {
        let snap = snapshot();
        let dist = snapshot_inconsistency(&snap);
        let sum_nv: f64 = dist.num_values_histogram.iter().sum();
        let sum_ent: f64 = dist.entropy_histogram.iter().sum();
        assert!((sum_nv - 1.0).abs() < 1e-9);
        assert!((sum_ent - 1.0).abs() < 1e-9);
        assert!((dist.fraction_conflicting - 2.0 / 3.0).abs() < 1e-9);
        assert!(dist.mean_num_values > 1.0);
    }

    #[test]
    fn dominant_value_is_majority() {
        let snap = snapshot();
        assert_eq!(
            dominant_value(&snap, ItemId::new(ObjectId(0), AttrId(0))),
            Some(Value::number(100.0))
        );
        assert_eq!(dominant_value(&snap, ItemId::new(ObjectId(5), AttrId(0))), None);
    }
}
