//! Data-fusion (truth-discovery) methods.
//!
//! This crate implements every fusion method compared in the paper
//! (Table 6), behind one [`FusionMethod`] trait:
//!
//! | Category | Methods |
//! |---|---|
//! | Baseline | [`methods::Vote`] |
//! | Web-link based | [`methods::Hub`], [`methods::AvgLog`], [`methods::Invest`], [`methods::PooledInvest`] |
//! | IR based | [`methods::Cosine`], [`methods::TwoEstimates`], [`methods::ThreeEstimates`] |
//! | Bayesian based | [`methods::TruthFinder`], [`methods::Accu`] (ACCUPR, POPACCU, ACCUSIM, ACCUFORMAT and their per-attribute variants) |
//! | Copying affected | [`methods::AccuCopy`] |
//!
//! All methods run over a [`FusionProblem`] prepared once from a
//! [`datamodel::Snapshot`] (tolerance-bucketed candidate values, similarity
//! and formatting relations, provider lists) and produce a [`FusionResult`]
//! (selected value per item, final trust estimates, rounds, wall time).
//!
//! The usual entry point is [`registry::all_methods`], which returns the
//! sixteen paper configurations in Table-7 order, or
//! [`registry::method_by_name`].

#![deny(missing_docs)]

pub mod chunking;
pub mod copymatrix;
pub mod delta;
pub mod kernels;
pub mod methods;
pub mod problem;
pub mod registry;
pub mod types;

pub use chunking::{ChunkPlan, ChunkPlans};
pub use copymatrix::CopyMatrix;
pub use delta::{AdvanceReport, DeltaEngine, DeltaMode, DeltaPolicy, RunReport};
pub use methods::FusionMethod;
pub use problem::{Candidate, FusionProblem, PreparedItem, ProblemBuilder};
pub use registry::{all_methods, method_by_name, MethodCategory};
pub use types::{
    AttrTrust, FusionOptions, FusionResult, FusionScratch, TrustEstimate, VotePlane,
};
