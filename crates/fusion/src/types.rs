//! Options, trust estimates, vote storage, and results shared by all fusion
//! methods.

use crate::copymatrix::CopyMatrix;
use crate::kernels;
use crate::problem::FusionProblem;
use datamodel::{ItemId, Value};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Options controlling a fusion run.
#[derive(Debug, Clone, Default)]
pub struct FusionOptions {
    /// Maximum number of iterative rounds (ignored by VOTE).
    pub max_rounds: usize,
    /// Convergence threshold on the L∞ change of source trust between rounds.
    pub epsilon: f64,
    /// Sampled source trustworthiness supplied as input, indexed like
    /// `FusionProblem::sources`. When present the method uses it directly and
    /// performs a single vote-and-select pass — the paper's "precision with
    /// trust" columns.
    pub input_trust: Option<Vec<f64>>,
    /// Distinguish trustworthiness per attribute (the `*ATTR` variants).
    pub per_attribute_trust: bool,
    /// Known copy probabilities per unordered dense source-index pair, fed to
    /// copy-aware methods instead of running detection (the paper's
    /// "ignore copiers of Table 5" oracle experiments).
    pub known_copy_probabilities: Option<CopyMatrix>,
    /// Number of intra-snapshot chunks the per-round walks split into
    /// (see [`crate::chunking`]): `0` or `1` keeps every method on the
    /// sequential path; `n > 1` cuts the candidate/item axis into `n`
    /// weight-balanced ranges run on rayon, bit-identical to sequential.
    pub intra_day_chunks: usize,
    /// Warm-start trust for the iterative methods, indexed like
    /// `FusionProblem::sources`: slots with a finite value seed the first
    /// round's trust estimate; `NaN` slots (and any missing tail) fall back
    /// to the method's default prior. Unlike [`input_trust`], this does
    /// **not** cap the run at a single round — iteration proceeds normally,
    /// it just starts from the supplied point instead of the uniform prior,
    /// which is how the delta engine's `bounded` mode carries yesterday's
    /// converged trust into today's re-fusion. Ignored when `input_trust`
    /// is set (sampled trust already pins the estimate).
    ///
    /// [`input_trust`]: Self::input_trust
    pub warm_start_trust: Option<Vec<f64>>,
}

impl FusionOptions {
    /// Default options: at most 20 rounds, ε = 1e-4, no input trust.
    pub fn standard() -> Self {
        Self {
            max_rounds: 20,
            epsilon: 1e-4,
            input_trust: None,
            per_attribute_trust: false,
            known_copy_probabilities: None,
            intra_day_chunks: 0,
            warm_start_trust: None,
        }
    }

    /// Enable per-attribute trust.
    pub fn with_per_attribute_trust(mut self) -> Self {
        self.per_attribute_trust = true;
        self
    }

    /// Provide sampled trust as input.
    pub fn with_input_trust(mut self, trust: Vec<f64>) -> Self {
        self.input_trust = Some(trust);
        self
    }

    /// Provide known copy probabilities (dense source-index pairs).
    pub fn with_known_copying(mut self, probs: CopyMatrix) -> Self {
        self.known_copy_probabilities = Some(probs);
        self
    }

    /// Request intra-snapshot chunking of the per-round walks (see
    /// [`crate::chunking`]); `0` or `1` means sequential.
    pub fn with_intra_day_chunks(mut self, chunks: usize) -> Self {
        self.intra_day_chunks = chunks;
        self
    }

    /// Seed the iterative methods' first round with `trust` instead of the
    /// uniform prior (see [`Self::warm_start_trust`]).
    pub fn with_warm_start_trust(mut self, trust: Vec<f64>) -> Self {
        self.warm_start_trust = Some(trust);
        self
    }

    /// Effective maximum number of rounds (at least one).
    pub fn rounds(&self) -> usize {
        self.max_rounds.max(1)
    }
}

/// Per-(source, attribute) trust in structure-of-arrays layout: one flat
/// `Vec<f64>` indexed `source * num_attrs + attr`, so the `*ATTR` variants'
/// inner `trust.of(s, attr)` reads are a single cache-linear index instead of
/// one heap hop per source row.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrTrust {
    num_attrs: usize,
    /// Flat values, indexed `source * num_attrs + attr`.
    values: Vec<f64>,
}

impl AttrTrust {
    /// A matrix with every entry set to `value`.
    pub fn filled(num_sources: usize, num_attrs: usize, value: f64) -> Self {
        Self {
            num_attrs,
            values: vec![value; num_sources * num_attrs],
        }
    }

    /// Number of attributes per source (the row stride).
    pub fn num_attrs(&self) -> usize {
        self.num_attrs
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.values.len().checked_div(self.num_attrs).unwrap_or(0)
    }

    /// Trust of `source` on attribute `attr`.
    #[inline]
    pub fn of(&self, source: usize, attr: usize) -> f64 {
        debug_assert!(attr < self.num_attrs);
        self.values[source * self.num_attrs + attr]
    }

    /// Set the trust of `source` on attribute `attr`.
    #[inline]
    pub fn set(&mut self, source: usize, attr: usize, value: f64) {
        debug_assert!(attr < self.num_attrs);
        self.values[source * self.num_attrs + attr] = value;
    }

    /// The per-attribute row of one source.
    #[inline]
    pub fn row(&self, source: usize) -> &[f64] {
        &self.values[source * self.num_attrs..(source + 1) * self.num_attrs]
    }

    /// Mutable per-attribute row of one source.
    #[inline]
    pub fn row_mut(&mut self, source: usize) -> &mut [f64] {
        &mut self.values[source * self.num_attrs..(source + 1) * self.num_attrs]
    }

    /// All values, source-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to all values, source-major.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }
}

/// Final trust estimates of a fusion run.
///
/// Iterative convergence is defined on the [`overall`](Self::overall) vector
/// **only**: [`max_change`](Self::max_change) ignores `per_attr` entirely, so
/// the `*ATTR` variants stop exactly when their overall trust stabilizes even
/// if individual (source, attribute) cells are still moving. This is pinned
/// by a regression test and must survive representation changes.
#[derive(Debug, Clone)]
pub struct TrustEstimate {
    /// Per-source trust, indexed like `FusionProblem::sources`.
    pub overall: Vec<f64>,
    /// Per-(source, attribute) trust for the `*ATTR` variants, in flat SoA
    /// layout (see [`AttrTrust`]).
    pub per_attr: Option<AttrTrust>,
}

impl TrustEstimate {
    /// A uniform estimate (used as the starting point of iteration).
    pub fn uniform(num_sources: usize, num_attrs: usize, value: f64, per_attr: bool) -> Self {
        Self {
            overall: vec![value; num_sources],
            per_attr: per_attr.then(|| AttrTrust::filled(num_sources, num_attrs, value)),
        }
    }

    /// Trust of `source` when voting on attribute `attr`.
    #[inline]
    pub fn of(&self, source: usize, attr: usize) -> f64 {
        match &self.per_attr {
            Some(pa) => pa.of(source, attr),
            None => self.overall[source],
        }
    }

    /// L∞ distance between two estimates' **overall** vectors — the
    /// convergence check. Per-attribute trust deliberately does not
    /// participate (see the type-level docs).
    pub fn max_change(&self, other: &TrustEstimate) -> f64 {
        self.overall
            .iter()
            .zip(&other.overall)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Per-candidate vote (score, probability, confidence…) storage for one
/// fusion round: a single flat `Vec<f64>` over the problem's global candidate
/// axis plus the same item → candidate offset table the problem uses.
///
/// Replaces the `Vec<Vec<f64>>` the methods used to allocate every round:
/// one plane is created per run and re-filled in place, so the inner vote
/// loop is a gather-multiply-add over contiguous slices the compiler can
/// vectorize, and per-round allocations disappear.
#[derive(Debug, Clone, PartialEq)]
pub struct VotePlane {
    /// `num_items + 1` offsets into `values` (clone of
    /// [`FusionProblem::item_cand_offsets`]).
    offsets: Vec<u32>,
    /// One value per global candidate, item-major.
    values: Vec<f64>,
}

impl VotePlane {
    /// A zeroed plane spanning every candidate of `problem`.
    pub fn for_problem(problem: &FusionProblem) -> Self {
        let mut plane = Self::empty();
        plane.reset_for(problem);
        plane
    }

    /// A plane spanning no items (the state a scratch plane holds before its
    /// first [`reset_for`](Self::reset_for)).
    pub fn empty() -> Self {
        Self {
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// Re-shape the plane for `problem` and zero every slot, keeping the
    /// existing capacity. A plane freshly [`reset_for`](Self::reset_for) a
    /// problem is indistinguishable from [`for_problem`](Self::for_problem)
    /// on it, so warm reuse across differently-shaped problems cannot leak
    /// state between runs.
    pub fn reset_for(&mut self, problem: &FusionProblem) {
        self.offsets.clear();
        self.offsets.extend_from_slice(problem.item_cand_offsets());
        self.values.clear();
        self.values.resize(problem.num_candidates(), 0.0);
    }

    /// Build a plane from nested per-item rows (test and migration
    /// convenience — the hot paths never materialize nested rows).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0u32);
        let mut values = Vec::new();
        for row in rows {
            values.extend_from_slice(row);
            offsets.push(values.len() as u32);
        }
        Self { offsets, values }
    }

    /// Number of items the plane spans.
    pub fn num_items(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of candidate slots.
    pub fn num_candidates(&self) -> usize {
        self.values.len()
    }

    /// The votes of item `i`, one slot per candidate.
    #[inline]
    pub fn item(&self, i: usize) -> &[f64] {
        &self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Mutable votes of item `i`.
    #[inline]
    pub fn item_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.values[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The vote of candidate `c` (local index) of item `i`.
    #[inline]
    pub fn get(&self, i: usize, c: usize) -> f64 {
        self.values[self.offsets[i] as usize + c]
    }

    /// All values, item-major (the order `rescale_to_unit` /
    /// `normalize_by_max` historically saw when the nested rows were
    /// flattened).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The item → candidate offset table (`num_items + 1` entries), shared
    /// layout with [`FusionProblem::item_cand_offsets`]. Exposed for the
    /// kernel-level consumers (SIMD kernels, benches, tests).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Mutable access to all values, item-major.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Set every slot to `x`.
    pub fn fill(&mut self, x: f64) {
        self.values.fill(x);
    }

    /// Accumulate trust-weighted vote counts over `problem`:
    /// `votes[item][candidate] = Σ_{s ∈ providers} trust(s, attr(item))`.
    /// Every slot is overwritten; the plane layout must match `problem`.
    /// Dispatches to the SIMD kernels of [`crate::kernels`].
    pub fn accumulate_weighted_votes(&mut self, problem: &FusionProblem, trust: &TrustEstimate) {
        debug_assert_eq!(self.num_items(), problem.num_items());
        let view = match &trust.per_attr {
            Some(pa) => kernels::TrustView::PerAttr {
                values: pa.values(),
                num_attrs: pa.num_attrs(),
                cand_attrs: problem.cand_attrs(),
            },
            None => kernels::TrustView::Overall(&trust.overall),
        };
        kernels::accumulate_weighted_votes(
            &mut self.values,
            problem.provider_offsets(),
            problem.providers_flat(),
            &view,
        );
    }

    /// Combined [`reset_for`](Self::reset_for) + first
    /// [`accumulate_weighted_votes`](Self::accumulate_weighted_votes): the
    /// plane is re-shaped for `problem` and every slot is overwritten with
    /// the trust-weighted votes in one pass, skipping the intermediate
    /// zero-fill — so the warm batch path touches each vote cache line once
    /// per shard-day instead of twice. Produces exactly the plane that
    /// `reset_for` followed by `accumulate_weighted_votes` would.
    pub fn refill_accumulate(&mut self, problem: &FusionProblem, trust: &TrustEstimate) {
        self.offsets.clear();
        self.offsets.extend_from_slice(problem.item_cand_offsets());
        // Reshape without the zero-fill `reset_for` pays: `resize` only
        // writes the grown tail (truncation is free), and the accumulate
        // kernel overwrites every slot.
        self.values.resize(problem.num_candidates(), 0.0);
        self.accumulate_weighted_votes(problem, trust);
    }

    /// Select, for every item, the candidate with the highest vote, writing
    /// into `selection` (allocation reused). Ties go to the lower candidate
    /// index (the better-supported bucket), which keeps the output
    /// deterministic. Dispatches to the SIMD kernels of [`crate::kernels`].
    pub fn argmax_into(&self, selection: &mut Vec<usize>) {
        kernels::argmax_into(&self.offsets, &self.values, selection);
    }

    /// Carve the plane into the disjoint mutable per-chunk views of `plan`
    /// (`split_at_mut` over the flat value plane, shared offset table) —
    /// the entry point of the intra-snapshot parallel walks of
    /// [`crate::chunking`].
    pub fn chunks_mut(&mut self, plan: &crate::chunking::ChunkPlan) -> Vec<crate::chunking::PlaneChunkMut<'_>> {
        crate::chunking::plane_chunks(&self.offsets, &mut self.values, plan)
    }

    /// Chunked [`accumulate_weighted_votes`](Self::accumulate_weighted_votes):
    /// each chunk runs the same scalar kernel over its candidate sub-range
    /// (the per-candidate provider sums are independent, so any item-range
    /// split is bit-identical to the sequential pass). With `plan` `None`
    /// this *is* the sequential pass.
    pub fn accumulate_weighted_votes_chunked(
        &mut self,
        problem: &FusionProblem,
        trust: &TrustEstimate,
        plan: Option<&crate::chunking::ChunkPlan>,
    ) {
        let Some(plan) = plan else {
            self.accumulate_weighted_votes(problem, trust);
            return;
        };
        debug_assert_eq!(self.num_items(), problem.num_items());
        let chunks = crate::chunking::plane_chunks(&self.offsets, &mut self.values, plan);
        crate::chunking::run_chunks(chunks, |mut chunk| {
            let cands = chunk.cand_range();
            let view = match &trust.per_attr {
                Some(pa) => kernels::TrustView::PerAttr {
                    values: pa.values(),
                    num_attrs: pa.num_attrs(),
                    // The kernel indexes candidate attributes by *local*
                    // enumerate index, so the chunk's sub-slice lines up.
                    cand_attrs: &problem.cand_attrs()[cands.clone()],
                },
                None => kernels::TrustView::Overall(&trust.overall),
            };
            kernels::accumulate_weighted_votes(
                chunk.values_mut(),
                // The provider-offset sub-table stays absolute into the full
                // provider list (the kernel's cursor starts at its first
                // entry, not at 0).
                &problem.provider_offsets()[cands.start..cands.end + 1],
                problem.providers_flat(),
                &view,
            );
        });
    }

    /// Chunked [`refill_accumulate`](Self::refill_accumulate): sequential
    /// reshape (offset copy + resize), then the chunked accumulate — the
    /// kernel overwrites every slot, so the skipped zero-fill is just as
    /// safe as in the sequential fused pass.
    pub fn refill_accumulate_chunked(
        &mut self,
        problem: &FusionProblem,
        trust: &TrustEstimate,
        plan: Option<&crate::chunking::ChunkPlan>,
    ) {
        let Some(plan) = plan else {
            self.refill_accumulate(problem, trust);
            return;
        };
        self.offsets.clear();
        self.offsets.extend_from_slice(problem.item_cand_offsets());
        self.values.resize(problem.num_candidates(), 0.0);
        self.accumulate_weighted_votes_chunked(problem, trust, Some(plan));
    }
}

/// Select, for every item, the candidate with the highest vote (see
/// [`VotePlane::argmax_into`]).
pub fn argmax_selection(votes: &VotePlane) -> Vec<usize> {
    let mut selection = Vec::new();
    votes.argmax_into(&mut selection);
    selection
}

/// In-place variant of [`argmax_selection`] for iterative methods that
/// re-select every round: reuses `selection`'s allocation.
pub fn argmax_selection_into(votes: &VotePlane, selection: &mut Vec<usize>) {
    votes.argmax_into(selection);
}

/// Reusable accumulators for the per-round trust updates: one slot per
/// source for the overall estimate plus the flat `source * num_attrs + attr`
/// S×A accumulators of the `*ATTR` variants. Sized lazily on first use and
/// reused across rounds, methods, and (in the batch runner) days.
#[derive(Debug, Clone, Default)]
pub struct TrustScratch {
    /// Per-source score sums.
    pub(crate) overall_sum: Vec<f64>,
    /// Per-source claim counts.
    pub(crate) overall_count: Vec<usize>,
    /// Per-(source, attribute) score sums, [`AttrTrust`] layout.
    pub(crate) attr_sum: Vec<f64>,
    /// Per-(source, attribute) claim counts, [`AttrTrust`] layout.
    pub(crate) attr_count: Vec<usize>,
}

impl TrustScratch {
    /// Zero the overall accumulators for `num_sources` sources and, when
    /// `per_attr`, the S×A accumulators for `num_attrs` attributes.
    pub(crate) fn reset(&mut self, num_sources: usize, num_attrs: usize, per_attr: bool) {
        self.overall_sum.clear();
        self.overall_sum.resize(num_sources, 0.0);
        self.overall_count.clear();
        self.overall_count.resize(num_sources, 0);
        if per_attr {
            self.attr_sum.clear();
            self.attr_sum.resize(num_sources * num_attrs, 0.0);
            self.attr_count.clear();
            self.attr_count.resize(num_sources * num_attrs, 0);
        }
    }
}

/// Reusable working memory for one [`FusionMethod`] run.
///
/// Every buffer a method's inner rounds need — the candidate-axis
/// [`VotePlane`], the per-item candidate scratch, the per-source and per-item
/// vectors, the trust-update accumulators, and the copy-detection matrix — is
/// re-shaped for the problem at hand (old contents are never read), so one
/// scratch can be reused across methods, runs, and differently-shaped
/// problems with zero steady-state allocation. `FusionMethod::run` creates a
/// throwaway scratch; warm paths (the batch runner's shard arena) hold one
/// and call `FusionMethod::run_with_scratch`.
///
/// [`FusionMethod`]: crate::methods::FusionMethod
#[derive(Debug, Default)]
pub struct FusionScratch {
    /// Candidate-axis plane (probabilities / confidence / votes / estimates).
    pub(crate) plane: VotePlane,
    /// Per-item candidate scratch A (raw scores / votes).
    pub(crate) cand_a: Vec<f64>,
    /// Per-item candidate scratch B (adjusted votes / grown investments).
    pub(crate) cand_b: Vec<f64>,
    /// Per-item scratch (3-ESTIMATES difficulty).
    pub(crate) item_f: Vec<f64>,
    /// Per-source scratch (investments, error rates).
    pub(crate) source_f: Vec<f64>,
    /// Provider-ordering scratch (ACCUCOPY's accuracy-ordered providers).
    pub(crate) providers: Vec<u32>,
    /// Trust-update accumulators.
    pub(crate) trust_acc: TrustScratch,
    /// Detected copy probabilities (ACCUCOPY's per-round re-scoring target).
    pub(crate) copy_probs: CopyMatrix,
}

impl FusionScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for VotePlane {
    /// Same as [`VotePlane::empty`].
    fn default() -> Self {
        Self::empty()
    }
}

/// The outcome of running one fusion method on one prepared snapshot.
#[derive(Debug, Clone)]
pub struct FusionResult {
    /// Name of the method that produced the result.
    pub method: String,
    /// Selected value per data item. Built **after** `elapsed` is captured,
    /// so method timings measure fusion, not map construction.
    pub selected: BTreeMap<ItemId, Value>,
    /// Per-item selected candidate index (aligned with
    /// `FusionProblem::items`).
    pub selection: Vec<usize>,
    /// Final trust estimates.
    pub trust: TrustEstimate,
    /// Number of iterative rounds executed.
    pub rounds: usize,
    /// Wall-clock execution time of the method (excluding problem
    /// preparation and excluding the construction of `selected`).
    pub elapsed: Duration,
}

impl FusionResult {
    /// Build a result from a per-item candidate selection.
    ///
    /// `started` is the instant the method began: the elapsed time is
    /// captured *first*, then the item → value map is materialized, so the
    /// Figure-12 timings never include map construction.
    pub fn from_selection(
        method: &str,
        problem: &FusionProblem,
        selection: Vec<usize>,
        trust: TrustEstimate,
        rounds: usize,
        started: Instant,
    ) -> Self {
        let elapsed = started.elapsed();
        let selected = problem.selection_to_values(&selection);
        Self {
            method: method.to_string(),
            selected,
            selection,
            trust,
            rounds,
            elapsed,
        }
    }

    /// The value selected for `item`, if the item was part of the problem.
    pub fn value_for(&self, item: ItemId) -> Option<&Value> {
        self.selected.get(&item)
    }
}

/// Normalize a slice in place by its maximum (no-op when the maximum is not
/// positive). Used by the web-link methods to prevent unbounded growth.
/// Dispatches to the SIMD kernels of [`crate::kernels`].
pub fn normalize_by_max(xs: &mut [f64]) {
    kernels::normalize_by_max(xs);
}

/// Affine rescaling of a slice to `[0, 1]` (the normalization 2-ESTIMATES and
/// 3-ESTIMATES require). Constant slices map to 0.5. Dispatches to the SIMD
/// kernels of [`crate::kernels`].
pub fn rescale_to_unit(xs: &mut [f64]) {
    kernels::rescale_to_unit(xs);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builders() {
        let opts = FusionOptions::standard()
            .with_per_attribute_trust()
            .with_input_trust(vec![0.9, 0.8]);
        assert!(opts.per_attribute_trust);
        assert_eq!(opts.input_trust.as_ref().unwrap().len(), 2);
        assert_eq!(opts.rounds(), 20);
        assert_eq!(FusionOptions::default().rounds(), 1);
    }

    #[test]
    fn trust_estimate_lookup() {
        let mut t = TrustEstimate::uniform(2, 3, 0.8, true);
        t.per_attr.as_mut().unwrap().set(1, 2, 0.3);
        assert_eq!(t.of(0, 0), 0.8);
        assert_eq!(t.of(1, 2), 0.3);
        let flat = TrustEstimate::uniform(2, 3, 0.5, false);
        assert_eq!(flat.of(1, 2), 0.5);
        assert!((t.max_change(&flat) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn attr_trust_is_source_major() {
        let mut pa = AttrTrust::filled(3, 2, 0.5);
        assert_eq!(pa.num_sources(), 3);
        assert_eq!(pa.num_attrs(), 2);
        pa.set(2, 1, 0.9);
        assert_eq!(pa.of(2, 1), 0.9);
        assert_eq!(pa.row(2), &[0.5, 0.9]);
        assert_eq!(pa.values()[2 * 2 + 1], 0.9);
        pa.row_mut(0)[0] = 0.1;
        assert_eq!(pa.of(0, 0), 0.1);
    }

    /// Regression pin: iterative convergence is defined on `overall` only.
    /// The `*ATTR` variants must keep today's stopping behavior through any
    /// per-attribute representation change — per-attribute cells that still
    /// move between rounds do NOT keep the iteration alive.
    #[test]
    fn max_change_ignores_per_attribute_trust() {
        let a = TrustEstimate {
            overall: vec![0.5, 0.5],
            per_attr: Some(AttrTrust::filled(2, 3, 0.1)),
        };
        let b = TrustEstimate {
            overall: vec![0.5, 0.5],
            per_attr: Some(AttrTrust::filled(2, 3, 0.9)),
        };
        assert_eq!(a.max_change(&b), 0.0, "per-attr changes must not count");
        // And the overall vector alone decides the magnitude.
        let c = TrustEstimate {
            overall: vec![0.5, 0.75],
            per_attr: None,
        };
        assert!((a.max_change(&c) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn argmax_is_deterministic_on_ties() {
        let votes = VotePlane::from_rows(&[vec![1.0, 1.0, 0.5], vec![0.1, 0.9]]);
        assert_eq!(argmax_selection(&votes), vec![0, 1]);
        assert_eq!(
            argmax_selection(&VotePlane::from_rows(&[])),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn vote_plane_layout() {
        let mut plane = VotePlane::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert_eq!(plane.num_items(), 2);
        assert_eq!(plane.num_candidates(), 3);
        assert_eq!(plane.item(0), &[1.0, 2.0]);
        assert_eq!(plane.get(1, 0), 3.0);
        plane.item_mut(1)[0] = 4.0;
        assert_eq!(plane.values(), &[1.0, 2.0, 4.0]);
        plane.fill(0.0);
        assert_eq!(plane.values(), &[0.0; 3]);
    }

    #[test]
    fn normalization_helpers() {
        let mut xs = vec![2.0, 4.0, 1.0];
        normalize_by_max(&mut xs);
        assert_eq!(xs, vec![0.5, 1.0, 0.25]);

        let mut ys = vec![2.0, 4.0, 6.0];
        rescale_to_unit(&mut ys);
        assert_eq!(ys, vec![0.0, 0.5, 1.0]);

        let mut flat = vec![3.0, 3.0];
        rescale_to_unit(&mut flat);
        assert_eq!(flat, vec![0.5, 0.5]);

        let mut zeros = vec![0.0, -1.0];
        normalize_by_max(&mut zeros);
        assert_eq!(zeros, vec![0.0, -1.0]);
    }
}
