//! Options, trust estimates, and results shared by all fusion methods.

use crate::copymatrix::CopyMatrix;
use crate::problem::FusionProblem;
use datamodel::{ItemId, Value};
use std::collections::BTreeMap;
use std::time::Duration;

/// Options controlling a fusion run.
#[derive(Debug, Clone, Default)]
pub struct FusionOptions {
    /// Maximum number of iterative rounds (ignored by VOTE).
    pub max_rounds: usize,
    /// Convergence threshold on the L∞ change of source trust between rounds.
    pub epsilon: f64,
    /// Sampled source trustworthiness supplied as input, indexed like
    /// `FusionProblem::sources`. When present the method uses it directly and
    /// performs a single vote-and-select pass — the paper's "precision with
    /// trust" columns.
    pub input_trust: Option<Vec<f64>>,
    /// Distinguish trustworthiness per attribute (the `*ATTR` variants).
    pub per_attribute_trust: bool,
    /// Known copy probabilities per unordered dense source-index pair, fed to
    /// copy-aware methods instead of running detection (the paper's
    /// "ignore copiers of Table 5" oracle experiments).
    pub known_copy_probabilities: Option<CopyMatrix>,
}

impl FusionOptions {
    /// Default options: at most 20 rounds, ε = 1e-4, no input trust.
    pub fn standard() -> Self {
        Self {
            max_rounds: 20,
            epsilon: 1e-4,
            input_trust: None,
            per_attribute_trust: false,
            known_copy_probabilities: None,
        }
    }

    /// Enable per-attribute trust.
    pub fn with_per_attribute_trust(mut self) -> Self {
        self.per_attribute_trust = true;
        self
    }

    /// Provide sampled trust as input.
    pub fn with_input_trust(mut self, trust: Vec<f64>) -> Self {
        self.input_trust = Some(trust);
        self
    }

    /// Provide known copy probabilities (dense source-index pairs).
    pub fn with_known_copying(mut self, probs: CopyMatrix) -> Self {
        self.known_copy_probabilities = Some(probs);
        self
    }

    /// Effective maximum number of rounds (at least one).
    pub fn rounds(&self) -> usize {
        self.max_rounds.max(1)
    }
}

/// Final trust estimates of a fusion run.
#[derive(Debug, Clone)]
pub struct TrustEstimate {
    /// Per-source trust, indexed like `FusionProblem::sources`.
    pub overall: Vec<f64>,
    /// Per-(source, attribute) trust for the `*ATTR` variants, indexed
    /// `[source][attribute]`.
    pub per_attr: Option<Vec<Vec<f64>>>,
}

impl TrustEstimate {
    /// A uniform estimate (used as the starting point of iteration).
    pub fn uniform(num_sources: usize, num_attrs: usize, value: f64, per_attr: bool) -> Self {
        Self {
            overall: vec![value; num_sources],
            per_attr: per_attr.then(|| vec![vec![value; num_attrs]; num_sources]),
        }
    }

    /// Trust of `source` when voting on attribute `attr`.
    #[inline]
    pub fn of(&self, source: usize, attr: usize) -> f64 {
        match &self.per_attr {
            Some(pa) => pa[source][attr],
            None => self.overall[source],
        }
    }

    /// L∞ distance between two estimates' overall vectors (convergence check).
    pub fn max_change(&self, other: &TrustEstimate) -> f64 {
        self.overall
            .iter()
            .zip(&other.overall)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// The outcome of running one fusion method on one prepared snapshot.
#[derive(Debug, Clone)]
pub struct FusionResult {
    /// Name of the method that produced the result.
    pub method: String,
    /// Selected value per data item.
    pub selected: BTreeMap<ItemId, Value>,
    /// Per-item selected candidate index (aligned with
    /// `FusionProblem::items`).
    pub selection: Vec<usize>,
    /// Final trust estimates.
    pub trust: TrustEstimate,
    /// Number of iterative rounds executed.
    pub rounds: usize,
    /// Wall-clock execution time of the method (excluding problem
    /// preparation).
    pub elapsed: Duration,
}

impl FusionResult {
    /// Build a result from a per-item candidate selection.
    pub fn from_selection(
        method: &str,
        problem: &FusionProblem,
        selection: Vec<usize>,
        trust: TrustEstimate,
        rounds: usize,
        elapsed: Duration,
    ) -> Self {
        let selected = problem.selection_to_values(&selection);
        Self {
            method: method.to_string(),
            selected,
            selection,
            trust,
            rounds,
            elapsed,
        }
    }

    /// The value selected for `item`, if the item was part of the problem.
    pub fn value_for(&self, item: ItemId) -> Option<&Value> {
        self.selected.get(&item)
    }
}

/// Select, for every item, the candidate with the highest vote. Ties go to the
/// lower candidate index (the better-supported bucket), which keeps the
/// output deterministic.
pub fn argmax_selection(votes: &[Vec<f64>]) -> Vec<usize> {
    let mut selection = Vec::new();
    argmax_selection_into(votes, &mut selection);
    selection
}

/// In-place variant of [`argmax_selection`] for iterative methods that
/// re-select every round: reuses `selection`'s allocation.
pub fn argmax_selection_into(votes: &[Vec<f64>], selection: &mut Vec<usize>) {
    selection.clear();
    selection.extend(votes.iter().map(|item_votes| {
        let mut best = 0usize;
        let mut best_vote = f64::NEG_INFINITY;
        for (i, &v) in item_votes.iter().enumerate() {
            if v > best_vote + 1e-12 {
                best = i;
                best_vote = v;
            }
        }
        best
    }));
}

/// Normalize a slice in place by its maximum (no-op when the maximum is not
/// positive). Used by the web-link methods to prevent unbounded growth.
pub fn normalize_by_max(xs: &mut [f64]) {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if max > 0.0 {
        for x in xs.iter_mut() {
            *x /= max;
        }
    }
}

/// Affine rescaling of a slice to `[0, 1]` (the normalization 2-ESTIMATES and
/// 3-ESTIMATES require). Constant slices map to 0.5.
pub fn rescale_to_unit(xs: &mut [f64]) {
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !min.is_finite() || !max.is_finite() {
        return;
    }
    let range = max - min;
    for x in xs.iter_mut() {
        *x = if range > 1e-12 { (*x - min) / range } else { 0.5 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builders() {
        let opts = FusionOptions::standard()
            .with_per_attribute_trust()
            .with_input_trust(vec![0.9, 0.8]);
        assert!(opts.per_attribute_trust);
        assert_eq!(opts.input_trust.as_ref().unwrap().len(), 2);
        assert_eq!(opts.rounds(), 20);
        assert_eq!(FusionOptions::default().rounds(), 1);
    }

    #[test]
    fn trust_estimate_lookup() {
        let mut t = TrustEstimate::uniform(2, 3, 0.8, true);
        t.per_attr.as_mut().unwrap()[1][2] = 0.3;
        assert_eq!(t.of(0, 0), 0.8);
        assert_eq!(t.of(1, 2), 0.3);
        let flat = TrustEstimate::uniform(2, 3, 0.5, false);
        assert_eq!(flat.of(1, 2), 0.5);
        assert!((t.max_change(&flat) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn argmax_is_deterministic_on_ties() {
        let votes = vec![vec![1.0, 1.0, 0.5], vec![0.1, 0.9]];
        assert_eq!(argmax_selection(&votes), vec![0, 1]);
        assert_eq!(argmax_selection(&[]), Vec::<usize>::new());
    }

    #[test]
    fn normalization_helpers() {
        let mut xs = vec![2.0, 4.0, 1.0];
        normalize_by_max(&mut xs);
        assert_eq!(xs, vec![0.5, 1.0, 0.25]);

        let mut ys = vec![2.0, 4.0, 6.0];
        rescale_to_unit(&mut ys);
        assert_eq!(ys, vec![0.0, 0.5, 1.0]);

        let mut flat = vec![3.0, 3.0];
        rescale_to_unit(&mut flat);
        assert_eq!(flat, vec![0.5, 0.5]);

        let mut zeros = vec![0.0, -1.0];
        normalize_by_max(&mut zeros);
        assert_eq!(zeros, vec![0.0, -1.0]);
    }
}
