//! Delta fusion engine: dirty-set re-fusion over warm CSR state.
//!
//! The temporal experiments (Table 9's day-over-day collection, Figure 9's
//! growing source prefixes) re-prepare and re-fuse the entire world on every
//! step, even though consecutive snapshots share the vast majority of
//! claims. [`DeltaEngine`] holds warm state between snapshots — the
//! [`ProblemBuilder`]'s CSR problem, each method's last result and trust
//! vector, and the reusable [`FusionScratch`] (including the copy-pair LLR
//! buffers the copy-aware methods re-score into) — and, given the next
//! snapshot:
//!
//! 1. diffs it against the previous one ([`SnapshotDelta`]),
//! 2. refills only the dirty CSR rows in place
//!    ([`ProblemBuilder::prepare_delta`], splicing clean rows forward), and
//! 3. re-runs fusion with as little work as the configured [`DeltaMode`]
//!    allows, warm-starting trust from the previous day's estimate.
//!
//! # Modes
//!
//! **[`DeltaMode::Exact`]** (the default) guarantees results bit-identical
//! to a cold full-batch run on every day: preparation is delta'd (the
//! dominant data-movement saving — bucketing and the O(k²) similarity pass
//! are skipped for every clean item), the method itself re-runs over the
//! full spliced problem deterministically, and a day whose delta is empty
//! skips both preparation and fusion entirely, returning the cached result.
//! The iterative methods couple every source's trust to every item each
//! round, so any frontier restriction could change low-order float bits;
//! exact mode therefore never restricts the fusion itself. Bit-identity is
//! pinned across all sixteen methods, mutation kinds, and trust modes by
//! `tests/delta_equivalence.rs`.
//!
//! **[`DeltaMode::Bounded`]** additionally restricts fusion to the dirty
//! items plus a trust-propagation frontier: items claimed by sources whose
//! claim sets changed or whose trust moved more than
//! [`DeltaPolicy::trust_frontier_threshold`] on the previous day. The
//! frontier sub-problem (built on a tolerance-pinned sub-snapshot, so every
//! kept item buckets exactly as in the full problem) is fused with the
//! previous day's trust as a warm start, then the sub-selection and
//! sub-trust are spliced into the carried state. Results approximate the
//! cold answer within a tolerance pinned by tests; this is the
//! interactive-latency mode the future online service builds on.
//!
//! Both modes fall back to a full re-preparation + re-fusion when the dirty
//! fraction exceeds [`DeltaPolicy::max_dirty_fraction`] (analogous to how
//! `ChunkPolicy` falls back to sequential), and compose with intra-day
//! chunking: `FusionOptions::intra_day_chunks` passes through untouched and
//! stays invisible in the output.

use crate::methods::FusionMethod;
use crate::problem::ProblemBuilder;
use crate::types::{AttrTrust, FusionOptions, FusionResult, FusionScratch, TrustEstimate};
use datamodel::{ItemId, Snapshot, SnapshotDelta, SourceId};
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// How much re-fusion a [`DeltaEngine`] performs after a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMode {
    /// Bit-identical to a cold full-batch run on every day (the default):
    /// preparation is delta'd, fusion re-runs over the full spliced problem,
    /// and empty-delta days return the cached result without fusing at all.
    Exact,
    /// Fusion is restricted to the dirty items plus the trust-propagation
    /// frontier, warm-starting trust; results approximate the cold answer
    /// within a pinned tolerance.
    Bounded,
}

/// Fall-back and frontier policy of a [`DeltaEngine`] (the delta analogue of
/// `evaluation`'s `ChunkPolicy`).
#[derive(Debug, Clone)]
pub struct DeltaPolicy {
    /// Re-fusion mode (default: [`DeltaMode::Exact`]).
    pub mode: DeltaMode,
    /// When a day's [`SnapshotDelta::dirty_fraction`] exceeds this, the
    /// engine abandons splicing and does a full re-preparation — past this
    /// point the merge-walk bookkeeping costs more than it saves (default:
    /// `0.25`).
    pub max_dirty_fraction: f64,
    /// Bounded mode: sources whose overall trust moved more than this
    /// between runs drag every item they claim into the next day's re-fusion
    /// frontier (default: `1e-3`, matching `FusionOptions::standard`'s
    /// convergence epsilon within an order of magnitude).
    pub trust_frontier_threshold: f64,
}

impl Default for DeltaPolicy {
    fn default() -> Self {
        Self {
            mode: DeltaMode::Exact,
            max_dirty_fraction: 0.25,
            trust_frontier_threshold: 1e-3,
        }
    }
}

impl DeltaPolicy {
    /// The default exact policy.
    pub fn exact() -> Self {
        Self::default()
    }

    /// A bounded policy with the default thresholds.
    pub fn bounded() -> Self {
        Self {
            mode: DeltaMode::Bounded,
            ..Self::default()
        }
    }
}

/// What [`DeltaEngine::advance`] did with one day's snapshot.
#[derive(Debug, Clone)]
pub struct AdvanceReport {
    /// Day index of the snapshot advanced to.
    pub day: u32,
    /// True on the engine's first snapshot (cold full preparation).
    pub first_day: bool,
    /// True when the delta was empty and preparation was skipped entirely.
    pub identical: bool,
    /// True when the engine re-prepared from scratch (first day, or dirty
    /// fraction above [`DeltaPolicy::max_dirty_fraction`]).
    pub full_refresh: bool,
    /// Items whose CSR rows were re-bucketed (dirty or new).
    pub dirty_items: usize,
    /// Items dropped since the previous snapshot.
    pub removed_items: usize,
    /// Sources whose claim sets changed.
    pub dirty_sources: usize,
    /// Sources that entered the snapshot.
    pub added_sources: usize,
    /// Sources that left the snapshot.
    pub removed_sources: usize,
    /// The delta's dirty fraction (`1.0` on the first day).
    pub dirty_fraction: f64,
    /// Wall-clock time of the preparation (diff + refill).
    pub prepare: Duration,
}

/// How one [`DeltaEngine::run`] call satisfied its request.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The engine mode the run executed under.
    pub mode: DeltaMode,
    /// True when the previous result was returned without fusing (empty
    /// delta, compatible options, no pending trust frontier).
    pub cache_hit: bool,
    /// True when the method ran over the full problem (exact mode, cold
    /// state, or a policy fall-back) rather than a frontier sub-problem.
    pub full_run: bool,
    /// Number of items actually re-fused by the method this call.
    pub fused_items: usize,
    /// Total items in the current problem.
    pub total_items: usize,
    /// Bounded mode: number of sources contributing the trust-propagation
    /// frontier (dirty-claim sources plus trust movers).
    pub frontier_sources: usize,
    /// Wall-clock time of this call (fusion + splice; excludes
    /// [`DeltaEngine::advance`]'s preparation).
    pub elapsed: Duration,
}

/// Per-method warm state carried between snapshots.
#[derive(Debug)]
struct MethodWarm {
    /// The options the warm result was produced under (compatibility key).
    options_key: FusionOptions,
    /// Last produced result (selection aligned with `items`, trust aligned
    /// with `sources`).
    result: FusionResult,
    /// Dense source order at the time of the run (sorted by `SourceId`).
    sources: Vec<SourceId>,
    /// Item order at the time of the run (sorted).
    items: Vec<ItemId>,
    /// Sources whose overall trust moved beyond the frontier threshold on
    /// the last bounded run — next run's propagation frontier.
    moved_sources: BTreeSet<SourceId>,
    /// Dirty items accumulated since this method last ran.
    pending_items: BTreeSet<ItemId>,
    /// Dirty sources accumulated since this method last ran.
    pending_sources: BTreeSet<SourceId>,
    /// True when the problem changed at all since this method last ran.
    stale: bool,
    /// True when the engine fully re-prepared since this method last ran
    /// (frontier bookkeeping was reset, so bounded must run full once).
    pending_full: bool,
}

/// Warm-state re-fusion engine for day-over-day and incremental workloads.
///
/// Feed it one snapshot at a time with [`advance`](Self::advance), then ask
/// for per-method results with [`run`](Self::run). The engine owns every
/// reusable buffer of the pipeline — the primary [`ProblemBuilder`] whose
/// CSR rows are spliced forward day over day, a second builder for bounded
/// mode's frontier sub-problems, and one [`FusionScratch`] shared by all
/// methods — so steady-state operation allocates almost nothing and, more
/// importantly, *recomputes* almost nothing: clean items are never
/// re-bucketed, and (in bounded mode) never re-fused.
///
/// See the [module docs](self) for the exact-vs-bounded contract.
#[derive(Debug, Default)]
pub struct DeltaEngine {
    policy: DeltaPolicy,
    builder: ProblemBuilder,
    sub_builder: ProblemBuilder,
    scratch: FusionScratch,
    current: Option<Snapshot>,
    delta: SnapshotDelta,
    per_method: HashMap<String, MethodWarm>,
}

impl DeltaEngine {
    /// An engine with the default (exact) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with an explicit policy.
    pub fn with_policy(policy: DeltaPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The engine's policy.
    pub fn policy(&self) -> &DeltaPolicy {
        &self.policy
    }

    /// The currently prepared problem (empty before the first
    /// [`advance`](Self::advance)).
    pub fn problem(&self) -> &crate::problem::FusionProblem {
        self.builder.problem()
    }

    /// The delta computed by the last [`advance`](Self::advance) (default —
    /// empty — before the second snapshot).
    pub fn last_delta(&self) -> &SnapshotDelta {
        &self.delta
    }

    /// The snapshot the engine last advanced to, if any.
    ///
    /// The online service re-enters the engine between seals (confidence and
    /// per-source readings are derived from the advanced problem); this
    /// exposes which snapshot that state belongs to.
    pub fn current_snapshot(&self) -> Option<&Snapshot> {
        self.current.as_ref()
    }

    /// Whether the engine holds warm state (has advanced at least once).
    pub fn is_warm(&self) -> bool {
        self.current.is_some()
    }

    /// Advance the engine to `snapshot`: diff against the previous day,
    /// refill only the dirty CSR rows (or fall back per the policy), and
    /// record per-method pending work.
    pub fn advance(&mut self, snapshot: &Snapshot) -> AdvanceReport {
        let started = Instant::now();
        let report = match &self.current {
            None => {
                self.builder.prepare(snapshot);
                self.delta = SnapshotDelta::default();
                for warm in self.per_method.values_mut() {
                    warm.stale = true;
                    warm.pending_full = true;
                }
                AdvanceReport {
                    day: snapshot.day(),
                    first_day: true,
                    identical: false,
                    full_refresh: true,
                    dirty_items: snapshot.num_items(),
                    removed_items: 0,
                    dirty_sources: snapshot.active_sources().len(),
                    added_sources: snapshot.active_sources().len(),
                    removed_sources: 0,
                    dirty_fraction: 1.0,
                    prepare: started.elapsed(),
                }
            }
            Some(prev) => {
                let delta = SnapshotDelta::between(prev, snapshot);
                let identical = delta.is_empty();
                let fraction = delta.dirty_fraction();
                let full_refresh = !identical && fraction > self.policy.max_dirty_fraction;
                if full_refresh {
                    self.builder.prepare(snapshot);
                    for warm in self.per_method.values_mut() {
                        warm.stale = true;
                        warm.pending_full = true;
                    }
                } else if !identical {
                    self.builder.prepare_delta(snapshot, &delta);
                    for warm in self.per_method.values_mut() {
                        warm.stale = true;
                        warm.pending_items.extend(delta.dirty_items().iter().copied());
                        warm.pending_sources
                            .extend(delta.dirty_sources().iter().copied());
                    }
                }
                let report = AdvanceReport {
                    day: snapshot.day(),
                    first_day: false,
                    identical,
                    full_refresh,
                    dirty_items: delta.dirty_items().len(),
                    removed_items: delta.removed_items().len(),
                    dirty_sources: delta.dirty_sources().len(),
                    added_sources: delta.added_sources().len(),
                    removed_sources: delta.removed_sources().len(),
                    dirty_fraction: fraction,
                    prepare: started.elapsed(),
                };
                self.delta = delta;
                report
            }
        };
        self.current = Some(snapshot.clone());
        report
    }

    /// Run `method` over the current snapshot under the engine's policy.
    ///
    /// In exact mode the returned [`FusionResult`] is bit-identical to
    /// `method.run` on a cold preparation of the current snapshot; in
    /// bounded mode it approximates it (see the [module docs](self)).
    pub fn run(&mut self, method: &dyn FusionMethod, options: &FusionOptions) -> (FusionResult, RunReport) {
        let started = Instant::now();
        let name = method.name();
        let total_items = self.builder.problem().num_items();

        let warm_compatible = self
            .per_method
            .get(&name)
            .is_some_and(|w| options_compatible(&w.options_key, options));

        // Cache: the problem is unchanged since this method's last run and
        // no trust frontier is pending — yesterday's result is today's.
        if warm_compatible {
            let warm = &self.per_method[&name];
            let pending_frontier =
                self.policy.mode == DeltaMode::Bounded && !warm.moved_sources.is_empty();
            if !warm.stale && !warm.pending_full && !pending_frontier {
                let result = warm.result.clone();
                return (
                    result,
                    RunReport {
                        mode: self.policy.mode,
                        cache_hit: true,
                        full_run: false,
                        fused_items: 0,
                        total_items,
                        frontier_sources: 0,
                        elapsed: started.elapsed(),
                    },
                );
            }
        }

        let can_bound = self.policy.mode == DeltaMode::Bounded
            && warm_compatible
            && !self.per_method[&name].pending_full
            && options.input_trust.is_none()
            && options.known_copy_probabilities.is_none();
        if can_bound {
            self.run_bounded(method, &name, options, started, total_items)
        } else {
            self.run_full(method, &name, options, started, total_items)
        }
    }

    /// Full deterministic run over the (spliced or re-prepared) problem;
    /// the exact-mode workhorse and every fall-back path.
    fn run_full(
        &mut self,
        method: &dyn FusionMethod,
        name: &str,
        options: &FusionOptions,
        started: Instant,
        total_items: usize,
    ) -> (FusionResult, RunReport) {
        let problem = self.builder.problem();
        let result = method.run_with_scratch(problem, options, &mut self.scratch);
        self.store_warm(name, options, result.clone(), BTreeSet::new());
        (
            result,
            RunReport {
                mode: self.policy.mode,
                cache_hit: false,
                full_run: true,
                fused_items: total_items,
                total_items,
                frontier_sources: 0,
                elapsed: started.elapsed(),
            },
        )
    }

    /// Bounded mode: fuse only the frontier sub-problem with warm-started
    /// trust and splice the outcome into the carried state.
    fn run_bounded(
        &mut self,
        method: &dyn FusionMethod,
        name: &str,
        options: &FusionOptions,
        started: Instant,
        total_items: usize,
    ) -> (FusionResult, RunReport) {
        let warm = self
            .per_method
            .remove(name)
            .expect("run_bounded requires warm state");
        let problem = self.builder.problem();
        let snapshot = self
            .current
            .as_ref()
            .expect("run_bounded requires an advanced snapshot");

        // Frontier: every pending dirty item, plus every item claimed by a
        // pending dirty source or by a source whose trust moved beyond the
        // threshold on the previous run.
        let frontier_sources: BTreeSet<SourceId> = warm
            .pending_sources
            .iter()
            .chain(warm.moved_sources.iter())
            .copied()
            .collect();
        let mut frontier: BTreeSet<ItemId> = warm.pending_items.clone();
        for source in &frontier_sources {
            if let Some(s) = problem.source_index(*source) {
                for &(item_index, _) in problem.claims(s) {
                    frontier.insert(problem.item(item_index as usize).id());
                }
            }
        }

        if frontier.len() >= total_items {
            self.per_method.insert(name.to_string(), warm);
            return self.run_full(method, name, options, started, total_items);
        }

        // Tolerance-pinned sub-snapshot: every kept item buckets exactly as
        // in the full problem, so local candidate indices line up for the
        // splice.
        let sub_snapshot = snapshot.restrict_to_items(&frontier);
        let sub_problem = self.sub_builder.prepare(&sub_snapshot);

        // Warm-start trust for the sub-problem's sources from the previous
        // run's estimate; sources the warm state has never seen keep the
        // method's own prior (NaN slot).
        let seed: Vec<f64> = sub_problem
            .sources
            .iter()
            .map(|source| {
                warm.sources
                    .binary_search(source)
                    .map(|pos| warm.result.trust.overall[pos])
                    .unwrap_or(f64::NAN)
            })
            .collect();
        let mut sub_options = options.clone();
        sub_options.warm_start_trust = Some(seed);
        let sub_result = method.run_with_scratch(sub_problem, &sub_options, &mut self.scratch);
        let sub_problem = self.sub_builder.problem();

        // Splice the sub-selection into the carried selection: three sorted
        // item axes (current problem, sub-problem, warm state) merge-walked
        // in one pass. Clean items keep their warm local candidate index —
        // valid because their candidate sets are unchanged by construction.
        let mut selection = Vec::with_capacity(total_items);
        let mut sub_pos = 0usize;
        let mut warm_pos = 0usize;
        for item in problem.items() {
            let id = item.id();
            while sub_pos < sub_problem.num_items() && sub_problem.item(sub_pos).id() < id {
                sub_pos += 1;
            }
            if sub_pos < sub_problem.num_items() && sub_problem.item(sub_pos).id() == id {
                selection.push(sub_result.selection[sub_pos]);
                continue;
            }
            while warm_pos < warm.items.len() && warm.items[warm_pos] < id {
                warm_pos += 1;
            }
            if warm_pos < warm.items.len() && warm.items[warm_pos] == id {
                selection.push(warm.result.selection[warm_pos]);
            } else {
                // Unreachable under the delta contract (an item unknown to
                // the warm state is dirty, hence in the frontier); selecting
                // the dominant bucket keeps the output well-formed anyway.
                selection.push(0);
            }
        }

        // Merge trust: frontier sources take the sub-run's estimate, the
        // rest carry the warm estimate forward.
        let num_attrs = problem.num_attrs;
        let mut overall = Vec::with_capacity(problem.num_sources());
        let mut per_attr = (options.per_attribute_trust
            && sub_result.trust.per_attr.is_some())
        .then(|| AttrTrust::filled(problem.num_sources(), num_attrs, 0.8));
        for (si, source) in problem.sources.iter().enumerate() {
            let (value, row): (f64, Option<&[f64]>) =
                if let Some(sub_si) = sub_problem.source_index(*source) {
                    (
                        sub_result.trust.overall[sub_si],
                        sub_result.trust.per_attr.as_ref().map(|pa| pa.row(sub_si)),
                    )
                } else if let Ok(pos) = warm.sources.binary_search(source) {
                    (
                        warm.result.trust.overall[pos],
                        warm.result.trust.per_attr.as_ref().map(|pa| pa.row(pos)),
                    )
                } else {
                    (0.8, None)
                };
            overall.push(value);
            if let (Some(pa), Some(row)) = (per_attr.as_mut(), row) {
                if row.len() == num_attrs {
                    pa.row_mut(si).copy_from_slice(row);
                }
            }
        }

        // Next frontier: sources whose trust moved beyond the threshold.
        let mut moved = BTreeSet::new();
        for (si, source) in problem.sources.iter().enumerate() {
            if let Ok(pos) = warm.sources.binary_search(source) {
                if (overall[si] - warm.result.trust.overall[pos]).abs()
                    > self.policy.trust_frontier_threshold
                {
                    moved.insert(*source);
                }
            }
        }

        let trust = TrustEstimate { overall, per_attr };
        let elapsed = started.elapsed();
        let selected = problem.selection_to_values(&selection);
        let result = FusionResult {
            method: name.to_string(),
            selected,
            selection,
            trust,
            rounds: sub_result.rounds,
            elapsed,
        };
        let fused_items = sub_problem.num_items();
        let frontier_count = frontier_sources.len();
        self.store_warm(name, options, result.clone(), moved);
        (
            result,
            RunReport {
                mode: DeltaMode::Bounded,
                cache_hit: false,
                full_run: false,
                fused_items,
                total_items,
                frontier_sources: frontier_count,
                elapsed,
            },
        )
    }

    /// Record `result` as the method's warm state and clear its pending
    /// bookkeeping.
    fn store_warm(
        &mut self,
        name: &str,
        options: &FusionOptions,
        result: FusionResult,
        moved_sources: BTreeSet<SourceId>,
    ) {
        let problem = self.builder.problem();
        let warm = MethodWarm {
            options_key: options.clone(),
            sources: problem.sources.clone(),
            items: problem.items().map(|i| i.id()).collect(),
            result,
            moved_sources,
            pending_items: BTreeSet::new(),
            pending_sources: BTreeSet::new(),
            stale: false,
            pending_full: false,
        };
        self.per_method.insert(name.to_string(), warm);
    }
}

/// Whether two option sets produce interchangeable results for caching and
/// warm-state purposes. `intra_day_chunks` is excluded (chunking is
/// bit-invisible in the output, pinned by `tests/chunk_equivalence.rs`), as
/// is `warm_start_trust` (the engine's own seeding channel).
fn options_compatible(a: &FusionOptions, b: &FusionOptions) -> bool {
    a.max_rounds == b.max_rounds
        && a.epsilon.to_bits() == b.epsilon.to_bits()
        && a.input_trust == b.input_trust
        && a.per_attribute_trust == b.per_attribute_trust
        && a.known_copy_probabilities == b.known_copy_probabilities
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::FusionProblem;
    use crate::registry::all_methods;
    use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, Value};
    use std::sync::Arc;

    fn schema(num_sources: usize) -> Arc<DomainSchema> {
        let mut s = DomainSchema::new("test");
        s.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
        s.add_attribute("y", AttrKind::Numeric { scale: 10.0 }, false);
        for i in 0..num_sources {
            s.add_source(format!("s{i}"), false);
        }
        Arc::new(s)
    }

    fn day0() -> Snapshot {
        let mut b = SnapshotBuilder::new(0);
        for obj in 0..8u32 {
            for s in 0..4u16 {
                let v = 100.0 + obj as f64 + if s == 3 { 5.0 } else { 0.0 };
                b.add(SourceId(s as u32), ObjectId(obj), AttrId(0), Value::number(v));
            }
            b.add(SourceId(0), ObjectId(obj), AttrId(1), Value::number(10.0 + obj as f64));
        }
        b.build(schema(4))
    }

    /// Day 1: one value edit (object 2), pinned tolerance.
    fn day1(base: &Snapshot) -> Snapshot {
        let mut b = SnapshotBuilder::new(1);
        for (item, obs) in base.items() {
            for o in obs {
                let v = if item.object == ObjectId(2) && o.source == SourceId(1) {
                    Value::number(222.0)
                } else {
                    o.value.clone()
                };
                b.add(o.source, item.object, item.attr, v);
            }
        }
        b.build_with_tolerance(base.schema_arc(), base.tolerance().clone())
    }

    #[test]
    fn exact_mode_matches_cold_run_day_over_day() {
        let d0 = day0();
        let d1 = day1(&d0);
        let mut engine = DeltaEngine::new();
        let options = FusionOptions::standard();

        let r0 = engine.advance(&d0);
        assert!(r0.first_day && r0.full_refresh);
        let r1 = engine.advance(&d1);
        assert!(!r1.full_refresh && !r1.identical);
        assert_eq!(r1.dirty_items, 1);

        for (_, method) in all_methods() {
            // Re-advance per method is unnecessary: exact mode full-runs on
            // the spliced problem, which is shared by all methods.
            let cold = method.run(&FusionProblem::from_snapshot(&d1), &options);
            let (warm, report) = engine.run(method.as_ref(), &options);
            assert!(report.full_run && !report.cache_hit);
            assert_eq!(warm.selection, cold.selection, "{}", method.name());
            assert_eq!(warm.rounds, cold.rounds, "{}", method.name());
            let warm_bits: Vec<u64> = warm.trust.overall.iter().map(|t| t.to_bits()).collect();
            let cold_bits: Vec<u64> = cold.trust.overall.iter().map(|t| t.to_bits()).collect();
            assert_eq!(warm_bits, cold_bits, "{}", method.name());
        }
    }

    #[test]
    fn empty_delta_returns_cached_result() {
        let d0 = day0();
        let mut engine = DeltaEngine::new();
        let options = FusionOptions::standard();
        engine.advance(&d0);
        let method = crate::registry::method_by_name("Vote").unwrap();
        let (first, report0) = engine.run(method.as_ref(), &options);
        assert!(!report0.cache_hit);

        // Same snapshot again: no preparation, no fusion.
        let r = engine.advance(&d0);
        assert!(r.identical && !r.full_refresh);
        let (second, report1) = engine.run(method.as_ref(), &options);
        assert!(report1.cache_hit);
        assert_eq!(report1.fused_items, 0);
        assert_eq!(second.selection, first.selection);

        // Changing options invalidates the cache.
        let per_attr = FusionOptions::standard().with_per_attribute_trust();
        let (_, report2) = engine.run(method.as_ref(), &per_attr);
        assert!(!report2.cache_hit && report2.full_run);
    }

    #[test]
    fn high_dirty_fraction_falls_back_to_full_refresh() {
        let d0 = day0();
        // Rewrite every item's dominant value: ~100% dirty.
        let mut b = SnapshotBuilder::new(1);
        for (item, obs) in d0.items() {
            for o in obs {
                b.add(o.source, item.object, item.attr, Value::number(999.0));
            }
        }
        let d1 = b.build_with_tolerance(d0.schema_arc(), d0.tolerance().clone());

        let mut engine = DeltaEngine::new();
        engine.advance(&d0);
        let r = engine.advance(&d1);
        assert!(r.full_refresh);
        assert!(r.dirty_fraction > 0.9);
    }

    #[test]
    fn bounded_mode_restricts_fusion_to_the_frontier() {
        let d0 = day0();
        let d1 = day1(&d0);
        let mut engine = DeltaEngine::with_policy(DeltaPolicy::bounded());
        let options = FusionOptions::standard();
        let method = crate::registry::method_by_name("Cosine").unwrap();

        engine.advance(&d0);
        let (_, r0) = engine.run(method.as_ref(), &options);
        assert!(r0.full_run, "cold state must full-run");

        engine.advance(&d1);
        let (warm, r1) = engine.run(method.as_ref(), &options);
        assert!(!r1.full_run && !r1.cache_hit);
        // The edited item plus everything source 1 touches; strictly less
        // than the whole world.
        assert!(r1.fused_items < r1.total_items);
        assert!(r1.fused_items >= 1);
        assert!(r1.frontier_sources >= 1);

        // The bounded result stays close to the cold answer: identical
        // selections on this small world.
        let cold = method.run(&FusionProblem::from_snapshot(&d1), &options);
        assert_eq!(warm.selection.len(), cold.selection.len());
        assert_eq!(warm.selected.len(), d1.num_items());
    }

    #[test]
    fn bounded_falls_back_on_input_trust() {
        let d0 = day0();
        let d1 = day1(&d0);
        let mut engine = DeltaEngine::with_policy(DeltaPolicy::bounded());
        let options = FusionOptions::standard().with_input_trust(vec![0.9; 4]);
        let method = crate::registry::method_by_name("Vote").unwrap();
        engine.advance(&d0);
        engine.run(method.as_ref(), &options);
        engine.advance(&d1);
        let (_, report) = engine.run(method.as_ref(), &options);
        assert!(report.full_run, "input trust pins the estimate: full run");
    }
}
