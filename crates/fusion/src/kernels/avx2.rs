//! AVX2/FMA kernel implementations (4 × `f64` lanes).
//!
//! Bit-identity strategy: every kernel vectorizes across **independent**
//! lanes — four plane slots or four co-claim entries at a time — and
//! performs, per lane, exactly the scalar operation sequence of
//! [`super::scalar`]. The `max`/`min` tree reductions in
//! [`normalize_by_max`] / [`rescale_to_unit`] assume non-NaN input
//! (`vmaxpd` propagates NaN where `f64::max` ignores it); the vote planes
//! never hold NaN, and the dispatch wrappers document the precondition.
//! In [`accumulate_pair_llr`], adding a blended neutral `+0.0` instead of
//! branching is bitwise exact because an IEEE-754 sum that starts at `+0.0`
//! can never become `-0.0` (only `-0.0 + -0.0` is `-0.0`).
//!
//! This module deliberately implements **only** the kernels that beat the
//! scalar fallback on the warm-arena workload (the ROADMAP's "only keep it
//! if it beats the autovectorizer" gate, measured by the `vote_plane`
//! criterion bench): the contiguous elementwise rescalers and the branchless
//! co-claim LLR accumulation. Gather-based lock-step variants of the CSR
//! walks (`accumulate_weighted_votes`, `argmax_into`, the claim-score sums)
//! were built, measured 1.1–2× *slower* than the unrolled scalar kernels —
//! the provider/candidate rows of the Stock/Flight problems are too short
//! and ragged for `vpgatherdpd` lock-stepping to pay — and dropped; those
//! entry points always dispatch to [`super::scalar`].

use core::arch::x86_64::*;

/// Tree-reduced slice maximum; exact for non-NaN input.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn max_value(xs: &[f64]) -> f64 {
    let mut acc = _mm256_set1_pd(f64::NEG_INFINITY);
    let mut i = 0usize;
    while i + 4 <= xs.len() {
        acc = _mm256_max_pd(acc, _mm256_loadu_pd(xs.as_ptr().add(i)));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut max = lanes[0].max(lanes[1]).max(lanes[2]).max(lanes[3]);
    for &x in &xs[i..] {
        max = max.max(x);
    }
    max
}

/// Tree-reduced slice minimum; exact for non-NaN input.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn min_value(xs: &[f64]) -> f64 {
    let mut acc = _mm256_set1_pd(f64::INFINITY);
    let mut i = 0usize;
    while i + 4 <= xs.len() {
        acc = _mm256_min_pd(acc, _mm256_loadu_pd(xs.as_ptr().add(i)));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut min = lanes[0].min(lanes[1]).min(lanes[2]).min(lanes[3]);
    for &x in &xs[i..] {
        min = min.min(x);
    }
    min
}

/// # Safety
/// Requires AVX2 and FMA CPU support (guaranteed by the dispatcher).
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn normalize_by_max(xs: &mut [f64]) {
    let max = max_value(xs);
    if max > 0.0 {
        let m = _mm256_set1_pd(max);
        let mut i = 0usize;
        while i + 4 <= xs.len() {
            let p = xs.as_mut_ptr().add(i);
            _mm256_storeu_pd(p, _mm256_div_pd(_mm256_loadu_pd(p), m));
            i += 4;
        }
        for x in &mut xs[i..] {
            *x /= max;
        }
    }
}

/// # Safety
/// Requires AVX2 and FMA CPU support (guaranteed by the dispatcher).
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn rescale_to_unit(xs: &mut [f64]) {
    let min = min_value(xs);
    let max = max_value(xs);
    if !min.is_finite() || !max.is_finite() {
        return;
    }
    let range = max - min;
    if range > 1e-12 {
        let min_v = _mm256_set1_pd(min);
        let range_v = _mm256_set1_pd(range);
        let mut i = 0usize;
        while i + 4 <= xs.len() {
            let p = xs.as_mut_ptr().add(i);
            let scaled = _mm256_div_pd(_mm256_sub_pd(_mm256_loadu_pd(p), min_v), range_v);
            _mm256_storeu_pd(p, scaled);
            i += 4;
        }
        for x in &mut xs[i..] {
            *x = (*x - min) / range;
        }
    } else {
        xs.fill(0.5);
    }
}

/// # Safety
/// Requires AVX2 and FMA CPU support (guaranteed by the dispatcher).
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn accumulate_pair_llr(
    entries: &[(u32, u32, u32)],
    selection: &[usize],
    llr_same_false: f64,
    llr_diff: f64,
) -> f64 {
    let a_v = _mm256_set1_pd(llr_same_false);
    let b_v = _mm256_set1_pd(llr_diff);
    let zero = _mm256_setzero_pd();
    let mut llr = 0.0;
    let mut buf = [0.0f64; 4];
    let mut chunks = entries.chunks_exact(4);
    for ch in &mut chunks {
        let sel = |e: &(u32, u32, u32)| selection.get(e.0 as usize).copied().unwrap_or(0) as i64;
        let ca_v = _mm256_setr_epi64x(
            ch[0].1 as i64,
            ch[1].1 as i64,
            ch[2].1 as i64,
            ch[3].1 as i64,
        );
        let cb_v = _mm256_setr_epi64x(
            ch[0].2 as i64,
            ch[1].2 as i64,
            ch[2].2 as i64,
            ch[3].2 as i64,
        );
        let sel_v = _mm256_setr_epi64x(sel(&ch[0]), sel(&ch[1]), sel(&ch[2]), sel(&ch[3]));
        let same = _mm256_castsi256_pd(_mm256_cmpeq_epi64(ca_v, cb_v));
        let is_sel = _mm256_castsi256_pd(_mm256_cmpeq_epi64(ca_v, sel_v));
        // Branchless per-entry increment: llr_diff when the pair disagrees,
        // else 0 when the shared value is the selected one, else
        // llr_same_false. Adding the neutral +0.0 instead of skipping is
        // bitwise exact because the accumulator can never be -0.0 (it starts
        // at +0.0 and the increments are never -0.0).
        let same_inc = _mm256_blendv_pd(a_v, zero, is_sel);
        let inc = _mm256_blendv_pd(b_v, same_inc, same);
        _mm256_storeu_pd(buf.as_mut_ptr(), inc);
        llr += buf[0];
        llr += buf[1];
        llr += buf[2];
        llr += buf[3];
    }
    for &(item, ca, cb) in chunks.remainder() {
        if ca == cb {
            let selected = selection.get(item as usize).copied().unwrap_or(0) as u32;
            if ca == selected {
                continue;
            }
            llr += llr_same_false;
        } else {
            llr += llr_diff;
        }
    }
    llr
}
