//! Portable scalar fallback kernels.
//!
//! These are the reference implementations every SIMD backend must match
//! **bit-for-bit**: per-candidate / per-claim / per-entry accumulation order
//! is exactly the order the pre-kernel method code used, so swapping the old
//! inline loops for these kernels cannot move a single ULP. The only manual
//! unrolling is in the `max`/`min` reductions, where four independent
//! accumulators break the serial dependency chain — exact for non-NaN input
//! because `max`/`min` folds are associative and commutative there.

use super::TrustView;
use std::cell::RefCell;

thread_local! {
    // Attr-major transpose of the per-attribute trust table, a kernel-private
    // warm scratch reused across rounds: transposing once per call (S×A
    // copies, no arithmetic, bit-exact) turns every provider read of the
    // `*ATTR` variants into the same stride-1 `col[p]` gather the overall
    // path uses, dropping the per-provider `p * num_attrs + a` multiply from
    // the hottest loop in the crate.
    static ATTR_MAJOR_TRUST: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// See [`super::accumulate_weighted_votes`].
pub fn accumulate_weighted_votes(
    out: &mut [f64],
    provider_offsets: &[u32],
    providers: &[u32],
    trust: &TrustView<'_>,
) {
    if out.is_empty() {
        return;
    }
    match *trust {
        TrustView::Overall(t) => {
            let mut lo = provider_offsets[0] as usize;
            for (slot, &end) in out.iter_mut().zip(&provider_offsets[1..]) {
                let hi = end as usize;
                let mut acc = 0.0;
                for &p in &providers[lo..hi] {
                    acc += t[p as usize];
                }
                *slot = acc;
                lo = hi;
            }
        }
        TrustView::PerAttr {
            values,
            num_attrs,
            cand_attrs,
        } => ATTR_MAJOR_TRUST.with(|buf| {
            let num_sources = values.len() / num_attrs.max(1);
            let mut t = buf.borrow_mut();
            t.clear();
            t.resize(values.len(), 0.0);
            for s in 0..num_sources {
                for a in 0..num_attrs {
                    t[a * num_sources + s] = values[s * num_attrs + a];
                }
            }
            let mut lo = provider_offsets[0] as usize;
            for (c, (slot, &end)) in out.iter_mut().zip(&provider_offsets[1..]).enumerate() {
                let hi = end as usize;
                let col = &t[cand_attrs[c] as usize * num_sources..][..num_sources];
                let mut acc = 0.0;
                for &p in &providers[lo..hi] {
                    acc += col[p as usize];
                }
                *slot = acc;
                lo = hi;
            }
        }),
    }
}

/// The argmax of one item's CSR range `values[lo..hi]` (local index).
#[inline]
fn argmax_one(lo: usize, hi: usize, values: &[f64]) -> usize {
    // 0- and 1-candidate items always select index 0 (on one vote the
    // chain either updates to index 0 or keeps its index-0 start), which
    // skips the float-compare walk for the most common item shape.
    if hi - lo <= 1 {
        return 0;
    }
    let item_votes = &values[lo..hi];
    let mut best = 0usize;
    let mut best_vote = f64::NEG_INFINITY;
    for (i, &v) in item_votes.iter().enumerate() {
        if v > best_vote + 1e-12 {
            best = i;
            best_vote = v;
        }
    }
    best
}

/// See [`super::argmax_into`].
pub fn argmax_into(offsets: &[u32], values: &[f64], selection: &mut Vec<usize>) {
    selection.clear();
    selection.resize(offsets.len().saturating_sub(1), 0);
    argmax_into_slice(offsets, values, selection);
}

/// See [`super::argmax_into_slice`].
pub fn argmax_into_slice(offsets: &[u32], values: &[f64], out: &mut [usize]) {
    for (slot, w) in out.iter_mut().zip(offsets.windows(2)) {
        *slot = argmax_one(w[0] as usize, w[1] as usize, values);
    }
}

/// Unrolled `max` fold: four independent accumulators, combined at the end.
pub fn max_value(xs: &[f64]) -> f64 {
    let mut iter = xs.chunks_exact(4);
    let mut acc = [f64::NEG_INFINITY; 4];
    for chunk in &mut iter {
        acc[0] = acc[0].max(chunk[0]);
        acc[1] = acc[1].max(chunk[1]);
        acc[2] = acc[2].max(chunk[2]);
        acc[3] = acc[3].max(chunk[3]);
    }
    let mut max = acc[0].max(acc[1]).max(acc[2]).max(acc[3]);
    for &x in iter.remainder() {
        max = max.max(x);
    }
    max
}

/// Unrolled `min` fold (see [`max_value`]).
pub fn min_value(xs: &[f64]) -> f64 {
    let mut iter = xs.chunks_exact(4);
    let mut acc = [f64::INFINITY; 4];
    for chunk in &mut iter {
        acc[0] = acc[0].min(chunk[0]);
        acc[1] = acc[1].min(chunk[1]);
        acc[2] = acc[2].min(chunk[2]);
        acc[3] = acc[3].min(chunk[3]);
    }
    let mut min = acc[0].min(acc[1]).min(acc[2]).min(acc[3]);
    for &x in iter.remainder() {
        min = min.min(x);
    }
    min
}

/// See [`super::normalize_by_max`].
pub fn normalize_by_max(xs: &mut [f64]) {
    let max = max_value(xs);
    apply_normalize_by_max(xs, max);
}

/// See [`super::apply_normalize_by_max`]: the elementwise scale pass of
/// [`normalize_by_max`] with the (exact) maximum already reduced.
pub fn apply_normalize_by_max(xs: &mut [f64], max: f64) {
    if max > 0.0 {
        for x in xs.iter_mut() {
            *x /= max;
        }
    }
}

/// See [`super::rescale_to_unit`].
pub fn rescale_to_unit(xs: &mut [f64]) {
    let min = min_value(xs);
    let max = max_value(xs);
    apply_rescale_to_unit(xs, min, max);
}

/// See [`super::apply_rescale_to_unit`]: the elementwise affine pass of
/// [`rescale_to_unit`] with the (exact) extrema already reduced.
pub fn apply_rescale_to_unit(xs: &mut [f64], min: f64, max: f64) {
    if !min.is_finite() || !max.is_finite() {
        return;
    }
    let range = max - min;
    for x in xs.iter_mut() {
        *x = if range > 1e-12 { (*x - min) / range } else { 0.5 };
    }
}

/// See [`super::sum_claim_scores`].
pub fn sum_claim_scores(claims: &[(u32, u32)], offsets: &[u32], values: &[f64]) -> f64 {
    let mut sum = 0.0;
    for &(i, c) in claims {
        sum += values[offsets[i as usize] as usize + c as usize];
    }
    sum
}

/// See [`super::sum_claim_scores_per_attr`].
pub fn sum_claim_scores_per_attr(
    claims: &[(u32, u32)],
    offsets: &[u32],
    values: &[f64],
    item_attrs: &[u32],
    attr_sum: &mut [f64],
    attr_count: &mut [usize],
) -> f64 {
    let mut sum = 0.0;
    for &(i, c) in claims {
        let score = values[offsets[i as usize] as usize + c as usize];
        sum += score;
        let a = item_attrs[i as usize] as usize;
        attr_sum[a] += score;
        attr_count[a] += 1;
    }
    sum
}

/// See [`super::accumulate_pair_llr`].
pub fn accumulate_pair_llr(
    entries: &[(u32, u32, u32)],
    selection: &[usize],
    llr_same_false: f64,
    llr_diff: f64,
) -> f64 {
    let mut llr = 0.0;
    for &(item, ca, cb) in entries {
        if ca == cb {
            let selected = selection.get(item as usize).copied().unwrap_or(0) as u32;
            if ca == selected {
                continue;
            }
            llr += llr_same_false;
        } else {
            llr += llr_diff;
        }
    }
    llr
}
