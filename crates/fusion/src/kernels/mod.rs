//! Explicit SIMD kernels for the warm vote-plane inner loops.
//!
//! Every iterative method in the paper's Table 6 funnels through the same
//! handful of flat-array walks per round: accumulating trust-weighted votes
//! over the candidate axis (the vote equations of Section 3), selecting the
//! highest-voted candidate per item (the truth selection the precision of
//! Table 7 scores), normalizing vote or trust vectors (the web-link and IR
//! methods of Sections 3.1–3.2), averaging per-claim scores into source
//! trust (the Bayesian methods of Section 3.3), and re-scoring the
//! per-pair copy likelihood (the copy detection of Section 3.4 that
//! dominates ACCUCOPY's Figure-12 runtime). PR 3–5 flattened those loops
//! onto CSR/SoA layouts; this module puts every one of them behind one
//! dispatched kernel layer — explicit AVX2/FMA implementations where they
//! beat the compiler, tuned unrolled-scalar kernels where lock-step SIMD
//! lost the ROADMAP's "only keep it if it beats the autovectorizer" bench
//! gate (see the per-function docs and the `vote_plane` criterion bench) —
//! which is where the Figure-12 efficiency reproduction spends its time.
//!
//! # Dispatch model
//!
//! A backend is selected **once per process** and cached: [`Backend::Avx2Fma`]
//! when the running CPU supports AVX2 *and* FMA (checked with
//! `is_x86_feature_detected!`), [`Backend::Scalar`] otherwise. Setting the
//! environment variable `FUSION_FORCE_SCALAR=1` (any value other than `0` or
//! empty) forces the scalar path regardless of CPU support — CI runs the
//! whole fusion suite both ways. [`force_backend`] installs a backend
//! explicitly for in-process comparisons (benches, tests).
//!
//! # Bit-identity contract
//!
//! Every SIMD kernel produces **bit-identical** results to its scalar
//! fallback in [`scalar`]: vectorization is across *independent* lanes
//! (plane slots, co-claim entries), never across the terms of one
//! floating-point sum, so each lane performs exactly the scalar
//! operation sequence. The reductions in [`normalize_by_max`] and
//! [`rescale_to_unit`] reassociate a `max`/`min` fold, which is exact for
//! non-NaN inputs (the vote planes never hold NaN); everything downstream of
//! the reduced value is elementwise IEEE arithmetic. The contract is pinned
//! by the kernel proptest suite (`tests/kernel_equivalence.rs`), the
//! reference-oracle and golden Table-7 harnesses, and the cross-runner
//! batch-equivalence suite.

use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
mod avx2;
pub mod scalar;

/// The kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// AVX2 + FMA intrinsics (`core::arch::x86_64`), 4 × `f64` lanes.
    Avx2Fma,
    /// Portable unrolled-scalar fallback ([`scalar`]).
    Scalar,
}

/// Cached backend choice: 0 = undecided, 1 = AVX2+FMA, 2 = scalar.
static BACKEND: AtomicU8 = AtomicU8::new(0);

fn backend_code(b: Backend) -> u8 {
    match b {
        Backend::Avx2Fma => 1,
        Backend::Scalar => 2,
    }
}

/// Whether the running CPU supports the AVX2+FMA backend.
fn avx2_fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> Backend {
    let forced = std::env::var_os("FUSION_FORCE_SCALAR")
        .is_some_and(|v| !v.is_empty() && v != "0");
    if !forced && avx2_fma_supported() {
        Backend::Avx2Fma
    } else {
        Backend::Scalar
    }
}

/// The backend all kernels dispatch to, selected on first use and cached for
/// the lifetime of the process.
#[inline]
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => Backend::Avx2Fma,
        2 => Backend::Scalar,
        _ => {
            let b = detect();
            BACKEND.store(backend_code(b), Ordering::Relaxed);
            b
        }
    }
}

/// Install `requested` as the dispatch backend, returning the backend
/// actually installed ([`Backend::Avx2Fma`] is downgraded to
/// [`Backend::Scalar`] on CPUs without AVX2+FMA).
///
/// Intended for benches and tests that compare both paths in one process;
/// production callers should rely on the automatic detection in
/// [`backend`].
pub fn force_backend(requested: Backend) -> Backend {
    let installed = match requested {
        Backend::Avx2Fma if !avx2_fma_supported() => Backend::Scalar,
        other => other,
    };
    BACKEND.store(backend_code(installed), Ordering::Relaxed);
    installed
}

/// Human-readable name of the dispatched backend: `"avx2+fma"` or
/// `"scalar"` (the strings the efficiency reports record).
pub fn backend_name() -> &'static str {
    match backend() {
        Backend::Avx2Fma => "avx2+fma",
        Backend::Scalar => "scalar",
    }
}

/// Space-separated list of the probed CPU features the running machine
/// supports (`"portable"` on non-x86_64 targets). Recorded next to the
/// backend in the efficiency JSON so trajectory points from different
/// machines stay interpretable.
pub fn detected_cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features: Vec<&str> = Vec::new();
        macro_rules! probe {
            ($($name:tt),* $(,)?) => {
                $(if is_x86_feature_detected!($name) { features.push($name); })*
            };
        }
        probe!("sse4.2", "avx", "avx2", "fma", "avx512f");
        features.join(" ")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::from("portable")
    }
}

/// A read-only view of source trust as the vote-accumulation kernels consume
/// it: either one value per source, or the flat `source * num_attrs + attr`
/// table of the `*ATTR` variants plus the per-candidate attribute index that
/// selects the column.
#[derive(Debug, Clone, Copy)]
pub enum TrustView<'a> {
    /// One trust value per dense source index.
    Overall(&'a [f64]),
    /// Per-(source, attribute) trust in [`AttrTrust`](crate::AttrTrust)
    /// layout.
    PerAttr {
        /// Flat values, indexed `source * num_attrs + attr`.
        values: &'a [f64],
        /// Row stride (attributes per source).
        num_attrs: usize,
        /// Dense attribute index per global candidate
        /// ([`FusionProblem::cand_attrs`](crate::FusionProblem::cand_attrs)).
        cand_attrs: &'a [u32],
    },
}

/// `out[c] = Σ_{p ∈ providers(c)} trust(p, attr(c))` for every global
/// candidate `c`, where `providers(c)` is the CSR range
/// `providers[provider_offsets[c]..provider_offsets[c + 1]]`. Every slot of
/// `out` is overwritten; per-candidate summation order is the provider-list
/// order on both backends.
///
/// Always runs the unrolled scalar kernel: a gather-based AVX2 lock-step
/// variant was measured ~2× slower on the short ragged provider rows of the
/// warm-arena workload and dropped per the ROADMAP gate (see [`avx2`-module
/// docs](self)).
pub fn accumulate_weighted_votes(
    out: &mut [f64],
    provider_offsets: &[u32],
    providers: &[u32],
    trust: &TrustView<'_>,
) {
    debug_assert_eq!(provider_offsets.len(), out.len() + 1);
    debug_assert!(provider_offsets.last().copied().unwrap_or(0) as usize <= providers.len());
    scalar::accumulate_weighted_votes(out, provider_offsets, providers, trust);
}

/// For every item `i` (the CSR range `values[offsets[i]..offsets[i + 1]]`),
/// select the index of the highest value, writing into `selection`
/// (allocation reused). Ties within `1e-12` go to the lower index; empty
/// items select 0. Exactly the selection rule of
/// [`VotePlane::argmax_into`](crate::VotePlane::argmax_into).
///
/// Always runs the unrolled scalar kernel (the AVX2 lock-step variant lost
/// the ROADMAP bench gate; see [`accumulate_weighted_votes`]).
pub fn argmax_into(offsets: &[u32], values: &[f64], selection: &mut Vec<usize>) {
    debug_assert!(!offsets.is_empty());
    debug_assert!(offsets.last().copied().unwrap_or(0) as usize <= values.len());
    scalar::argmax_into(offsets, values, selection);
}

/// Slice-writing variant of [`argmax_into`] for the chunked selection path:
/// `out` holds one slot per item of the `offsets` sub-table
/// (`offsets.len() == out.len() + 1`), and `values` is always the **full**
/// plane — the offsets index it absolutely, so a chunk's sub-table works
/// against the shared values without any rebasing. Same selection rule and
/// scalar kernel as [`argmax_into`].
pub fn argmax_into_slice(offsets: &[u32], values: &[f64], out: &mut [usize]) {
    debug_assert_eq!(offsets.len(), out.len() + 1);
    debug_assert!(offsets.last().copied().unwrap_or(0) as usize <= values.len());
    scalar::argmax_into_slice(offsets, values, out);
}

/// Exact slice maximum (`-inf` on empty input). The chunked two-pass
/// normalize path reduces over the full plane with this before scaling per
/// chunk; `max` folds are associative and commutative for the non-NaN
/// planes, so scalar and AVX2 reductions agree bit for bit.
pub fn max_value(xs: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        // SAFETY: backend gate as above.
        return unsafe { avx2::max_value(xs) };
    }
    scalar::max_value(xs)
}

/// Exact slice minimum (`+inf` on empty input); see [`max_value`].
pub fn min_value(xs: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        // SAFETY: backend gate as above.
        return unsafe { avx2::min_value(xs) };
    }
    scalar::min_value(xs)
}

/// The elementwise scale pass of [`normalize_by_max`] with the maximum
/// already reduced (the chunked path's second pass). Division is correctly
/// rounded, so per-chunk application is bit-identical to the sequential
/// epilogue on any backend; the plain loop autovectorizes, so no explicit
/// SIMD variant is needed.
pub fn apply_normalize_by_max(xs: &mut [f64], max: f64) {
    scalar::apply_normalize_by_max(xs, max);
}

/// The elementwise affine pass of [`rescale_to_unit`] with the extrema
/// already reduced (the chunked path's second pass); see
/// [`apply_normalize_by_max`] for why scalar-only is exact.
pub fn apply_rescale_to_unit(xs: &mut [f64], min: f64, max: f64) {
    scalar::apply_rescale_to_unit(xs, min, max);
}

/// Divide every element by the slice maximum (no-op when the maximum is not
/// positive). The SIMD max reduction is exact for non-NaN inputs.
pub fn normalize_by_max(xs: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        // SAFETY: backend gate as above.
        unsafe { avx2::normalize_by_max(xs) };
        return;
    }
    scalar::normalize_by_max(xs);
}

/// Affine rescaling of a slice to `[0, 1]`; constant slices map to 0.5 and
/// slices with non-finite extrema are left untouched. The SIMD min/max
/// reduction is exact for non-NaN inputs.
pub fn rescale_to_unit(xs: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        // SAFETY: backend gate as above.
        unsafe { avx2::rescale_to_unit(xs) };
        return;
    }
    scalar::rescale_to_unit(xs);
}

/// Sum of `values[offsets[item] + cand]` over the `(item, cand)` claims of
/// one source, in claim order — the overall-trust accumulator of
/// `update_trust_from_scores`. Claims must reference valid plane slots.
///
/// Always runs the scalar kernel (a gathered AVX2 variant measured slightly
/// slower and was dropped per the ROADMAP gate; see
/// [`accumulate_weighted_votes`]).
pub fn sum_claim_scores(claims: &[(u32, u32)], offsets: &[u32], values: &[f64]) -> f64 {
    debug_assert!(claims
        .iter()
        .all(|&(i, c)| ((i as usize) < offsets.len() - 1)
            && (offsets[i as usize] as usize + c as usize) < values.len().max(1)));
    scalar::sum_claim_scores(claims, offsets, values)
}

/// [`sum_claim_scores`] plus the S×A accumulators of the `*ATTR` variants:
/// for every claim, `attr_sum[attr(item)] += score` and
/// `attr_count[attr(item)] += 1` on the caller's per-source row slices, in
/// claim order. Returns the overall score sum. Scalar-only, like
/// [`sum_claim_scores`].
pub fn sum_claim_scores_per_attr(
    claims: &[(u32, u32)],
    offsets: &[u32],
    values: &[f64],
    item_attrs: &[u32],
    attr_sum: &mut [f64],
    attr_count: &mut [usize],
) -> f64 {
    debug_assert_eq!(attr_sum.len(), attr_count.len());
    scalar::sum_claim_scores_per_attr(claims, offsets, values, item_attrs, attr_sum, attr_count)
}

/// Accumulate the copy-detection log-likelihood ratio of one source pair
/// over its co-claim entries `(item, cand_a, cand_b)`: sharing a value the
/// current selection calls false adds `llr_same_false`, disagreeing adds
/// `llr_diff`, sharing the selected value is neutral (Section 3.4 / Dong et
/// al.). Entries are accumulated in order; out-of-range items read
/// selection 0, matching [`CoClaims::rescore`](crate::methods::CoClaims).
pub fn accumulate_pair_llr(
    entries: &[(u32, u32, u32)],
    selection: &[usize],
    llr_same_false: f64,
    llr_diff: f64,
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2Fma {
        // SAFETY: backend gate as above.
        return unsafe { avx2::accumulate_pair_llr(entries, selection, llr_same_false, llr_diff) };
    }
    scalar::accumulate_pair_llr(entries, selection, llr_same_false, llr_diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_reports_a_name() {
        let name = backend_name();
        assert!(name == "avx2+fma" || name == "scalar");
    }

    #[test]
    fn force_backend_round_trips() {
        let original = backend();
        assert_eq!(force_backend(Backend::Scalar), Backend::Scalar);
        assert_eq!(backend(), Backend::Scalar);
        // Re-requesting AVX2 installs it only where supported.
        let installed = force_backend(Backend::Avx2Fma);
        assert_eq!(backend(), installed);
        force_backend(original);
    }

    #[test]
    fn detected_features_are_reported() {
        // On x86_64 the list is possibly empty but never panics; elsewhere
        // it is the literal "portable".
        let _ = detected_cpu_features();
    }
}
