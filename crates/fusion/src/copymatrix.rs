//! Dense triangular storage for pairwise copy probabilities.
//!
//! The copy-aware hot path looks up the copy probability of an unordered
//! source pair once per (provider, earlier-provider) combination, per
//! candidate, per item, per round — millions of times on the paper's Stock
//! snapshot. A `BTreeMap<(usize, usize), f64>` pays a pointer-chasing
//! logarithmic lookup each time; [`CopyMatrix`] stores the strict upper
//! triangle of the S×S probability matrix as one flat `Vec<f64>` and answers
//! in O(1) with a single multiply-free index computation.

/// Row-major strict-upper-triangle slot of the pair `(lo, hi)`; requires
/// `lo < hi < n`. Shared by [`CopyMatrix`] and the co-claim index so the two
/// layouts can never drift apart.
#[inline]
pub(crate) fn triangular_slot(n: usize, lo: usize, hi: usize) -> usize {
    lo * (2 * n - lo - 1) / 2 + (hi - lo - 1)
}

/// Flat strict-upper-triangular matrix of pairwise copy probabilities over
/// dense source indices.
///
/// Unscored pairs (and the diagonal) read as probability `0.0`, mirroring the
/// `unwrap_or(0.0)` behaviour of the map-based representation it replaces.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CopyMatrix {
    num_sources: usize,
    /// Row-major strict upper triangle: entry `(a, b)` with `a < b` lives at
    /// `a*(2n - a - 1)/2 + (b - a - 1)`.
    data: Vec<f64>,
}

impl CopyMatrix {
    /// An all-zero matrix over `num_sources` sources.
    pub fn new(num_sources: usize) -> Self {
        Self {
            num_sources,
            data: vec![0.0; num_sources * num_sources.saturating_sub(1) / 2],
        }
    }

    /// Build from unordered-pair entries (later duplicates overwrite earlier
    /// ones, like map insertion). Pairs outside `0..num_sources` and diagonal
    /// pairs are ignored.
    pub fn from_pairs(
        num_sources: usize,
        pairs: impl IntoIterator<Item = ((usize, usize), f64)>,
    ) -> Self {
        let mut m = Self::new(num_sources);
        for ((a, b), p) in pairs {
            m.set(a, b, p);
        }
        m
    }

    /// Number of sources the matrix is defined over.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    #[inline]
    fn index(&self, a: usize, b: usize) -> Option<usize> {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if lo == hi || hi >= self.num_sources {
            return None;
        }
        Some(triangular_slot(self.num_sources, lo, hi))
    }

    /// Copy probability of the unordered pair `(a, b)`; `0.0` for unscored,
    /// diagonal, or out-of-range pairs.
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> f64 {
        match self.index(a, b) {
            Some(i) => self.data[i],
            None => 0.0,
        }
    }

    /// Set the probability of the unordered pair `(a, b)`. Diagonal and
    /// out-of-range pairs are ignored.
    #[inline]
    pub fn set(&mut self, a: usize, b: usize, p: f64) {
        if let Some(i) = self.index(a, b) {
            self.data[i] = p;
        }
    }

    /// Reset every pair to `0.0` (capacity is kept).
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Re-shape the matrix for `num_sources` sources and reset every pair to
    /// `0.0`, keeping the existing capacity — the warm-arena fusion scratch
    /// reuses one matrix across differently-sized problems.
    pub fn reset(&mut self, num_sources: usize) {
        self.num_sources = num_sources;
        self.data.clear();
        self.data
            .resize(num_sources * num_sources.saturating_sub(1) / 2, 0.0);
    }

    /// Iterate over all pairs with a non-zero probability, in `(a, b)`
    /// lexicographic order (`a < b`).
    pub fn pairs(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        let n = self.num_sources;
        (0..n)
            .flat_map(move |a| ((a + 1)..n).map(move |b| (a, b)))
            .zip(self.data.iter().copied())
            .filter(|(_, p)| *p != 0.0)
    }

    /// Number of pairs with a non-zero probability.
    pub fn num_scored(&self) -> usize {
        self.data.iter().filter(|p| **p != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangular_indexing_is_unordered_and_bounds_checked() {
        let mut m = CopyMatrix::new(4);
        m.set(2, 0, 0.75);
        m.set(1, 3, 0.5);
        assert_eq!(m.get(0, 2), 0.75);
        assert_eq!(m.get(2, 0), 0.75);
        assert_eq!(m.get(3, 1), 0.5);
        // Diagonal and out-of-range read as zero and are not writable.
        m.set(1, 1, 0.9);
        m.set(0, 9, 0.9);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.get(0, 9), 0.0);
        assert_eq!(m.get(9, 0), 0.0);
        // Unscored pairs read as zero.
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn every_pair_has_a_distinct_slot() {
        let n = 7;
        let mut m = CopyMatrix::new(n);
        let mut value = 0.0;
        for a in 0..n {
            for b in (a + 1)..n {
                value += 1.0;
                m.set(a, b, value);
            }
        }
        let mut seen = 0.0;
        for a in 0..n {
            for b in (a + 1)..n {
                seen += 1.0;
                assert_eq!(m.get(a, b), seen, "pair ({a},{b})");
            }
        }
        assert_eq!(m.num_scored(), n * (n - 1) / 2);
    }

    #[test]
    fn pairs_iterates_in_lexicographic_order() {
        let m = CopyMatrix::from_pairs(4, [((3, 1), 0.5), ((0, 2), 0.25)]);
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![((0, 2), 0.25), ((1, 3), 0.5)]);
        assert_eq!(m.num_scored(), 2);
    }

    #[test]
    fn clear_and_empty_matrices() {
        let mut m = CopyMatrix::from_pairs(3, [((0, 1), 0.9)]);
        m.clear();
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(CopyMatrix::new(0).get(0, 0), 0.0);
        assert_eq!(CopyMatrix::default().get(0, 1), 0.0);
        assert_eq!(CopyMatrix::new(1).pairs().count(), 0);
    }
}
