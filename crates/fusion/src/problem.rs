//! Preparation of a snapshot into the dense representation the fusion
//! methods iterate over.
//!
//! Preparing once and sharing across methods keeps the per-method cost down
//! to the iterative vote/trust updates, mirroring how the paper times the
//! methods (bucketing and normalization are data preparation, not fusion).

use datamodel::{ItemId, Snapshot, SourceId, Value};
use std::collections::{BTreeMap, HashMap};

/// One candidate (tolerance-bucketed) value of a data item.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Representative value of the bucket.
    pub value: Value,
    /// Dense indices of the sources providing this value.
    pub providers: Vec<usize>,
    /// Similarity to the other candidates of the same item:
    /// `(candidate index, similarity in (0, 1])`, only entries above the
    /// similarity floor are stored.
    pub similar: Vec<(usize, f64)>,
    /// Candidate indices whose (coarser, rounded) value subsumes this one —
    /// their providers partially support this candidate under the
    /// formatting-aware methods.
    pub coarse_supporters: Vec<usize>,
}

/// A data item prepared for fusion.
#[derive(Debug, Clone)]
pub struct PreparedItem {
    /// The item identity.
    pub id: ItemId,
    /// Dense attribute index.
    pub attr: usize,
    /// Candidate values, ordered by descending support (the first candidate
    /// is the dominant value).
    pub candidates: Vec<Candidate>,
    /// Dense indices of all sources providing any value for this item.
    pub providers: Vec<usize>,
}

impl PreparedItem {
    /// Total number of providers of the item.
    pub fn num_providers(&self) -> usize {
        self.providers.len()
    }
}

/// A full snapshot prepared for fusion.
#[derive(Debug, Clone)]
pub struct FusionProblem {
    /// Sources, in dense-index order.
    pub sources: Vec<SourceId>,
    /// Number of global attributes (dense attribute indices are
    /// `0..num_attrs`).
    pub num_attrs: usize,
    /// Prepared items.
    pub items: Vec<PreparedItem>,
    /// For every source (dense index), the list of its claims as
    /// `(item index, candidate index)`.
    pub claims: Vec<Vec<(usize, usize)>>,
    // O(1) reverse lookup of `sources`; built once at preparation time so
    // per-pair conversions (copy reports, error analysis) don't pay a linear
    // scan per source.
    source_index: HashMap<SourceId, usize>,
}

/// Similarities below this floor are not stored (they contribute nothing
/// measurable to the similarity-aware methods but would bloat the problem).
const SIMILARITY_FLOOR: f64 = 0.05;

impl FusionProblem {
    /// Prepare `snapshot` for fusion.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let sources: Vec<SourceId> = snapshot.active_sources().into_iter().collect();
        let source_index: HashMap<SourceId, usize> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i))
            .collect();
        let num_attrs = snapshot.schema().num_attributes();

        let mut items = Vec::with_capacity(snapshot.num_items());
        let mut claims: Vec<Vec<(usize, usize)>> = vec![Vec::new(); sources.len()];

        for (item_id, _) in snapshot.items() {
            let buckets = snapshot.buckets(*item_id);
            if buckets.is_empty() {
                continue;
            }
            let scale = snapshot.tolerance().similarity_scale(item_id.attr);
            let mut candidates: Vec<Candidate> = buckets
                .iter()
                .map(|b| Candidate {
                    value: b.representative.clone(),
                    providers: b
                        .providers
                        .iter()
                        .filter_map(|s| source_index.get(s).copied())
                        .collect(),
                    similar: Vec::new(),
                    coarse_supporters: Vec::new(),
                })
                .collect();

            // Pairwise similarity and formatting subsumption between candidates.
            for i in 0..candidates.len() {
                for j in 0..candidates.len() {
                    if i == j {
                        continue;
                    }
                    let sim = candidates[i].value.similarity(&candidates[j].value, scale);
                    if sim > SIMILARITY_FLOOR {
                        candidates[i].similar.push((j, sim));
                    }
                    if candidates[j].value.subsumes(&candidates[i].value) {
                        candidates[i].coarse_supporters.push(j);
                    }
                }
            }

            let item_index = items.len();
            let mut providers: Vec<usize> = Vec::new();
            for (cand_index, cand) in candidates.iter().enumerate() {
                for &s in &cand.providers {
                    claims[s].push((item_index, cand_index));
                    providers.push(s);
                }
            }
            providers.sort_unstable();
            providers.dedup();

            items.push(PreparedItem {
                id: *item_id,
                attr: item_id.attr.index(),
                candidates,
                providers,
            });
        }

        Self {
            sources,
            num_attrs,
            items,
            claims,
            source_index,
        }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of prepared items.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Total number of claims.
    pub fn num_claims(&self) -> usize {
        self.claims.iter().map(Vec::len).sum()
    }

    /// Dense index of a source id, if it is part of the problem (O(1)).
    pub fn source_index(&self, source: SourceId) -> Option<usize> {
        self.source_index.get(&source).copied()
    }

    /// Turn a per-item candidate selection into an item → value mapping.
    pub fn selection_to_values(&self, selection: &[usize]) -> BTreeMap<ItemId, Value> {
        self.items
            .iter()
            .zip(selection)
            .map(|(item, &cand)| {
                let idx = cand.min(item.candidates.len().saturating_sub(1));
                (item.id, item.candidates[idx].value.clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, Value};
    use std::sync::Arc;

    fn snapshot() -> datamodel::Snapshot {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_attribute("volume", AttrKind::Numeric { scale: 1e6 }, false);
        for i in 0..4 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(105.0));
        // Volume: one exact, one rounded to millions that subsumes it.
        b.add(SourceId(0), ObjectId(0), AttrId(1), Value::number(7_528_396.0));
        b.add(
            SourceId(3),
            ObjectId(0),
            AttrId(1),
            Value::rounded_number(8_000_000.0, 1_000_000.0),
        );
        b.build(Arc::new(schema))
    }

    #[test]
    fn preparation_counts() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        assert_eq!(problem.num_sources(), 4);
        assert_eq!(problem.num_items(), 2);
        assert_eq!(problem.num_claims(), 5);
        assert_eq!(problem.num_attrs, 2);
    }

    #[test]
    fn candidates_ordered_by_support() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let price_item = problem
            .items
            .iter()
            .find(|i| i.id.attr == AttrId(0))
            .unwrap();
        assert_eq!(price_item.candidates.len(), 2);
        assert_eq!(price_item.candidates[0].providers.len(), 2);
        assert_eq!(price_item.candidates[1].providers.len(), 1);
        assert_eq!(price_item.num_providers(), 3);
    }

    #[test]
    fn similarity_and_formatting_links() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let price_item = problem
            .items
            .iter()
            .find(|i| i.id.attr == AttrId(0))
            .unwrap();
        // 100.0 and 105.0 are similar numeric values.
        assert!(!price_item.candidates[0].similar.is_empty());

        let volume_item = problem
            .items
            .iter()
            .find(|i| i.id.attr == AttrId(1))
            .unwrap();
        // The exact value is subsumed by the rounded one.
        let fine = volume_item
            .candidates
            .iter()
            .position(|c| c.value == Value::number(7_528_396.0))
            .unwrap();
        assert!(!volume_item.candidates[fine].coarse_supporters.is_empty());
    }

    #[test]
    fn claims_are_indexed_per_source() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let s0 = problem.source_index(SourceId(0)).unwrap();
        assert_eq!(problem.claims[s0].len(), 2);
        let s3 = problem.source_index(SourceId(3)).unwrap();
        assert_eq!(problem.claims[s3].len(), 1);
        assert_eq!(problem.source_index(SourceId(9)), None);
    }

    #[test]
    fn selection_round_trip() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let selection = vec![0; problem.num_items()];
        let values = problem.selection_to_values(&selection);
        assert_eq!(values.len(), 2);
        assert_eq!(
            values[&ItemId::new(ObjectId(0), AttrId(0))],
            Value::number(100.0)
        );
    }
}
