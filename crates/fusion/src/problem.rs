//! Preparation of a snapshot into the flat CSR representation the fusion
//! methods iterate over.
//!
//! Preparing once and sharing across methods keeps the per-method cost down
//! to the iterative vote/trust updates, mirroring how the paper times the
//! methods (bucketing and normalization are data preparation, not fusion).
//!
//! # Memory layout
//!
//! Everything the per-round loops read lives in contiguous arrays indexed by
//! offset tables (CSR), not in per-item heap vectors:
//!
//! * candidates are numbered **globally** (item-major, support-ordered within
//!   each item); `item_cand_offsets` maps an item to its global candidate
//!   range, and one `Vec<Value>` holds every candidate value;
//! * per-candidate providers, similarity links, and coarse (formatting)
//!   supporters are three flat arrays with one shared offset table each,
//!   indexed by global candidate;
//! * per-item provider unions and per-source claim lists are two more CSR
//!   pairs.
//!
//! The nested view the methods were written against survives as *thin slice
//! views*: [`PreparedItem`] and [`Candidate`] are `Copy` handles carrying a
//! problem reference and an index, and every accessor returns a slice into
//! the flat arrays. The inner vote loops therefore walk contiguous memory
//! the compiler can keep in cache (and vectorize), while reading like the
//! original nested code.

use datamodel::{ItemId, Snapshot, SourceId, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

/// A full snapshot prepared for fusion, laid out as flat CSR arrays.
#[derive(Debug, Clone)]
pub struct FusionProblem {
    /// Sources, in dense-index order.
    pub sources: Vec<SourceId>,
    /// Number of global attributes (dense attribute indices are
    /// `0..num_attrs`).
    pub num_attrs: usize,
    /// Item identities, in item-index order.
    item_ids: Vec<ItemId>,
    /// Dense attribute index per item.
    item_attrs: Vec<u32>,
    /// Global-candidate extent per item (`num_items + 1` offsets). Candidate
    /// `c` of item `i` has global index `item_cand_offsets[i] + c`.
    item_cand_offsets: Vec<u32>,
    /// Representative value per global candidate, ordered by descending
    /// support within each item (the first candidate is the dominant value).
    cand_values: Vec<Value>,
    /// Provider extent per global candidate (`num_candidates + 1` offsets).
    provider_offsets: Vec<u32>,
    /// Dense source indices providing each candidate, flattened.
    providers: Vec<u32>,
    /// Similarity-link extent per global candidate.
    similar_offsets: Vec<u32>,
    /// `(local candidate index, similarity in (0, 1])` links, flattened; only
    /// entries above the similarity floor are stored.
    similar: Vec<(u32, f64)>,
    /// Coarse-supporter extent per global candidate.
    coarse_offsets: Vec<u32>,
    /// Local candidate indices whose (coarser, rounded) value subsumes the
    /// candidate, flattened.
    coarse_supporters: Vec<u32>,
    /// Provider-union extent per item.
    item_provider_offsets: Vec<u32>,
    /// Sorted, deduplicated dense source indices providing anything for each
    /// item, flattened.
    item_providers: Vec<u32>,
    /// Claim extent per source (`num_sources + 1` offsets).
    claim_offsets: Vec<u32>,
    /// `(item index, local candidate index)` claims, flattened per source in
    /// item order.
    claims: Vec<(u32, u32)>,
    // O(1) reverse lookup of `sources`; built once at preparation time so
    // per-pair conversions (copy reports, error analysis) don't pay a linear
    // scan per source.
    source_index: HashMap<SourceId, usize>,
}

/// Thin view of one prepared data item: a `Copy` handle into the problem's
/// flat arrays.
#[derive(Debug, Clone, Copy)]
pub struct PreparedItem<'a> {
    problem: &'a FusionProblem,
    index: usize,
}

/// Thin view of one candidate (tolerance-bucketed) value of a data item,
/// addressed by its global candidate index.
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a> {
    problem: &'a FusionProblem,
    global: usize,
}

impl<'a> PreparedItem<'a> {
    /// Index of the item within the problem.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The item identity.
    #[inline]
    pub fn id(&self) -> ItemId {
        self.problem.item_ids[self.index]
    }

    /// Dense attribute index.
    #[inline]
    pub fn attr(&self) -> usize {
        self.problem.item_attrs[self.index] as usize
    }

    /// Global candidate range of the item.
    #[inline]
    pub fn cand_range(&self) -> Range<usize> {
        self.problem.item_cand_offsets[self.index] as usize
            ..self.problem.item_cand_offsets[self.index + 1] as usize
    }

    /// Number of candidate values.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        self.cand_range().len()
    }

    /// Candidate `c` (local index) of the item.
    #[inline]
    pub fn candidate(&self, c: usize) -> Candidate<'a> {
        let range = self.cand_range();
        debug_assert!(c < range.len());
        Candidate {
            problem: self.problem,
            global: range.start + c,
        }
    }

    /// Candidate views, ordered by descending support (the first candidate
    /// is the dominant value).
    #[inline]
    pub fn candidates(&self) -> impl ExactSizeIterator<Item = Candidate<'a>> + '_ {
        let problem = self.problem;
        self.cand_range().map(move |global| Candidate { problem, global })
    }

    /// Dense indices of all sources providing any value for this item
    /// (sorted, deduplicated).
    #[inline]
    pub fn providers(&self) -> &'a [u32] {
        let lo = self.problem.item_provider_offsets[self.index] as usize;
        let hi = self.problem.item_provider_offsets[self.index + 1] as usize;
        &self.problem.item_providers[lo..hi]
    }

    /// Total number of providers of the item.
    #[inline]
    pub fn num_providers(&self) -> usize {
        self.providers().len()
    }

    /// Total number of (candidate, provider) claim slots on the item —
    /// `Σ_c providers(c)`, one contiguous-offset subtraction.
    #[inline]
    pub fn total_provider_slots(&self) -> usize {
        let range = self.cand_range();
        (self.problem.provider_offsets[range.end] - self.problem.provider_offsets[range.start])
            as usize
    }
}

impl<'a> Candidate<'a> {
    /// Local candidate index within its item (the index selections use).
    #[inline]
    pub fn local_index(&self) -> usize {
        // Selections are per-item local indices; recover via the item range.
        let item = self
            .problem
            .item_cand_offsets
            .partition_point(|&o| (o as usize) <= self.global)
            - 1;
        self.global - self.problem.item_cand_offsets[item] as usize
    }

    /// Representative value of the bucket.
    #[inline]
    pub fn value(&self) -> &'a Value {
        &self.problem.cand_values[self.global]
    }

    /// Dense indices of the sources providing this value.
    #[inline]
    pub fn providers(&self) -> &'a [u32] {
        let lo = self.problem.provider_offsets[self.global] as usize;
        let hi = self.problem.provider_offsets[self.global + 1] as usize;
        &self.problem.providers[lo..hi]
    }

    /// Similarity to the other candidates of the same item:
    /// `(local candidate index, similarity in (0, 1])`, only entries above
    /// the similarity floor are stored.
    #[inline]
    pub fn similar(&self) -> &'a [(u32, f64)] {
        let lo = self.problem.similar_offsets[self.global] as usize;
        let hi = self.problem.similar_offsets[self.global + 1] as usize;
        &self.problem.similar[lo..hi]
    }

    /// Local candidate indices whose (coarser, rounded) value subsumes this
    /// one — their providers partially support this candidate under the
    /// formatting-aware methods.
    #[inline]
    pub fn coarse_supporters(&self) -> &'a [u32] {
        let lo = self.problem.coarse_offsets[self.global] as usize;
        let hi = self.problem.coarse_offsets[self.global + 1] as usize;
        &self.problem.coarse_supporters[lo..hi]
    }
}

/// Similarities below this floor are not stored (they contribute nothing
/// measurable to the similarity-aware methods but would bloat the problem).
const SIMILARITY_FLOOR: f64 = 0.05;

// Candidate values of one item during construction, before flattening.
struct TempCandidate {
    value: Value,
    providers: Vec<u32>,
    similar: Vec<(u32, f64)>,
    coarse_supporters: Vec<u32>,
}

impl FusionProblem {
    /// Prepare `snapshot` for fusion: bucket candidates, compute similarity
    /// and formatting links, then lay everything out as flat CSR arrays.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let sources: Vec<SourceId> = snapshot.active_sources().into_iter().collect();
        let source_index: HashMap<SourceId, usize> = sources
            .iter()
            .enumerate()
            .map(|(i, s)| (*s, i))
            .collect();
        let num_attrs = snapshot.schema().num_attributes();

        let mut item_ids = Vec::with_capacity(snapshot.num_items());
        let mut item_attrs = Vec::with_capacity(snapshot.num_items());
        let mut item_cand_offsets: Vec<u32> = vec![0];
        let mut cand_values: Vec<Value> = Vec::new();
        let mut provider_offsets: Vec<u32> = vec![0];
        let mut providers: Vec<u32> = Vec::new();
        let mut similar_offsets: Vec<u32> = vec![0];
        let mut similar: Vec<(u32, f64)> = Vec::new();
        let mut coarse_offsets: Vec<u32> = vec![0];
        let mut coarse_supporters: Vec<u32> = Vec::new();
        let mut item_provider_offsets: Vec<u32> = vec![0];
        let mut item_providers: Vec<u32> = Vec::new();
        let mut claims_nested: Vec<Vec<(u32, u32)>> = vec![Vec::new(); sources.len()];

        for (item_id, _) in snapshot.items() {
            let buckets = snapshot.buckets(*item_id);
            if buckets.is_empty() {
                continue;
            }
            let scale = snapshot.tolerance().similarity_scale(item_id.attr);
            let mut candidates: Vec<TempCandidate> = buckets
                .iter()
                .map(|b| TempCandidate {
                    value: b.representative.clone(),
                    providers: b
                        .providers
                        .iter()
                        .filter_map(|s| source_index.get(s).map(|&i| i as u32))
                        .collect(),
                    similar: Vec::new(),
                    coarse_supporters: Vec::new(),
                })
                .collect();

            // Pairwise similarity and formatting subsumption between candidates.
            for i in 0..candidates.len() {
                for j in 0..candidates.len() {
                    if i == j {
                        continue;
                    }
                    let sim = candidates[i].value.similarity(&candidates[j].value, scale);
                    if sim > SIMILARITY_FLOOR {
                        candidates[i].similar.push((j as u32, sim));
                    }
                    if candidates[j].value.subsumes(&candidates[i].value) {
                        candidates[i].coarse_supporters.push(j as u32);
                    }
                }
            }

            let item_index = item_ids.len() as u32;
            let union_start = item_providers.len();
            for (cand_index, cand) in candidates.into_iter().enumerate() {
                for &s in &cand.providers {
                    claims_nested[s as usize].push((item_index, cand_index as u32));
                    item_providers.push(s);
                }
                cand_values.push(cand.value);
                providers.extend_from_slice(&cand.providers);
                provider_offsets.push(providers.len() as u32);
                similar.extend_from_slice(&cand.similar);
                similar_offsets.push(similar.len() as u32);
                coarse_supporters.extend_from_slice(&cand.coarse_supporters);
                coarse_offsets.push(coarse_supporters.len() as u32);
            }
            let union = &mut item_providers[union_start..];
            union.sort_unstable();
            let mut kept = union_start;
            for k in union_start..item_providers.len() {
                if k == union_start || item_providers[k] != item_providers[k - 1] {
                    item_providers[kept] = item_providers[k];
                    kept += 1;
                }
            }
            item_providers.truncate(kept);
            item_provider_offsets.push(item_providers.len() as u32);
            item_cand_offsets.push(cand_values.len() as u32);

            item_ids.push(*item_id);
            item_attrs.push(item_id.attr.index() as u32);
        }

        // Flatten the per-source claim lists (each already in item order).
        let mut claim_offsets: Vec<u32> = Vec::with_capacity(sources.len() + 1);
        claim_offsets.push(0);
        let mut claims: Vec<(u32, u32)> =
            Vec::with_capacity(claims_nested.iter().map(Vec::len).sum());
        for list in claims_nested {
            claims.extend_from_slice(&list);
            claim_offsets.push(claims.len() as u32);
        }

        Self {
            sources,
            num_attrs,
            item_ids,
            item_attrs,
            item_cand_offsets,
            cand_values,
            provider_offsets,
            providers,
            similar_offsets,
            similar,
            coarse_offsets,
            coarse_supporters,
            item_provider_offsets,
            item_providers,
            claim_offsets,
            claims,
            source_index,
        }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of prepared items.
    pub fn num_items(&self) -> usize {
        self.item_ids.len()
    }

    /// Total number of candidate values across all items (the length of the
    /// global candidate axis a [`crate::types::VotePlane`] spans).
    pub fn num_candidates(&self) -> usize {
        self.cand_values.len()
    }

    /// Largest candidate count of any item — the size the per-item scratch
    /// buffers of the iterative methods need.
    pub fn max_candidates(&self) -> usize {
        self.item_cand_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Total number of claims.
    pub fn num_claims(&self) -> usize {
        self.claims.len()
    }

    /// View of item `i`.
    #[inline]
    pub fn item(&self, i: usize) -> PreparedItem<'_> {
        debug_assert!(i < self.num_items());
        PreparedItem { problem: self, index: i }
    }

    /// Views of all prepared items, in item-index order.
    #[inline]
    pub fn items(&self) -> impl ExactSizeIterator<Item = PreparedItem<'_>> + '_ {
        (0..self.num_items()).map(move |index| PreparedItem { problem: self, index })
    }

    /// Dense attribute index of item `i` (O(1), no view construction).
    #[inline]
    pub fn item_attr(&self, i: usize) -> usize {
        self.item_attrs[i] as usize
    }

    /// The claims of source `s` as `(item index, local candidate index)`
    /// pairs, in item order.
    #[inline]
    pub fn claims(&self, s: usize) -> &[(u32, u32)] {
        &self.claims[self.claim_offsets[s] as usize..self.claim_offsets[s + 1] as usize]
    }

    /// Per-source claim slices, in dense source-index order.
    #[inline]
    pub fn claims_by_source(&self) -> impl ExactSizeIterator<Item = &[(u32, u32)]> + '_ {
        (0..self.num_sources()).map(move |s| self.claims(s))
    }

    /// Global-candidate offset table (`num_items + 1` entries); shared with
    /// [`crate::types::VotePlane`] so vote storage and problem layout can
    /// never drift apart.
    #[inline]
    pub fn item_cand_offsets(&self) -> &[u32] {
        &self.item_cand_offsets
    }

    /// Dense index of a source id, if it is part of the problem (O(1)).
    pub fn source_index(&self, source: SourceId) -> Option<usize> {
        self.source_index.get(&source).copied()
    }

    /// Turn a per-item candidate selection into an item → value mapping.
    pub fn selection_to_values(&self, selection: &[usize]) -> BTreeMap<ItemId, Value> {
        self.item_ids
            .iter()
            .zip(self.item_cand_offsets.windows(2))
            .zip(selection)
            .map(|((id, w), &cand)| {
                let len = (w[1] - w[0]) as usize;
                let idx = cand.min(len.saturating_sub(1));
                (*id, self.cand_values[w[0] as usize + idx].clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, Value};
    use std::sync::Arc;

    fn snapshot() -> datamodel::Snapshot {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_attribute("volume", AttrKind::Numeric { scale: 1e6 }, false);
        for i in 0..4 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(105.0));
        // Volume: one exact, one rounded to millions that subsumes it.
        b.add(SourceId(0), ObjectId(0), AttrId(1), Value::number(7_528_396.0));
        b.add(
            SourceId(3),
            ObjectId(0),
            AttrId(1),
            Value::rounded_number(8_000_000.0, 1_000_000.0),
        );
        b.build(Arc::new(schema))
    }

    #[test]
    fn preparation_counts() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        assert_eq!(problem.num_sources(), 4);
        assert_eq!(problem.num_items(), 2);
        assert_eq!(problem.num_claims(), 5);
        assert_eq!(problem.num_attrs, 2);
        assert_eq!(problem.num_candidates(), 4);
        assert_eq!(problem.max_candidates(), 2);
    }

    #[test]
    fn candidates_ordered_by_support() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let price_item = problem
            .items()
            .find(|i| i.id().attr == AttrId(0))
            .unwrap();
        assert_eq!(price_item.num_candidates(), 2);
        assert_eq!(price_item.candidate(0).providers().len(), 2);
        assert_eq!(price_item.candidate(1).providers().len(), 1);
        assert_eq!(price_item.num_providers(), 3);
        assert_eq!(price_item.total_provider_slots(), 3);
        assert_eq!(price_item.candidate(1).local_index(), 1);
    }

    #[test]
    fn similarity_and_formatting_links() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let price_item = problem
            .items()
            .find(|i| i.id().attr == AttrId(0))
            .unwrap();
        // 100.0 and 105.0 are similar numeric values.
        assert!(!price_item.candidate(0).similar().is_empty());

        let volume_item = problem
            .items()
            .find(|i| i.id().attr == AttrId(1))
            .unwrap();
        // The exact value is subsumed by the rounded one.
        let fine = volume_item
            .candidates()
            .position(|c| c.value() == &Value::number(7_528_396.0))
            .unwrap();
        assert!(!volume_item.candidate(fine).coarse_supporters().is_empty());
    }

    #[test]
    fn claims_are_indexed_per_source() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let s0 = problem.source_index(SourceId(0)).unwrap();
        assert_eq!(problem.claims(s0).len(), 2);
        let s3 = problem.source_index(SourceId(3)).unwrap();
        assert_eq!(problem.claims(s3).len(), 1);
        assert_eq!(problem.source_index(SourceId(9)), None);
        assert_eq!(problem.claims_by_source().map(<[_]>::len).sum::<usize>(), 5);
    }

    #[test]
    fn selection_round_trip() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let selection = vec![0; problem.num_items()];
        let values = problem.selection_to_values(&selection);
        assert_eq!(values.len(), 2);
        assert_eq!(
            values[&ItemId::new(ObjectId(0), AttrId(0))],
            Value::number(100.0)
        );
    }

    #[test]
    fn offset_tables_are_consistent() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let offsets = problem.item_cand_offsets();
        assert_eq!(offsets.len(), problem.num_items() + 1);
        assert_eq!(*offsets.last().unwrap() as usize, problem.num_candidates());
        // Every item's candidate views agree with the offsets.
        for item in problem.items() {
            assert_eq!(item.candidates().len(), item.num_candidates());
            let slots: usize = item.candidates().map(|c| c.providers().len()).sum();
            assert_eq!(slots, item.total_provider_slots());
        }
    }
}
