//! Preparation of a snapshot into the flat CSR representation the fusion
//! methods iterate over.
//!
//! Preparing once and sharing across methods keeps the per-method cost down
//! to the iterative vote/trust updates, mirroring how the paper times the
//! methods (bucketing and normalization are data preparation, not fusion).
//!
//! # Memory layout
//!
//! Everything the per-round loops read lives in contiguous arrays indexed by
//! offset tables (CSR), not in per-item heap vectors:
//!
//! * candidates are numbered **globally** (item-major, support-ordered within
//!   each item); `item_cand_offsets` maps an item to its global candidate
//!   range, and one `Vec<Value>` holds every candidate value;
//! * per-candidate providers, similarity links, and coarse (formatting)
//!   supporters are three flat arrays with one shared offset table each,
//!   indexed by global candidate;
//! * per-item provider unions and per-source claim lists are two more CSR
//!   pairs.
//!
//! The nested view the methods were written against survives as *thin slice
//! views*: [`PreparedItem`] and [`Candidate`] are `Copy` handles carrying a
//! problem reference and an index, and every accessor returns a slice into
//! the flat arrays. The inner vote loops therefore walk contiguous memory
//! the compiler can keep in cache (and vectorize), while reading like the
//! original nested code.
//!
//! # Lifecycle
//!
//! Preparation has an explicit arena form: [`ProblemBuilder`] owns one
//! [`FusionProblem`] and re-fills every CSR vector **in place** on each
//! [`ProblemBuilder::prepare`] call, so a runner that fuses many snapshots in
//! sequence (the batch evaluation of the longitudinal experiments) keeps one
//! warm set of allocations instead of rebuilding the problem from scratch per
//! day. [`FusionProblem::from_snapshot`] is a thin wrapper over a one-shot
//! builder, so the fresh and refill paths are the same code by construction;
//! a property suite additionally pins refill == fresh across
//! differently-shaped consecutive snapshots.

use datamodel::{ItemId, Snapshot, SnapshotDelta, SourceId, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

/// A full snapshot prepared for fusion, laid out as flat CSR arrays.
///
/// Equality compares every CSR array, offset table, and the claim order —
/// two problems are `==` exactly when every fusion method would walk
/// identical memory; the arena property tests rely on this.
#[derive(Debug, Clone, PartialEq)]
pub struct FusionProblem {
    /// Sources, in dense-index order.
    pub sources: Vec<SourceId>,
    /// Number of global attributes (dense attribute indices are
    /// `0..num_attrs`).
    pub num_attrs: usize,
    /// Item identities, in item-index order.
    item_ids: Vec<ItemId>,
    /// Dense attribute index per item.
    item_attrs: Vec<u32>,
    /// Global-candidate extent per item (`num_items + 1` offsets). Candidate
    /// `c` of item `i` has global index `item_cand_offsets[i] + c`.
    item_cand_offsets: Vec<u32>,
    /// Representative value per global candidate, ordered by descending
    /// support within each item (the first candidate is the dominant value).
    cand_values: Vec<Value>,
    /// Dense attribute index per global candidate (the item's attribute,
    /// repeated over its candidates) — the column selector the per-attribute
    /// vote kernels gather with.
    cand_attrs: Vec<u32>,
    /// Provider extent per global candidate (`num_candidates + 1` offsets).
    provider_offsets: Vec<u32>,
    /// Dense source indices providing each candidate, flattened.
    providers: Vec<u32>,
    /// Similarity-link extent per global candidate.
    similar_offsets: Vec<u32>,
    /// `(local candidate index, similarity in (0, 1])` links, flattened; only
    /// entries above the similarity floor are stored.
    similar: Vec<(u32, f64)>,
    /// Coarse-supporter extent per global candidate.
    coarse_offsets: Vec<u32>,
    /// Local candidate indices whose (coarser, rounded) value subsumes the
    /// candidate, flattened.
    coarse_supporters: Vec<u32>,
    /// Provider-union extent per item.
    item_provider_offsets: Vec<u32>,
    /// Sorted, deduplicated dense source indices providing anything for each
    /// item, flattened.
    item_providers: Vec<u32>,
    /// Claim extent per source (`num_sources + 1` offsets).
    claim_offsets: Vec<u32>,
    /// `(item index, local candidate index)` claims, flattened per source in
    /// item order.
    claims: Vec<(u32, u32)>,
    // O(1) reverse lookup of `sources`; built once at preparation time so
    // per-pair conversions (copy reports, error analysis) don't pay a linear
    // scan per source.
    source_index: HashMap<SourceId, usize>,
}

/// Thin view of one prepared data item: a `Copy` handle into the problem's
/// flat arrays.
#[derive(Debug, Clone, Copy)]
pub struct PreparedItem<'a> {
    problem: &'a FusionProblem,
    index: usize,
}

/// Thin view of one candidate (tolerance-bucketed) value of a data item,
/// addressed by its global candidate index.
#[derive(Debug, Clone, Copy)]
pub struct Candidate<'a> {
    problem: &'a FusionProblem,
    global: usize,
}

impl<'a> PreparedItem<'a> {
    /// Index of the item within the problem.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The item identity.
    #[inline]
    pub fn id(&self) -> ItemId {
        self.problem.item_ids[self.index]
    }

    /// Dense attribute index.
    #[inline]
    pub fn attr(&self) -> usize {
        self.problem.item_attrs[self.index] as usize
    }

    /// Global candidate range of the item.
    #[inline]
    pub fn cand_range(&self) -> Range<usize> {
        self.problem.item_cand_offsets[self.index] as usize
            ..self.problem.item_cand_offsets[self.index + 1] as usize
    }

    /// Number of candidate values.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        self.cand_range().len()
    }

    /// Candidate `c` (local index) of the item.
    #[inline]
    pub fn candidate(&self, c: usize) -> Candidate<'a> {
        let range = self.cand_range();
        debug_assert!(c < range.len());
        Candidate {
            problem: self.problem,
            global: range.start + c,
        }
    }

    /// Candidate views, ordered by descending support (the first candidate
    /// is the dominant value).
    #[inline]
    pub fn candidates(&self) -> impl ExactSizeIterator<Item = Candidate<'a>> + '_ {
        let problem = self.problem;
        self.cand_range().map(move |global| Candidate { problem, global })
    }

    /// Dense indices of all sources providing any value for this item
    /// (sorted, deduplicated).
    #[inline]
    pub fn providers(&self) -> &'a [u32] {
        let lo = self.problem.item_provider_offsets[self.index] as usize;
        let hi = self.problem.item_provider_offsets[self.index + 1] as usize;
        &self.problem.item_providers[lo..hi]
    }

    /// Total number of providers of the item.
    #[inline]
    pub fn num_providers(&self) -> usize {
        self.providers().len()
    }

    /// Total number of (candidate, provider) claim slots on the item —
    /// `Σ_c providers(c)`, one contiguous-offset subtraction.
    #[inline]
    pub fn total_provider_slots(&self) -> usize {
        let range = self.cand_range();
        (self.problem.provider_offsets[range.end] - self.problem.provider_offsets[range.start])
            as usize
    }
}

impl<'a> Candidate<'a> {
    /// Local candidate index within its item (the index selections use).
    #[inline]
    pub fn local_index(&self) -> usize {
        // Selections are per-item local indices; recover via the item range.
        let item = self
            .problem
            .item_cand_offsets
            .partition_point(|&o| (o as usize) <= self.global)
            - 1;
        self.global - self.problem.item_cand_offsets[item] as usize
    }

    /// Representative value of the bucket.
    #[inline]
    pub fn value(&self) -> &'a Value {
        &self.problem.cand_values[self.global]
    }

    /// Dense indices of the sources providing this value.
    #[inline]
    pub fn providers(&self) -> &'a [u32] {
        let lo = self.problem.provider_offsets[self.global] as usize;
        let hi = self.problem.provider_offsets[self.global + 1] as usize;
        &self.problem.providers[lo..hi]
    }

    /// Similarity to the other candidates of the same item:
    /// `(local candidate index, similarity in (0, 1])`, only entries above
    /// the similarity floor are stored.
    #[inline]
    pub fn similar(&self) -> &'a [(u32, f64)] {
        let lo = self.problem.similar_offsets[self.global] as usize;
        let hi = self.problem.similar_offsets[self.global + 1] as usize;
        &self.problem.similar[lo..hi]
    }

    /// Local candidate indices whose (coarser, rounded) value subsumes this
    /// one — their providers partially support this candidate under the
    /// formatting-aware methods.
    #[inline]
    pub fn coarse_supporters(&self) -> &'a [u32] {
        let lo = self.problem.coarse_offsets[self.global] as usize;
        let hi = self.problem.coarse_offsets[self.global + 1] as usize;
        &self.problem.coarse_supporters[lo..hi]
    }
}

/// Similarities below this floor are not stored (they contribute nothing
/// measurable to the similarity-aware methods but would bloat the problem).
const SIMILARITY_FLOOR: f64 = 0.05;

/// Reusable arena that prepares snapshots into one owned [`FusionProblem`],
/// re-filling every CSR vector **in place** on each [`prepare`] call.
///
/// Capacities grow to the largest snapshot seen and are then reused, so a
/// shard of a batch evaluation that fuses many consecutive days pays the
/// problem-construction allocations only once. The refill path is the *only*
/// construction path ([`FusionProblem::from_snapshot`] delegates here), so a
/// warm and a fresh preparation of the same snapshot are identical by
/// construction — and additionally pinned by the arena property suite.
///
/// [`prepare`]: ProblemBuilder::prepare
#[derive(Debug, Default)]
pub struct ProblemBuilder {
    problem: FusionProblem,
    // Per-source claim lists during construction; the inner vectors keep
    // their capacity across refills.
    claims_nested: Vec<Vec<(u32, u32)>>,
    // Reusable bucketing scratch + recycled bucket storage: the per-item
    // tolerance bucketing is where a cold preparation spends ~90% of its
    // allocations, so the arena owns it too.
    bucketer: datamodel::Bucketer,
    buckets: Vec<datamodel::ValueBucket>,
    // Second problem buffer for the partial-refill path: `prepare_delta`
    // swaps the previous day's problem in here and splices its clean rows
    // into the (re-filled) primary, so both live sets of allocations are
    // recycled day over day.
    spare: FusionProblem,
    // Old dense source index -> new dense source index (`u32::MAX` for
    // sources that left the snapshot), rebuilt per `prepare_delta`.
    remap: Vec<u32>,
}

impl ProblemBuilder {
    /// An empty arena (the first [`prepare`](Self::prepare) sizes it).
    pub fn new() -> Self {
        Self::default()
    }

    /// The problem most recently prepared (empty before the first
    /// [`prepare`](Self::prepare) call).
    pub fn problem(&self) -> &FusionProblem {
        &self.problem
    }

    /// Give up the arena and keep only the prepared problem.
    pub fn into_problem(self) -> FusionProblem {
        self.problem
    }

    /// Prepare `snapshot` for fusion: bucket candidates, compute similarity
    /// and formatting links, then lay everything out as flat CSR arrays —
    /// re-using the arena's existing allocations.
    pub fn prepare(&mut self, snapshot: &Snapshot) -> &FusionProblem {
        let p = &mut self.problem;
        p.sources.clear();
        p.sources.extend(snapshot.active_sources());
        p.source_index.clear();
        p.source_index
            .extend(p.sources.iter().enumerate().map(|(i, s)| (*s, i)));
        p.num_attrs = snapshot.schema().num_attributes();

        p.item_ids.clear();
        p.item_attrs.clear();
        p.item_cand_offsets.clear();
        p.item_cand_offsets.push(0);
        p.cand_values.clear();
        p.cand_attrs.clear();
        p.provider_offsets.clear();
        p.provider_offsets.push(0);
        p.providers.clear();
        p.similar_offsets.clear();
        p.similar_offsets.push(0);
        p.similar.clear();
        p.coarse_offsets.clear();
        p.coarse_offsets.push(0);
        p.coarse_supporters.clear();
        p.item_provider_offsets.clear();
        p.item_provider_offsets.push(0);
        p.item_providers.clear();
        p.claims.clear();
        p.claim_offsets.clear();

        let num_sources = p.sources.len();
        for list in self.claims_nested.iter_mut() {
            list.clear();
        }
        if self.claims_nested.len() < num_sources {
            self.claims_nested.resize_with(num_sources, Vec::new);
        }

        for (item_id, _) in snapshot.items() {
            prepare_item_into(
                p,
                &mut self.claims_nested,
                &mut self.bucketer,
                &mut self.buckets,
                snapshot,
                *item_id,
            );
        }

        // Flatten the per-source claim lists (each already in item order).
        p.claim_offsets.push(0);
        for list in self.claims_nested.iter().take(num_sources) {
            p.claims.extend_from_slice(list);
            p.claim_offsets.push(p.claims.len() as u32);
        }

        &self.problem
    }

    /// Prepare `snapshot` by re-bucketing only the items `delta` marks dirty
    /// and splicing every clean item's CSR rows forward from the previous
    /// preparation — the partial-refill entry point of the delta engine.
    ///
    /// # Contract
    ///
    /// The builder's current [`problem`](Self::problem) must be the
    /// preparation of the `prev` snapshot that `delta` was diffed against
    /// (i.e. the last `prepare`/`prepare_delta` call was for `prev`). Under
    /// that contract the result is **identical** (`==`, every array and
    /// offset table) to a cold [`prepare`](Self::prepare) of `snapshot`:
    /// a clean item buckets to the same candidates, similarity links, and
    /// provider rows by [`SnapshotDelta`]'s definition of clean (unchanged
    /// observation row, unchanged attribute tolerance/scale), so copying its
    /// rows is the same computation with the re-bucketing skipped. The
    /// equality is pinned across mutation sequences by
    /// `tests/delta_equivalence.rs`.
    ///
    /// Items absent from the previous preparation (or dirty) are recomputed
    /// from the snapshot, so the call degrades gracefully — with an
    /// all-dirty delta it *is* a full `prepare`, just with an extra buffer
    /// swap.
    pub fn prepare_delta(&mut self, snapshot: &Snapshot, delta: &SnapshotDelta) -> &FusionProblem {
        std::mem::swap(&mut self.problem, &mut self.spare);
        let prev = &self.spare;
        let p = &mut self.problem;

        p.sources.clear();
        p.sources.extend(snapshot.active_sources());
        p.source_index.clear();
        p.source_index
            .extend(p.sources.iter().enumerate().map(|(i, s)| (*s, i)));
        p.num_attrs = snapshot.schema().num_attributes();

        // Old dense source index -> new dense source index. Both source
        // lists are sorted by `SourceId`, so the remap is monotonic over the
        // surviving sources — which is what keeps spliced (sorted) provider
        // unions sorted without re-sorting.
        self.remap.clear();
        self.remap.resize(prev.sources.len(), u32::MAX);
        for (old, source) in prev.sources.iter().enumerate() {
            if let Some(&new) = p.source_index.get(source) {
                self.remap[old] = new as u32;
            }
        }

        p.item_ids.clear();
        p.item_attrs.clear();
        p.item_cand_offsets.clear();
        p.item_cand_offsets.push(0);
        p.cand_values.clear();
        p.cand_attrs.clear();
        p.provider_offsets.clear();
        p.provider_offsets.push(0);
        p.providers.clear();
        p.similar_offsets.clear();
        p.similar_offsets.push(0);
        p.similar.clear();
        p.coarse_offsets.clear();
        p.coarse_offsets.push(0);
        p.coarse_supporters.clear();
        p.item_provider_offsets.clear();
        p.item_provider_offsets.push(0);
        p.item_providers.clear();
        p.claims.clear();
        p.claim_offsets.clear();

        let num_sources = p.sources.len();
        for list in self.claims_nested.iter_mut() {
            list.clear();
        }
        if self.claims_nested.len() < num_sources {
            self.claims_nested.resize_with(num_sources, Vec::new);
        }

        // Merge-walk the snapshot's (sorted) items against the previous
        // preparation's (sorted) item table.
        let mut prev_pos = 0usize;
        for (item_id, _) in snapshot.items() {
            while prev_pos < prev.item_ids.len() && prev.item_ids[prev_pos] < *item_id {
                prev_pos += 1; // items that left the snapshot: dropped
            }
            let matched = prev_pos < prev.item_ids.len() && prev.item_ids[prev_pos] == *item_id;
            if matched && !delta.is_dirty_item(*item_id) {
                splice_item_from(p, &mut self.claims_nested, prev, &self.remap, prev_pos);
            } else {
                prepare_item_into(
                    p,
                    &mut self.claims_nested,
                    &mut self.bucketer,
                    &mut self.buckets,
                    snapshot,
                    *item_id,
                );
            }
            if matched {
                prev_pos += 1;
            }
        }

        p.claim_offsets.push(0);
        for list in self.claims_nested.iter().take(num_sources) {
            p.claims.extend_from_slice(list);
            p.claim_offsets.push(p.claims.len() as u32);
        }

        &self.problem
    }
}

/// Bucket one snapshot item and append its candidate values, provider rows,
/// similarity/formatting links, provider union, and claims to the problem
/// under construction — the shared per-item body of [`ProblemBuilder`]'s
/// full and partial refill paths.
fn prepare_item_into(
    p: &mut FusionProblem,
    claims_nested: &mut [Vec<(u32, u32)>],
    bucketer: &mut datamodel::Bucketer,
    buckets: &mut Vec<datamodel::ValueBucket>,
    snapshot: &Snapshot,
    item_id: ItemId,
) {
    snapshot.buckets_into(item_id, bucketer, buckets);
    if buckets.is_empty() {
        return;
    }
    let scale = snapshot.tolerance().similarity_scale(item_id.attr);
    let item_index = p.item_ids.len() as u32;
    let cand_start = p.cand_values.len();
    let union_start = p.item_providers.len();

    // Candidate values, providers, claims, and the provider union, in
    // bucket (descending-support) order.
    for (cand_index, bucket) in buckets.iter().enumerate() {
        p.cand_values.push(bucket.representative.clone());
        for source in &bucket.providers {
            let Some(&s) = p.source_index.get(source) else {
                continue;
            };
            p.providers.push(s as u32);
            p.item_providers.push(s as u32);
            claims_nested[s].push((item_index, cand_index as u32));
        }
        p.provider_offsets.push(p.providers.len() as u32);
    }
    // One attribute index per candidate just pushed.
    p.cand_attrs
        .resize(p.cand_values.len(), item_id.attr.index() as u32);

    // Pairwise similarity and formatting subsumption between candidates
    // (all of this item's values are already in `cand_values`).
    for i in 0..buckets.len() {
        for j in 0..buckets.len() {
            if i == j {
                continue;
            }
            let vi = &p.cand_values[cand_start + i];
            let vj = &p.cand_values[cand_start + j];
            let sim = vi.similarity(vj, scale);
            if sim > SIMILARITY_FLOOR {
                p.similar.push((j as u32, sim));
            }
            if vj.subsumes(vi) {
                p.coarse_supporters.push(j as u32);
            }
        }
        p.similar_offsets.push(p.similar.len() as u32);
        p.coarse_offsets.push(p.coarse_supporters.len() as u32);
    }

    let union = &mut p.item_providers[union_start..];
    union.sort_unstable();
    let mut kept = union_start;
    for k in union_start..p.item_providers.len() {
        if k == union_start || p.item_providers[k] != p.item_providers[k - 1] {
            p.item_providers[kept] = p.item_providers[k];
            kept += 1;
        }
    }
    p.item_providers.truncate(kept);
    p.item_provider_offsets.push(p.item_providers.len() as u32);
    p.item_cand_offsets.push(p.cand_values.len() as u32);

    p.item_ids.push(item_id);
    p.item_attrs.push(item_id.attr.index() as u32);
}

/// Append one clean item to the problem under construction by copying its
/// CSR rows from the previous day's preparation, translating dense source
/// indices through `remap`. Skips re-bucketing and the O(k²) similarity
/// pass entirely — the data-movement saving the delta engine is built on.
///
/// A clean item never references a removed source (removing a source dirties
/// every item it claimed), so every provider remap hit is guaranteed under
/// the [`ProblemBuilder::prepare_delta`] contract.
fn splice_item_from(
    p: &mut FusionProblem,
    claims_nested: &mut [Vec<(u32, u32)>],
    prev: &FusionProblem,
    remap: &[u32],
    old_index: usize,
) {
    let item_index = p.item_ids.len() as u32;
    let cand_lo = prev.item_cand_offsets[old_index] as usize;
    let cand_hi = prev.item_cand_offsets[old_index + 1] as usize;

    for g in cand_lo..cand_hi {
        let local = (g - cand_lo) as u32;
        p.cand_values.push(prev.cand_values[g].clone());
        let plo = prev.provider_offsets[g] as usize;
        let phi = prev.provider_offsets[g + 1] as usize;
        for &old_s in &prev.providers[plo..phi] {
            let s = remap[old_s as usize];
            debug_assert_ne!(s, u32::MAX, "clean item references a removed source");
            p.providers.push(s);
            claims_nested[s as usize].push((item_index, local));
        }
        p.provider_offsets.push(p.providers.len() as u32);
    }
    p.cand_attrs
        .extend_from_slice(&prev.cand_attrs[cand_lo..cand_hi]);

    // Similarity and coarse links hold *local* candidate indices, so they
    // copy verbatim; only the offset tables are re-based.
    let sim_lo = prev.similar_offsets[cand_lo];
    let sim_base = p.similar.len() as u32;
    p.similar
        .extend_from_slice(&prev.similar[sim_lo as usize..prev.similar_offsets[cand_hi] as usize]);
    let coarse_lo = prev.coarse_offsets[cand_lo];
    let coarse_base = p.coarse_supporters.len() as u32;
    p.coarse_supporters.extend_from_slice(
        &prev.coarse_supporters[coarse_lo as usize..prev.coarse_offsets[cand_hi] as usize],
    );
    for g in cand_lo..cand_hi {
        p.similar_offsets
            .push(sim_base + prev.similar_offsets[g + 1] - sim_lo);
        p.coarse_offsets
            .push(coarse_base + prev.coarse_offsets[g + 1] - coarse_lo);
    }

    // The previous union is sorted by old dense index; the remap is
    // monotonic, so the translated union stays sorted and deduplicated.
    let up_lo = prev.item_provider_offsets[old_index] as usize;
    let up_hi = prev.item_provider_offsets[old_index + 1] as usize;
    p.item_providers.extend(
        prev.item_providers[up_lo..up_hi]
            .iter()
            .map(|&old_s| remap[old_s as usize]),
    );
    p.item_provider_offsets.push(p.item_providers.len() as u32);
    p.item_cand_offsets.push(p.cand_values.len() as u32);
    p.item_ids.push(prev.item_ids[old_index]);
    p.item_attrs.push(prev.item_attrs[old_index]);
}

impl Default for FusionProblem {
    /// An empty problem (no sources, no items) with consistent offset tables;
    /// the state a [`ProblemBuilder`] holds before its first refill.
    fn default() -> Self {
        Self {
            sources: Vec::new(),
            num_attrs: 0,
            item_ids: Vec::new(),
            item_attrs: Vec::new(),
            item_cand_offsets: vec![0],
            cand_values: Vec::new(),
            cand_attrs: Vec::new(),
            provider_offsets: vec![0],
            providers: Vec::new(),
            similar_offsets: vec![0],
            similar: Vec::new(),
            coarse_offsets: vec![0],
            coarse_supporters: Vec::new(),
            item_provider_offsets: vec![0],
            item_providers: Vec::new(),
            claim_offsets: vec![0],
            claims: Vec::new(),
            source_index: HashMap::new(),
        }
    }
}

impl FusionProblem {
    /// Prepare `snapshot` for fusion with a one-shot [`ProblemBuilder`].
    /// Callers preparing many snapshots should hold a builder and
    /// [`ProblemBuilder::prepare`] into it instead.
    pub fn from_snapshot(snapshot: &Snapshot) -> Self {
        let mut builder = ProblemBuilder::new();
        builder.prepare(snapshot);
        builder.into_problem()
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of prepared items.
    pub fn num_items(&self) -> usize {
        self.item_ids.len()
    }

    /// Total number of candidate values across all items (the length of the
    /// global candidate axis a [`crate::types::VotePlane`] spans).
    pub fn num_candidates(&self) -> usize {
        self.cand_values.len()
    }

    /// Largest candidate count of any item — the size the per-item scratch
    /// buffers of the iterative methods need.
    pub fn max_candidates(&self) -> usize {
        self.item_cand_offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Total number of claims.
    pub fn num_claims(&self) -> usize {
        self.claims.len()
    }

    /// View of item `i`.
    #[inline]
    pub fn item(&self, i: usize) -> PreparedItem<'_> {
        debug_assert!(i < self.num_items());
        PreparedItem { problem: self, index: i }
    }

    /// Views of all prepared items, in item-index order.
    #[inline]
    pub fn items(&self) -> impl ExactSizeIterator<Item = PreparedItem<'_>> + '_ {
        (0..self.num_items()).map(move |index| PreparedItem { problem: self, index })
    }

    /// Dense attribute index of item `i` (O(1), no view construction).
    #[inline]
    pub fn item_attr(&self, i: usize) -> usize {
        self.item_attrs[i] as usize
    }

    /// The claims of source `s` as `(item index, local candidate index)`
    /// pairs, in item order.
    #[inline]
    pub fn claims(&self, s: usize) -> &[(u32, u32)] {
        &self.claims[self.claim_offsets[s] as usize..self.claim_offsets[s + 1] as usize]
    }

    /// Per-source claim slices, in dense source-index order.
    #[inline]
    pub fn claims_by_source(&self) -> impl ExactSizeIterator<Item = &[(u32, u32)]> + '_ {
        (0..self.num_sources()).map(move |s| self.claims(s))
    }

    /// Global-candidate offset table (`num_items + 1` entries); shared with
    /// [`crate::types::VotePlane`] so vote storage and problem layout can
    /// never drift apart.
    #[inline]
    pub fn item_cand_offsets(&self) -> &[u32] {
        &self.item_cand_offsets
    }

    /// Dense attribute index per global candidate (`num_candidates` entries:
    /// the owning item's attribute, repeated). Raw CSR table for the
    /// kernel-level consumers (SIMD kernels, benches, tests).
    #[inline]
    pub fn cand_attrs(&self) -> &[u32] {
        &self.cand_attrs
    }

    /// Provider extent per global candidate (`num_candidates + 1` offsets).
    /// Raw CSR table for the kernel-level consumers.
    #[inline]
    pub fn provider_offsets(&self) -> &[u32] {
        &self.provider_offsets
    }

    /// Flat dense source indices providing each candidate, indexed by
    /// [`provider_offsets`](Self::provider_offsets). Raw CSR table for the
    /// kernel-level consumers.
    #[inline]
    pub fn providers_flat(&self) -> &[u32] {
        &self.providers
    }

    /// Dense attribute index per item (`num_items` entries). Raw table for
    /// the kernel-level consumers.
    #[inline]
    pub fn item_attrs_flat(&self) -> &[u32] {
        &self.item_attrs
    }

    /// Dense index of a source id, if it is part of the problem (O(1)).
    pub fn source_index(&self, source: SourceId) -> Option<usize> {
        self.source_index.get(&source).copied()
    }

    /// Turn a per-item candidate selection into an item → value mapping.
    pub fn selection_to_values(&self, selection: &[usize]) -> BTreeMap<ItemId, Value> {
        self.item_ids
            .iter()
            .zip(self.item_cand_offsets.windows(2))
            .zip(selection)
            .map(|((id, w), &cand)| {
                let len = (w[1] - w[0]) as usize;
                let idx = cand.min(len.saturating_sub(1));
                (*id, self.cand_values[w[0] as usize + idx].clone())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, SnapshotBuilder, Value};
    use std::sync::Arc;

    fn snapshot() -> datamodel::Snapshot {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_attribute("volume", AttrKind::Numeric { scale: 1e6 }, false);
        for i in 0..4 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(105.0));
        // Volume: one exact, one rounded to millions that subsumes it.
        b.add(SourceId(0), ObjectId(0), AttrId(1), Value::number(7_528_396.0));
        b.add(
            SourceId(3),
            ObjectId(0),
            AttrId(1),
            Value::rounded_number(8_000_000.0, 1_000_000.0),
        );
        b.build(Arc::new(schema))
    }

    #[test]
    fn preparation_counts() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        assert_eq!(problem.num_sources(), 4);
        assert_eq!(problem.num_items(), 2);
        assert_eq!(problem.num_claims(), 5);
        assert_eq!(problem.num_attrs, 2);
        assert_eq!(problem.num_candidates(), 4);
        assert_eq!(problem.max_candidates(), 2);
    }

    #[test]
    fn candidates_ordered_by_support() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let price_item = problem
            .items()
            .find(|i| i.id().attr == AttrId(0))
            .unwrap();
        assert_eq!(price_item.num_candidates(), 2);
        assert_eq!(price_item.candidate(0).providers().len(), 2);
        assert_eq!(price_item.candidate(1).providers().len(), 1);
        assert_eq!(price_item.num_providers(), 3);
        assert_eq!(price_item.total_provider_slots(), 3);
        assert_eq!(price_item.candidate(1).local_index(), 1);
    }

    #[test]
    fn similarity_and_formatting_links() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let price_item = problem
            .items()
            .find(|i| i.id().attr == AttrId(0))
            .unwrap();
        // 100.0 and 105.0 are similar numeric values.
        assert!(!price_item.candidate(0).similar().is_empty());

        let volume_item = problem
            .items()
            .find(|i| i.id().attr == AttrId(1))
            .unwrap();
        // The exact value is subsumed by the rounded one.
        let fine = volume_item
            .candidates()
            .position(|c| c.value() == &Value::number(7_528_396.0))
            .unwrap();
        assert!(!volume_item.candidate(fine).coarse_supporters().is_empty());
    }

    #[test]
    fn claims_are_indexed_per_source() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let s0 = problem.source_index(SourceId(0)).unwrap();
        assert_eq!(problem.claims(s0).len(), 2);
        let s3 = problem.source_index(SourceId(3)).unwrap();
        assert_eq!(problem.claims(s3).len(), 1);
        assert_eq!(problem.source_index(SourceId(9)), None);
        assert_eq!(problem.claims_by_source().map(<[_]>::len).sum::<usize>(), 5);
    }

    #[test]
    fn selection_round_trip() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let selection = vec![0; problem.num_items()];
        let values = problem.selection_to_values(&selection);
        assert_eq!(values.len(), 2);
        assert_eq!(
            values[&ItemId::new(ObjectId(0), AttrId(0))],
            Value::number(100.0)
        );
    }

    #[test]
    fn builder_refill_matches_fresh_preparation() {
        let snap_a = snapshot();
        // A differently-shaped second snapshot: fewer sources, other values.
        let mut schema = DomainSchema::new("test2");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        for i in 0..2 {
            schema.add_source(format!("t{i}"), false);
        }
        let mut b = SnapshotBuilder::new(1);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(42.0));
        b.add(SourceId(1), ObjectId(1), AttrId(0), Value::number(7.0));
        let snap_b = b.build(Arc::new(schema));

        let mut builder = ProblemBuilder::new();
        // Warm the arena on the big snapshot, then refill with the small one
        // (and back): every refill must equal a fresh preparation.
        assert_eq!(*builder.prepare(&snap_a), FusionProblem::from_snapshot(&snap_a));
        assert_eq!(*builder.prepare(&snap_b), FusionProblem::from_snapshot(&snap_b));
        assert_eq!(*builder.prepare(&snap_a), FusionProblem::from_snapshot(&snap_a));
        assert_eq!(builder.problem().num_items(), 2);
        assert_eq!(builder.into_problem(), FusionProblem::from_snapshot(&snap_a));
    }

    #[test]
    fn prepare_delta_matches_full_prepare() {
        use datamodel::SnapshotDelta;

        let day0 = snapshot();
        // Day 1: edit one price claim, retract the rounded volume claim
        // (source 3 leaves entirely), add a new item from a new source —
        // all with the day-0 tolerance context pinned so only the touched
        // items go dirty.
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("price", AttrKind::Numeric { scale: 100.0 }, false);
        schema.add_attribute("volume", AttrKind::Numeric { scale: 1e6 }, false);
        for i in 0..6 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(1);
        b.add(SourceId(0), ObjectId(0), AttrId(0), Value::number(100.0));
        b.add(SourceId(1), ObjectId(0), AttrId(0), Value::number(101.0));
        b.add(SourceId(2), ObjectId(0), AttrId(0), Value::number(105.0));
        b.add(SourceId(0), ObjectId(0), AttrId(1), Value::number(7_528_396.0));
        b.add(SourceId(5), ObjectId(1), AttrId(0), Value::number(55.0));
        let day1 =
            b.build_with_tolerance(Arc::new(schema), day0.tolerance().clone());

        let delta = SnapshotDelta::between(&day0, &day1);
        assert!(delta.is_dirty_item(ItemId::new(ObjectId(0), AttrId(0))));
        assert!(delta.is_dirty_item(ItemId::new(ObjectId(0), AttrId(1))));
        assert!(delta.is_dirty_item(ItemId::new(ObjectId(1), AttrId(0))));

        let mut builder = ProblemBuilder::new();
        builder.prepare(&day0);
        assert_eq!(
            *builder.prepare_delta(&day1, &delta),
            FusionProblem::from_snapshot(&day1)
        );

        // A no-op day over the now-current day1 splices every row.
        let noop = SnapshotDelta::between(&day1, &day1);
        assert!(noop.is_empty());
        assert_eq!(
            *builder.prepare_delta(&day1, &noop),
            FusionProblem::from_snapshot(&day1)
        );

        // And going back to day0's shape (item/source removal + edits) still
        // matches a cold preparation.
        let back = SnapshotDelta::between(&day1, &day0);
        assert_eq!(
            *builder.prepare_delta(&day0, &back),
            FusionProblem::from_snapshot(&day0)
        );
    }

    #[test]
    fn default_problem_is_empty_and_consistent() {
        let p = FusionProblem::default();
        assert_eq!(p.num_items(), 0);
        assert_eq!(p.num_sources(), 0);
        assert_eq!(p.num_candidates(), 0);
        assert_eq!(p.num_claims(), 0);
        assert_eq!(p.max_candidates(), 0);
        assert_eq!(p.item_cand_offsets(), &[0]);
        assert!(p.items().next().is_none());
    }

    #[test]
    fn offset_tables_are_consistent() {
        let problem = FusionProblem::from_snapshot(&snapshot());
        let offsets = problem.item_cand_offsets();
        assert_eq!(offsets.len(), problem.num_items() + 1);
        assert_eq!(*offsets.last().unwrap() as usize, problem.num_candidates());
        // Every item's candidate views agree with the offsets.
        for item in problem.items() {
            assert_eq!(item.candidates().len(), item.num_candidates());
            let slots: usize = item.candidates().map(|c| c.providers().len()).sum();
            assert_eq!(slots, item.total_provider_slots());
        }
    }
}
