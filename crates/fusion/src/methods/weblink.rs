//! Web-link based methods: HUB, AVGLOG, INVEST, POOLEDINVEST.
//!
//! Reproduces the "Web-link based" category of the paper's Table 6 (rows
//! 2-5 of Table 7); the discussion of their trust deviation is in
//! Section 4.1 and Figure 12 times them.
//!
//! These methods are inspired by measuring web-page authority from link
//! analysis (Kleinberg's hubs and authorities) and by the fact-finding
//! framework of Pasternack & Roth. Source trust and value votes reinforce
//! each other; normalization (dividing by the maximum) keeps the scores from
//! growing without bound — except for POOLEDINVEST, whose per-item linear
//! rescaling makes normalization unnecessary (and whose trust scale therefore
//! drifts far away from sampled accuracies, reproducing the large trust
//! deviation the paper reports for it).

use crate::chunking::{self, ChunkPlans};
use crate::methods::{effective_rounds, initial_trust, FusionMethod};
use crate::problem::FusionProblem;
use crate::types::{normalize_by_max, FusionOptions, FusionResult, FusionScratch, TrustEstimate};
use std::time::Instant;

/// HUB (Kleinberg-style sums): a value's vote is the sum of its providers'
/// trust; a source's trust is the sum of its values' votes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Hub;

/// AVGLOG: like HUB but dampens the effect of the number of provided values
/// by averaging the votes and scaling by the logarithm of the claim count.
#[derive(Debug, Clone, Copy, Default)]
pub struct AvgLog;

/// INVEST: a source invests its trust uniformly among its claims; value votes
/// grow non-linearly in the invested amount and are paid back proportionally.
#[derive(Debug, Clone, Copy)]
pub struct Invest {
    /// Non-linear vote growth exponent (1.2 in Pasternack & Roth).
    pub growth: f64,
}

impl Default for Invest {
    fn default() -> Self {
        Self { growth: 1.2 }
    }
}

/// POOLEDINVEST: INVEST with the votes of each item linearly rescaled so that
/// they sum to the total investment on the item.
#[derive(Debug, Clone, Copy)]
pub struct PooledInvest {
    /// Non-linear vote growth exponent (1.4 in Pasternack & Roth).
    pub growth: f64,
}

impl Default for PooledInvest {
    fn default() -> Self {
        Self { growth: 1.4 }
    }
}

impl FusionMethod for Hub {
    fn name(&self) -> String {
        "Hub".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        let start = Instant::now();
        let mut trust = initial_trust(problem, options, 1.0);
        let max_rounds = effective_rounds(options);
        let plans = ChunkPlans::from_options(options, problem);
        let (item_plan, source_plan) = ChunkPlans::split(&plans);
        let votes = &mut scratch.plane;
        // Fused refill-accumulate: the plane is shaped for `problem` and
        // filled with the first round's votes in one pass (no intermediate
        // zero-fill); subsequent rounds re-accumulate at the loop tail only
        // when another iteration actually runs.
        votes.refill_accumulate_chunked(problem, &trust, item_plan);
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            chunking::normalize_plane_by_max(votes, item_plan);
            let mut new_trust = vec![0.0; problem.num_sources()];
            let votes_r: &_ = votes;
            chunking::for_each_slot(&mut new_trust, source_plan, |s, slot| {
                *slot = problem
                    .claims(s)
                    .iter()
                    .map(|&(i, c)| votes_r.get(i as usize, c as usize))
                    .sum();
            });
            normalize_by_max(&mut new_trust);
            let new_estimate = TrustEstimate {
                overall: new_trust,
                per_attr: None,
            };
            let change = new_estimate.max_change(&trust);
            trust = new_estimate;
            if change < options.epsilon || rounds >= max_rounds {
                break;
            }
            votes.accumulate_weighted_votes_chunked(problem, &trust, item_plan);
        }
        let mut selection = Vec::new();
        chunking::argmax_plane_into(votes, item_plan, &mut selection);
        FusionResult::from_selection(&self.name(), problem, selection, trust, rounds, start)
    }
}

impl FusionMethod for AvgLog {
    fn name(&self) -> String {
        "AvgLog".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        let start = Instant::now();
        let mut trust = initial_trust(problem, options, 1.0);
        let max_rounds = effective_rounds(options);
        let plans = ChunkPlans::from_options(options, problem);
        let (item_plan, source_plan) = ChunkPlans::split(&plans);
        let votes = &mut scratch.plane;
        // Same fused refill-accumulate structure as HUB above.
        votes.refill_accumulate_chunked(problem, &trust, item_plan);
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            chunking::normalize_plane_by_max(votes, item_plan);
            let mut new_trust = vec![0.0; problem.num_sources()];
            let votes_r: &_ = votes;
            chunking::for_each_slot(&mut new_trust, source_plan, |s, slot| {
                let claims = problem.claims(s);
                if claims.is_empty() {
                    return;
                }
                let avg: f64 = claims
                    .iter()
                    .map(|&(i, c)| votes_r.get(i as usize, c as usize))
                    .sum::<f64>()
                    / claims.len() as f64;
                *slot = (1.0 + claims.len() as f64).ln() * avg;
            });
            normalize_by_max(&mut new_trust);
            let new_estimate = TrustEstimate {
                overall: new_trust,
                per_attr: None,
            };
            let change = new_estimate.max_change(&trust);
            trust = new_estimate;
            if change < options.epsilon || rounds >= max_rounds {
                break;
            }
            votes.accumulate_weighted_votes_chunked(problem, &trust, item_plan);
        }
        let mut selection = Vec::new();
        chunking::argmax_plane_into(votes, item_plan, &mut selection);
        FusionResult::from_selection(&self.name(), problem, selection, trust, rounds, start)
    }
}

/// Shared INVEST / POOLEDINVEST iteration.
fn run_invest(
    name: &str,
    growth: f64,
    pooled: bool,
    problem: &FusionProblem,
    options: &FusionOptions,
    scratch: &mut FusionScratch,
) -> FusionResult {
    let start = Instant::now();
    let mut trust = initial_trust(problem, options, 1.0);
    let plans = ChunkPlans::from_options(options, problem);
    let (item_plan, source_plan) = ChunkPlans::split(&plans);
    // Reusable buffers: the vote plane, the per-source investment, and the
    // per-item non-linear-growth scratch.
    let FusionScratch {
        plane: votes,
        source_f: invested,
        cand_a: grown,
        ..
    } = scratch;
    votes.reset_for(problem);
    invested.clear();
    invested.resize(problem.num_sources(), 0.0);
    grown.clear();
    let mut rounds = 0usize;
    for _ in 0..effective_rounds(options) {
        rounds += 1;
        // Invested amount per source: trust spread uniformly over its claims.
        for (s, claims) in problem.claims_by_source().enumerate() {
            invested[s] = if claims.is_empty() {
                0.0
            } else {
                trust.overall[s] / claims.len() as f64
            };
        }
        let invested_r: &[f64] = invested;
        // Accumulated investment per candidate (per item, so any item-range
        // chunking is embarrassingly parallel).
        chunking::for_each_item(
            votes,
            item_plan,
            &mut (),
            || (),
            |i, out, _| {
                let item = problem.item(i);
                for (slot, cand) in out.iter_mut().zip(item.candidates()) {
                    *slot = cand
                        .providers()
                        .iter()
                        .map(|&s| invested_r[s as usize])
                        .sum::<f64>();
                }
            },
        );
        // Non-linear growth, optionally rescaled per item so the votes sum to
        // the total investment on the item. The `total` / `grown_total` sums
        // are *per item*, so this phase is also embarrassingly parallel; the
        // chunked path gets a fresh growth buffer per chunk.
        chunking::for_each_item(
            votes,
            item_plan,
            grown,
            Vec::new,
            |_, item_votes, grown: &mut Vec<f64>| {
                let total: f64 = item_votes.iter().sum();
                grown.clear();
                grown.resize(item_votes.len(), 0.0);
                for (g, h) in grown.iter_mut().zip(item_votes.iter()) {
                    *g = h.powf(growth);
                }
                let grown_total: f64 = grown.iter().sum();
                for (slot, g) in item_votes.iter_mut().zip(grown.iter()) {
                    *slot = if pooled {
                        if grown_total > 0.0 {
                            g / grown_total * total
                        } else {
                            0.0
                        }
                    } else {
                        *g
                    };
                }
            },
        );

        // Pay the votes back to the investors, proportionally to their share
        // of the investment. Each source's claim-order sum lands in its own
        // slot, so the source axis chunks without re-association.
        let mut new_trust = vec![0.0; problem.num_sources()];
        let votes_r: &_ = votes;
        chunking::for_each_slot(&mut new_trust, source_plan, |s, slot| {
            for &(i, c) in problem.claims(s) {
                let total_investment: f64 = problem
                    .item(i as usize)
                    .candidate(c as usize)
                    .providers()
                    .iter()
                    .map(|&p| invested_r[p as usize])
                    .sum();
                if total_investment > 0.0 {
                    *slot += votes_r.get(i as usize, c as usize) * invested_r[s] / total_investment;
                }
            }
        });
        if !pooled {
            normalize_by_max(&mut new_trust);
        }
        let new_estimate = TrustEstimate {
            overall: new_trust,
            per_attr: None,
        };
        let change = new_estimate.max_change(&trust);
        trust = new_estimate;
        if change < options.epsilon {
            break;
        }
    }
    let mut selection = Vec::new();
    chunking::argmax_plane_into(votes, item_plan, &mut selection);
    FusionResult::from_selection(name, problem, selection, trust, rounds, start)
}

impl FusionMethod for Invest {
    fn name(&self) -> String {
        "Invest".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        run_invest(&self.name(), self.growth, false, problem, options, scratch)
    }
}

impl FusionMethod for PooledInvest {
    fn name(&self) -> String {
        "PooledInvest".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        run_invest(&self.name(), self.growth, true, problem, options, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{precision, trust_sensitive_snapshot};

    fn check_method(method: &dyn FusionMethod, min_precision: f64) {
        let (snap, gold) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let result = method.run(&problem, &FusionOptions::standard());
        assert!(result.rounds >= 1);
        assert_eq!(result.selected.len(), problem.num_items());
        let p = precision(&result, &snap, &gold);
        assert!(
            p >= min_precision,
            "{} precision {p} below {min_precision}",
            method.name()
        );
        // Trust scores are finite and non-negative.
        for t in &result.trust.overall {
            assert!(t.is_finite() && *t >= 0.0);
        }
    }

    #[test]
    fn hub_runs_and_is_at_least_as_good_as_majority() {
        check_method(&Hub, 0.8);
    }

    #[test]
    fn avglog_runs() {
        check_method(&AvgLog, 0.8);
    }

    #[test]
    fn invest_runs() {
        check_method(&Invest::default(), 0.6);
    }

    #[test]
    fn pooledinvest_runs() {
        check_method(&PooledInvest::default(), 0.6);
    }

    #[test]
    fn input_trust_short_circuits_iteration() {
        let (snap, gold) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        // Oracle trust: s0 perfect, s1/s2 mediocre — the minority-but-correct
        // value on item 1 should win for HUB with this input.
        let opts = FusionOptions::standard().with_input_trust(vec![1.0, 0.3, 0.3]);
        let result = Hub.run(&problem, &opts);
        assert_eq!(result.rounds, 1);
        let p = precision(&result, &snap, &gold);
        assert!(p > 0.99, "oracle-trust HUB precision {p}");
    }

    #[test]
    fn pooled_invest_trust_scale_is_not_normalized() {
        let (snap, _) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let pooled = PooledInvest::default().run(&problem, &FusionOptions::standard());
        let max_trust = pooled.trust.overall.iter().cloned().fold(0.0, f64::max);
        // Unlike the normalized methods, POOLEDINVEST trust is on the scale
        // of vote mass, not probabilities.
        assert!(max_trust > 1.0, "max trust {max_trust}");
    }
}
