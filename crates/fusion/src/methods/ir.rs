//! IR-based methods: COSINE, 2-ESTIMATES, 3-ESTIMATES (Galland et al.,
//! WSDM 2010).
//!
//! Reproduces the "IR based" category of the paper's Table 6 (rows 6-8 of
//! Table 7); Section 4.1 discusses their sensitivity to the complement vote.
//!
//! These methods treat a source's claims as a ±1 vector over the candidate
//! values of the items it covers: +1 for the value it provides, −1 for the
//! competing values (the "complement vote"). COSINE measures source trust as
//! the cosine similarity between that vector and the current truth estimate;
//! 2-ESTIMATES averages complement-aware votes and applies an affine
//! rescaling of all scores to `[0, 1]`; 3-ESTIMATES additionally estimates a
//! per-item difficulty that dampens votes on hard items.

use crate::chunking::{self, ChunkPlans};
use crate::methods::{effective_rounds, initial_trust, FusionMethod};
use crate::problem::FusionProblem;
use crate::types::{rescale_to_unit, FusionOptions, FusionResult, FusionScratch, TrustEstimate};
use std::time::Instant;

/// COSINE: source trust is the cosine similarity between the source's ±1
/// claim vector and the current estimated truth, with damping between rounds.
#[derive(Debug, Clone, Copy)]
pub struct Cosine {
    /// Weight of the previous round's trust in the damped update.
    pub damping: f64,
}

impl Default for Cosine {
    fn default() -> Self {
        Self { damping: 0.3 }
    }
}

/// 2-ESTIMATES: complement votes averaged over providers with affine
/// normalization of votes and trust to `[0, 1]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoEstimates;

/// 3-ESTIMATES: 2-ESTIMATES plus a per-item difficulty estimate that scales
/// how much a vote on that item is worth.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreeEstimates;

impl FusionMethod for Cosine {
    fn name(&self) -> String {
        "Cosine".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        let start = Instant::now();
        let mut trust = initial_trust(problem, options, 0.8);
        let plans = ChunkPlans::from_options(options, problem);
        let (item_plan, source_plan) = ChunkPlans::split(&plans);
        let estimates = &mut scratch.plane;
        estimates.reset_for(problem);
        let mut rounds = 0usize;
        for _ in 0..effective_rounds(options) {
            rounds += 1;
            // Truth estimate per candidate in [-1, 1]: supporters minus
            // opponents, normalized by the total trust on the item.
            let trust_r = &trust;
            chunking::for_each_item(
                estimates,
                item_plan,
                &mut (),
                || (),
                |i, out, _| {
                    let item = problem.item(i);
                    let total: f64 = item
                        .providers()
                        .iter()
                        .map(|&s| trust_r.overall[s as usize])
                        .sum();
                    for (c, cand) in item.candidates().enumerate() {
                        let support: f64 = cand
                            .providers()
                            .iter()
                            .map(|&s| trust_r.overall[s as usize])
                            .sum();
                        let oppose = total - support;
                        out[c] = if total > 0.0 {
                            (support - oppose) / total
                        } else {
                            0.0
                        };
                    }
                },
            );
            // Cosine similarity between each source's ±1 vector and the
            // estimates at the positions the source covers.
            let mut new_trust = vec![0.0; problem.num_sources()];
            let estimates_r: &_ = estimates;
            chunking::for_each_slot(&mut new_trust, source_plan, |s, slot| {
                let mut dot = 0.0_f64;
                let mut claim_norm = 0.0_f64;
                let mut est_norm = 0.0_f64;
                for &(i, c) in problem.claims(s) {
                    for (c2, &e) in estimates_r.item(i as usize).iter().enumerate() {
                        let claim_entry = if c2 == c as usize { 1.0 } else { -1.0 };
                        dot += claim_entry * e;
                        claim_norm += 1.0;
                        est_norm += e * e;
                    }
                }
                let denom = claim_norm.sqrt() * est_norm.sqrt();
                let cosine = if denom > 1e-12 { dot / denom } else { 0.0 };
                *slot =
                    self.damping * trust_r.overall[s] + (1.0 - self.damping) * cosine.clamp(0.0, 1.0);
            });
            let new_estimate = TrustEstimate {
                overall: new_trust,
                per_attr: None,
            };
            let change = new_estimate.max_change(&trust);
            trust = new_estimate;
            if change < options.epsilon {
                break;
            }
        }
        let mut selection = Vec::new();
        chunking::argmax_plane_into(estimates, item_plan, &mut selection);
        FusionResult::from_selection(&self.name(), problem, selection, trust, rounds, start)
    }
}

/// Shared 2-ESTIMATES / 3-ESTIMATES iteration (`difficulty = true` enables the
/// third estimate).
fn run_estimates(
    name: &str,
    difficulty: bool,
    problem: &FusionProblem,
    options: &FusionOptions,
    scratch: &mut FusionScratch,
) -> FusionResult {
    let start = Instant::now();
    let mut trust = initial_trust(problem, options, 0.8);
    let plans = ChunkPlans::from_options(options, problem);
    let (item_plan, source_plan) = ChunkPlans::split(&plans);
    let FusionScratch {
        plane: votes,
        item_f: hardness,
        ..
    } = scratch;
    votes.reset_for(problem);
    // Per-item difficulty in [0, 1]; 0 = easy (votes count fully).
    hardness.clear();
    hardness.resize(problem.num_items(), 0.5);
    let mut rounds = 0usize;
    for _ in 0..effective_rounds(options) {
        rounds += 1;
        // Complement-aware vote: providers contribute their (difficulty-
        // dampened) trust, non-providers contribute their distrust.
        let trust_r = &trust;
        let hardness_r: &[f64] = hardness;
        chunking::for_each_item(
            votes,
            item_plan,
            &mut (),
            || (),
            |i, out, _| {
                let item = problem.item(i);
                let dampen = |t: f64| -> f64 {
                    if difficulty {
                        t * (1.0 - hardness_r[i]) + 0.5 * hardness_r[i]
                    } else {
                        t
                    }
                };
                for (c, cand) in item.candidates().enumerate() {
                    let mut vote = 0.0;
                    for &s in item.providers() {
                        let t = dampen(trust_r.overall[s as usize]);
                        if cand.providers().contains(&s) {
                            vote += t;
                        } else {
                            vote += 1.0 - t;
                        }
                    }
                    out[c] = vote / item.num_providers().max(1) as f64;
                }
            },
        );
        // Affine rescaling of all votes to [0, 1] — the plane is already the
        // flat item-major vector the old code materialized each round; the
        // chunked variant splits into the exact global min/max reduction and
        // a per-chunk elementwise pass.
        chunking::rescale_plane_to_unit(votes, item_plan);
        // Difficulty update: items whose best value is uncertain are hard.
        // Per item, so the item plan chunks it directly.
        if difficulty {
            let votes_r: &_ = votes;
            chunking::for_each_slot(hardness, item_plan, |i, h| {
                let best = votes_r.item(i).iter().cloned().fold(0.0, f64::max);
                *h = (1.0 - best).clamp(0.0, 1.0);
            });
        }
        // Trust update: average over claimed values' votes and the complement
        // of the competing values' votes; then affine rescaling.
        let mut new_trust = vec![0.0; problem.num_sources()];
        let votes_r: &_ = votes;
        chunking::for_each_slot(&mut new_trust, source_plan, |s, slot| {
            let mut acc = 0.0;
            let mut count = 0usize;
            for &(i, c) in problem.claims(s) {
                for (c2, &v) in votes_r.item(i as usize).iter().enumerate() {
                    if c2 == c as usize {
                        acc += v;
                    } else {
                        acc += 1.0 - v;
                    }
                    count += 1;
                }
            }
            *slot = if count == 0 { 0.5 } else { acc / count as f64 };
        });
        rescale_to_unit(&mut new_trust);
        let new_estimate = TrustEstimate {
            overall: new_trust,
            per_attr: None,
        };
        let change = new_estimate.max_change(&trust);
        trust = new_estimate;
        if change < options.epsilon {
            break;
        }
    }
    let mut selection = Vec::new();
    chunking::argmax_plane_into(votes, item_plan, &mut selection);
    FusionResult::from_selection(name, problem, selection, trust, rounds, start)
}

impl FusionMethod for TwoEstimates {
    fn name(&self) -> String {
        "2-Estimates".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        run_estimates(&self.name(), false, problem, options, scratch)
    }
}

impl FusionMethod for ThreeEstimates {
    fn name(&self) -> String {
        "3-Estimates".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        run_estimates(&self.name(), true, problem, options, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{precision, trust_sensitive_snapshot};

    fn check(method: &dyn FusionMethod, min_precision: f64) {
        let (snap, gold) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let result = method.run(&problem, &FusionOptions::standard());
        let p = precision(&result, &snap, &gold);
        assert!(
            p >= min_precision,
            "{} precision {p} below {min_precision}",
            method.name()
        );
        for t in &result.trust.overall {
            assert!(t.is_finite(), "{} produced a non-finite trust", method.name());
        }
        assert_eq!(result.selected.len(), problem.num_items());
    }

    #[test]
    fn cosine_runs() {
        check(&Cosine::default(), 0.8);
    }

    #[test]
    fn two_estimates_runs() {
        check(&TwoEstimates, 0.8);
    }

    #[test]
    fn three_estimates_runs() {
        check(&ThreeEstimates, 0.8);
    }

    #[test]
    fn trust_scores_live_in_unit_interval() {
        let (snap, _) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        for method in [&TwoEstimates as &dyn FusionMethod, &ThreeEstimates] {
            let result = method.run(&problem, &FusionOptions::standard());
            for t in &result.trust.overall {
                assert!(*t >= 0.0 && *t <= 1.0);
            }
        }
    }

    #[test]
    fn input_trust_gives_oracle_result() {
        let (snap, gold) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let opts = FusionOptions::standard().with_input_trust(vec![1.0, 0.4, 0.4]);
        let result = TwoEstimates.run(&problem, &opts);
        let p = precision(&result, &snap, &gold);
        assert!(p > 0.99, "2-Estimates with oracle trust scored {p}");
    }
}
