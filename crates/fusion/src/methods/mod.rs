//! The fusion methods themselves.
//!
//! Every method implements [`FusionMethod`]; see the crate docs for the
//! mapping to the paper's Table 6. All methods follow the same iterative
//! scheme — compute value votes from source trust, select values, recompute
//! trust — and differ in the vote and trust equations.

mod bayesian;
mod copyaware;
mod ir;
#[cfg(test)]
mod reference;
mod vote;
mod weblink;

pub use bayesian::{Accu, AccuVariant, TruthFinder};
pub use copyaware::{detect_copying, AccuCopy, CoClaims};
pub use ir::{Cosine, ThreeEstimates, TwoEstimates};
pub use vote::Vote;
pub use weblink::{AvgLog, Hub, Invest, PooledInvest};

use crate::problem::FusionProblem;
use crate::types::{FusionOptions, FusionResult, FusionScratch};

/// A data-fusion (truth-discovery) method.
pub trait FusionMethod: Send + Sync {
    /// The method name as used in the paper's tables (e.g. `"AccuCopy"`).
    fn name(&self) -> String;

    /// Run the method over a prepared problem, using `scratch` for every
    /// reusable buffer the rounds need. Each buffer is re-shaped for
    /// `problem` before its first read, so the same scratch can be handed
    /// across methods, runs, and differently-shaped problems: the result is
    /// bit-identical to a run with a fresh scratch (the batch-equivalence
    /// suites pin this).
    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult;

    /// Run the method over a prepared problem with a throwaway scratch.
    /// Callers fusing many snapshots should hold one [`FusionScratch`] and
    /// use [`run_with_scratch`](Self::run_with_scratch) instead.
    fn run(&self, problem: &FusionProblem, options: &FusionOptions) -> FusionResult {
        self.run_with_scratch(problem, options, &mut FusionScratch::new())
    }
}

/// Initial trust for iterative methods: the supplied input trust when
/// present, otherwise the warm-start seed (finite slots only — `NaN` keeps
/// the method default) when present, otherwise a uniform default.
pub(crate) fn initial_trust(
    problem: &FusionProblem,
    options: &FusionOptions,
    default: f64,
) -> crate::types::TrustEstimate {
    let mut trust = crate::types::TrustEstimate::uniform(
        problem.num_sources(),
        problem.num_attrs,
        default,
        options.per_attribute_trust,
    );
    if let Some(input) = &options.input_trust {
        for (i, t) in input.iter().enumerate().take(problem.num_sources()) {
            trust.overall[i] = *t;
            if let Some(pa) = trust.per_attr.as_mut() {
                for slot in pa.row_mut(i) {
                    *slot = *t;
                }
            }
        }
    } else if let Some(warm) = &options.warm_start_trust {
        for (i, t) in warm.iter().enumerate().take(problem.num_sources()) {
            if !t.is_finite() {
                continue;
            }
            trust.overall[i] = *t;
            if let Some(pa) = trust.per_attr.as_mut() {
                for slot in pa.row_mut(i) {
                    *slot = *t;
                }
            }
        }
    }
    trust
}

/// Number of iterative rounds to run: one (vote-and-select) when sampled
/// trust is supplied as input, the configured maximum otherwise.
pub(crate) fn effective_rounds(options: &FusionOptions) -> usize {
    if options.input_trust.is_some() {
        1
    } else {
        options.rounds()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Small hand-checkable fixtures shared by the per-method tests.

    use datamodel::{AttrId, AttrKind, DomainSchema, ObjectId, Snapshot, SnapshotBuilder, SourceId, Value};
    use std::sync::Arc;

    /// Three-source snapshot where the majority is right on item 0 and wrong
    /// on item 1, but the minority source is always right — methods that
    /// weigh source trust can beat VOTE on it.
    ///
    /// * item 0 (object 0): truth 10.0 — s0 and s1 provide 10.0, s2 provides 20.0
    /// * item 1 (object 1): truth 30.0 — s0 provides 30.0, s1 and s2 provide 50.0
    /// * items 2-4 (objects 2-4): all three sources agree (30.0), giving the
    ///   good source extra support.
    pub fn trust_sensitive_snapshot() -> (Snapshot, datamodel::GoldStandard) {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("x", AttrKind::Numeric { scale: 10.0 }, false);
        for i in 0..3 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        let a = AttrId(0);
        b.add(SourceId(0), ObjectId(0), a, Value::number(10.0));
        b.add(SourceId(1), ObjectId(0), a, Value::number(10.0));
        b.add(SourceId(2), ObjectId(0), a, Value::number(20.0));

        b.add(SourceId(0), ObjectId(1), a, Value::number(30.0));
        b.add(SourceId(1), ObjectId(1), a, Value::number(50.0));
        b.add(SourceId(2), ObjectId(1), a, Value::number(50.0));

        for obj in 2..5 {
            for s in 0..3 {
                b.add(SourceId(s), ObjectId(obj), a, Value::number(30.0));
            }
        }
        let snap = b.build(Arc::new(schema));
        let mut gold = datamodel::GoldStandard::new();
        gold.insert(datamodel::ItemId::new(ObjectId(0), a), Value::number(10.0));
        gold.insert(datamodel::ItemId::new(ObjectId(1), a), Value::number(30.0));
        for obj in 2..5 {
            gold.insert(datamodel::ItemId::new(ObjectId(obj), a), Value::number(30.0));
        }
        (snap, gold)
    }

    /// Five-source snapshot where source accuracy is learnable from many
    /// uncontested items, and one item ("object 14") where the majority is
    /// wrong: s1, s2, and s4 provide the same wrong value while s0 and s3
    /// provide the truth. VOTE fails on it; accuracy-aware methods recover it
    /// after learning that s2 (wrong on objects 0-9) and s1 (wrong on objects
    /// 10-13) are less reliable.
    pub fn learnable_accuracy_snapshot() -> (Snapshot, datamodel::GoldStandard) {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
        for i in 0..5 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        let a = AttrId(0);
        let mut gold = datamodel::GoldStandard::new();
        for obj in 0..15u32 {
            let truth = 100.0 + 10.0 * obj as f64;
            gold.insert(datamodel::ItemId::new(ObjectId(obj), a), Value::number(truth));
            // s0 and s3 always provide the truth.
            b.add(SourceId(0), ObjectId(obj), a, Value::number(truth));
            b.add(SourceId(3), ObjectId(obj), a, Value::number(truth));
            // s1 is wrong on objects 10-13, s2 on objects 0-9, s4 only on the
            // special object 14 — where all three agree on the same wrong value.
            let wrong_shared = truth + 55.0;
            let s1_value = if obj == 14 {
                wrong_shared
            } else if (10..14).contains(&obj) {
                truth + 71.0
            } else {
                truth
            };
            let s2_value = if obj == 14 {
                wrong_shared
            } else if obj < 10 {
                truth - 43.0
            } else {
                truth
            };
            // s4 is wrong (in its own way) on objects 12-13, so its accuracy is
            // learnably imperfect before the special object is decided.
            let s4_value = if obj == 14 {
                wrong_shared
            } else if (12..14).contains(&obj) {
                truth + 29.0
            } else {
                truth
            };
            b.add(SourceId(1), ObjectId(obj), a, Value::number(s1_value));
            b.add(SourceId(2), ObjectId(obj), a, Value::number(s2_value));
            b.add(SourceId(4), ObjectId(obj), a, Value::number(s4_value));
        }
        (b.build(Arc::new(schema)), gold)
    }

    /// Precision of a fusion result against a gold standard.
    pub fn precision(
        result: &crate::types::FusionResult,
        snapshot: &Snapshot,
        gold: &datamodel::GoldStandard,
    ) -> f64 {
        let mut judged = 0usize;
        let mut correct = 0usize;
        for (item, value) in &result.selected {
            if let Some(ok) = gold.judge(snapshot, *item, value) {
                judged += 1;
                if ok {
                    correct += 1;
                }
            }
        }
        if judged == 0 {
            0.0
        } else {
            correct as f64 / judged as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{TrustEstimate, VotePlane};

    #[test]
    fn weighted_votes_use_trust() {
        let (snap, _) = testutil::trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let mut trust = TrustEstimate::uniform(3, 1, 1.0, false);
        trust.overall[2] = 0.0;
        let mut votes = VotePlane::for_problem(&problem);
        votes.accumulate_weighted_votes(&problem, &trust);
        assert_eq!(votes.num_items(), problem.num_items());
        // Item 0: candidate 10.0 has providers s0+s1 (trust 2.0), 20.0 has s2 (0.0).
        let item0 = problem
            .items()
            .position(|i| i.id().object == datamodel::ObjectId(0))
            .unwrap();
        assert_eq!(votes.get(item0, 0), 2.0);
        assert_eq!(votes.get(item0, 1), 0.0);
    }

    #[test]
    fn initial_trust_respects_input() {
        let (snap, _) = testutil::trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let opts = FusionOptions::standard().with_input_trust(vec![0.9, 0.5, 0.1]);
        let trust = initial_trust(&problem, &opts, 0.8);
        assert_eq!(trust.overall, vec![0.9, 0.5, 0.1]);
        assert_eq!(effective_rounds(&opts), 1);
        assert_eq!(effective_rounds(&FusionOptions::standard()), 20);
    }

    #[test]
    fn warm_start_seeds_without_capping_rounds() {
        let (snap, _) = testutil::trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let opts = FusionOptions::standard()
            .with_per_attribute_trust()
            .with_warm_start_trust(vec![0.9, f64::NAN, 0.1]);
        let trust = initial_trust(&problem, &opts, 0.8);
        // Finite slots seed; the NaN slot keeps the method default.
        assert_eq!(trust.overall, vec![0.9, 0.8, 0.1]);
        assert_eq!(trust.per_attr.as_ref().unwrap().of(0, 0), 0.9);
        assert_eq!(trust.per_attr.as_ref().unwrap().of(1, 0), 0.8);
        // Warm start does not collapse to a single vote-and-select pass.
        assert_eq!(effective_rounds(&opts), 20);

        // Input trust wins over a warm seed.
        let both = FusionOptions::standard()
            .with_warm_start_trust(vec![0.1, 0.1, 0.1])
            .with_input_trust(vec![0.7, 0.7, 0.7]);
        assert_eq!(initial_trust(&problem, &both, 0.8).overall, vec![0.7; 3]);
    }
}
