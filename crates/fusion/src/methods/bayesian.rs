//! Bayesian methods: TRUTHFINDER and the ACCU family (ACCUPR, POPACCU,
//! ACCUSIM, ACCUFORMAT and the per-attribute variants).
//!
//! Reproduces the "Bayesian based" category of the paper's Table 6 (rows
//! 9-15 of Table 7). The `*ATTR` variants are the paper's best performers on
//! Stock (Table 7: .929/.930) and the subject of the Table-8 pairwise
//! comparison; Figure 12 shows they are also among the slowest.
//!
//! TRUTHFINDER (Yin et al., TKDE 2008) computes the probability of a value
//! being true conditioned on its providers via a log-odds accumulation and a
//! sigmoid, boosting values by their similar peers. The ACCU family (Dong et
//! al., PVLDB 2009) performs Bayesian analysis under the assumption that the
//! false values on an item are mutually exclusive: ACCUPR assumes `n`
//! uniformly-distributed false values, POPACCU replaces that assumption with
//! the observed popularity of the values, ACCUSIM adds value similarity,
//! ACCUFORMAT adds formatting (granularity subsumption), and the `*ATTR`
//! variants maintain one trustworthiness per (source, attribute).

use crate::chunking::{self, ChunkPlan, ChunkPlans};
use crate::kernels;
use crate::methods::{effective_rounds, initial_trust, FusionMethod};
use crate::problem::{FusionProblem, PreparedItem};
use crate::types::{
    AttrTrust, FusionOptions, FusionResult, FusionScratch, TrustEstimate, TrustScratch, VotePlane,
};
use std::time::Instant;

/// TRUTHFINDER (Yin et al.).
#[derive(Debug, Clone, Copy)]
pub struct TruthFinder {
    /// Dampening factor γ of the sigmoid.
    pub gamma: f64,
    /// Weight ρ of the similarity adjustment.
    pub rho: f64,
    /// Initial source trustworthiness.
    pub initial_trust: f64,
}

impl Default for TruthFinder {
    fn default() -> Self {
        Self {
            gamma: 0.3,
            rho: 0.5,
            initial_trust: 0.9,
        }
    }
}

impl FusionMethod for TruthFinder {
    fn name(&self) -> String {
        "TruthFinder".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        let start = Instant::now();
        let plans = ChunkPlans::from_options(options, problem);
        let (item_plan, source_plan) = ChunkPlans::split(&plans);
        let FusionScratch {
            plane: confidence,
            cand_a: raw,
            trust_acc,
            ..
        } = scratch;
        let mut trust = initial_trust(problem, options, self.initial_trust);
        confidence.reset_for(problem);
        raw.clear();
        let mut rounds = 0usize;
        for _ in 0..effective_rounds(options) {
            rounds += 1;
            let trust_r = &trust;
            chunking::for_each_item(
                confidence,
                item_plan,
                raw,
                Vec::new,
                |i, out, raw: &mut Vec<f64>| {
                    let item = problem.item(i);
                    raw.clear();
                    raw.resize(item.num_candidates(), 0.0);
                    // Raw trustworthiness score: sum of -ln(1 - τ) over
                    // providers.
                    for (c, cand) in item.candidates().enumerate() {
                        raw[c] = cand
                            .providers()
                            .iter()
                            .map(|&s| {
                                -(1.0 - trust_r.of(s as usize, item.attr()).min(0.999)).ln()
                            })
                            .sum();
                    }
                    // Similarity adjustment and sigmoid (intra-item only, so
                    // per-item chunking is embarrassingly parallel).
                    for (c, cand) in item.candidates().enumerate() {
                        let mut adjusted = raw[c];
                        for &(j, sim) in cand.similar() {
                            adjusted += self.rho * sim * raw[j as usize];
                        }
                        out[c] = 1.0 / (1.0 + (-self.gamma * adjusted).exp());
                    }
                },
            );
            // Trust update: average confidence of the source's claims.
            let mut new_trust = trust.clone();
            update_trust_from_scores(
                problem,
                confidence,
                options,
                &mut new_trust,
                trust_acc,
                source_plan,
            );
            let change = new_trust.max_change(&trust);
            trust = new_trust;
            if change < options.epsilon {
                break;
            }
        }
        let mut selection = Vec::new();
        chunking::argmax_plane_into(confidence, item_plan, &mut selection);
        FusionResult::from_selection(&self.name(), problem, selection, trust, rounds, start)
    }
}

/// Which member of the ACCU family to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuVariant {
    /// Bayesian analysis with `n` uniformly-distributed false values.
    AccuPr,
    /// Replace the uniform-false-value assumption by observed popularity.
    PopAccu,
    /// ACCUPR plus value similarity.
    AccuSim,
    /// ACCUSIM plus value formatting (granularity subsumption).
    AccuFormat,
}

/// The ACCU family of Bayesian fusion methods.
#[derive(Debug, Clone, Copy)]
pub struct Accu {
    /// Which variant to run.
    pub variant: AccuVariant,
    /// Maintain one trustworthiness per (source, attribute).
    pub per_attribute: bool,
    /// Assumed number of uniformly-distributed false values (`n`).
    pub n_false_values: f64,
    /// Weight ρ of the similarity adjustment.
    pub rho: f64,
    /// Weight of the formatting (subsumption) adjustment.
    pub format_weight: f64,
    /// Initial source accuracy.
    pub initial_accuracy: f64,
}

impl Accu {
    /// ACCUPR.
    pub fn accupr() -> Self {
        Self::new(AccuVariant::AccuPr, false)
    }

    /// POPACCU.
    pub fn popaccu() -> Self {
        Self::new(AccuVariant::PopAccu, false)
    }

    /// ACCUSIM.
    pub fn accusim() -> Self {
        Self::new(AccuVariant::AccuSim, false)
    }

    /// ACCUFORMAT.
    pub fn accuformat() -> Self {
        Self::new(AccuVariant::AccuFormat, false)
    }

    /// ACCUSIMATTR.
    pub fn accusim_attr() -> Self {
        Self::new(AccuVariant::AccuSim, true)
    }

    /// ACCUFORMATATTR.
    pub fn accuformat_attr() -> Self {
        Self::new(AccuVariant::AccuFormat, true)
    }

    fn new(variant: AccuVariant, per_attribute: bool) -> Self {
        Self {
            variant,
            per_attribute,
            n_false_values: 10.0,
            rho: 0.5,
            format_weight: 0.5,
            initial_accuracy: 0.8,
        }
    }

    /// Per-provider vote score for candidate `c` of `item` under accuracy `a`.
    pub(crate) fn provider_score(&self, a: f64, item: PreparedItem<'_>, c: usize) -> f64 {
        let a = a.clamp(0.01, 0.99);
        match self.variant {
            AccuVariant::PopAccu => {
                // Popularity-aware false-value prior: popular values get less
                // of a boost per provider, so copied false values stop
                // dominating.
                let total = item.total_provider_slots();
                let support = item.candidate(c).providers().len();
                let k = item.num_candidates() as f64;
                let pop = (support as f64 + 0.5) / (total as f64 + 0.5 * k);
                (a / (1.0 - a)).ln() - pop.ln()
            }
            _ => (self.n_false_values * a / (1.0 - a)).ln(),
        }
    }

    fn uses_similarity(&self) -> bool {
        matches!(self.variant, AccuVariant::AccuSim | AccuVariant::AccuFormat)
    }

    fn uses_formatting(&self) -> bool {
        matches!(self.variant, AccuVariant::AccuFormat)
    }
}

impl FusionMethod for Accu {
    fn name(&self) -> String {
        let base = match self.variant {
            AccuVariant::AccuPr => "AccuPr",
            AccuVariant::PopAccu => "PopAccu",
            AccuVariant::AccuSim => "AccuSim",
            AccuVariant::AccuFormat => "AccuFormat",
        };
        if self.per_attribute {
            format!("{base}Attr")
        } else {
            base.to_string()
        }
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        let start = Instant::now();
        let mut opts = options.clone();
        opts.per_attribute_trust = opts.per_attribute_trust || self.per_attribute;
        let plans = ChunkPlans::from_options(&opts, problem);
        let (item_plan, source_plan) = ChunkPlans::split(&plans);
        let FusionScratch {
            plane: probabilities,
            cand_a: votes,
            cand_b: adjusted,
            trust_acc,
            ..
        } = scratch;
        let mut trust = initial_trust(problem, &opts, self.initial_accuracy);
        probabilities.reset_for(problem);
        // Per-item (votes, adjusted) scratch pair. The sequential path keeps
        // reusing the warm FusionScratch buffers (taken here, restored below);
        // chunked runs allocate one fresh pair per chunk.
        let mut pair = (std::mem::take(votes), std::mem::take(adjusted));
        let mut rounds = 0usize;
        for _ in 0..effective_rounds(&opts) {
            rounds += 1;
            let trust_r = &trust;
            chunking::for_each_item(
                probabilities,
                item_plan,
                &mut pair,
                Default::default,
                |i, out, (votes, adjusted): &mut (Vec<f64>, Vec<f64>)| {
                    let item = problem.item(i);
                    let num_candidates = item.num_candidates();
                    votes.clear();
                    votes.resize(num_candidates, 0.0);
                    adjusted.clear();
                    adjusted.resize(num_candidates, 0.0);
                    for (c, cand) in item.candidates().enumerate() {
                        votes[c] = cand
                            .providers()
                            .iter()
                            .map(|&s| {
                                self.provider_score(trust_r.of(s as usize, item.attr()), item, c)
                            })
                            .sum();
                    }
                    for (c, cand) in item.candidates().enumerate() {
                        let mut v = votes[c];
                        if self.uses_similarity() {
                            for &(j, sim) in cand.similar() {
                                v += self.rho * sim * votes[j as usize];
                            }
                        }
                        if self.uses_formatting() {
                            for &j in cand.coarse_supporters() {
                                v += self.format_weight * votes[j as usize];
                            }
                        }
                        adjusted[c] = v;
                    }
                    softmax_into(&adjusted[..num_candidates], out);
                },
            );
            let mut new_trust = trust.clone();
            update_trust_from_scores(
                problem,
                probabilities,
                &opts,
                &mut new_trust,
                trust_acc,
                source_plan,
            );
            clamp_trust(&mut new_trust, 0.01, 0.99);
            let change = new_trust.max_change(&trust);
            trust = new_trust;
            if change < opts.epsilon {
                break;
            }
        }
        *votes = std::mem::take(&mut pair.0);
        *adjusted = std::mem::take(&mut pair.1);
        let mut selection = Vec::new();
        chunking::argmax_plane_into(probabilities, item_plan, &mut selection);
        FusionResult::from_selection(&self.name(), problem, selection, trust, rounds, start)
    }
}

/// Stable softmax of `scores` into `out`.
pub(crate) fn softmax_into(scores: &[f64], out: &mut [f64]) {
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for (o, s) in out.iter_mut().zip(scores) {
        let e = (s - max).exp();
        *o = e;
        total += e;
    }
    if total > 0.0 {
        for o in out.iter_mut() {
            *o /= total;
        }
    }
}

/// Update trust as the average per-claim score (probability or confidence) of
/// each source, optionally per attribute. `acc` provides the reusable S and
/// S×A accumulators (re-zeroed here), so the per-round update allocates
/// nothing once the scratch is warm.
///
/// With a `source_plan`, the source axis is cut into contiguous ranges and
/// each chunk fills its disjoint slice of the accumulators in parallel. Every
/// source still sums its own claims in claim order into its own slot, so the
/// result is bit-identical to the sequential walk.
pub(crate) fn update_trust_from_scores(
    problem: &FusionProblem,
    scores: &VotePlane,
    options: &FusionOptions,
    trust: &mut TrustEstimate,
    acc: &mut TrustScratch,
    source_plan: Option<&ChunkPlan>,
) {
    let per_attr = options.per_attribute_trust || trust.per_attr.is_some();
    let num_attrs = problem.num_attrs;
    // The S×A accumulators are only needed (and only sized) for the
    // per-attribute variants; they share the flat `source * num_attrs + attr`
    // layout of [`AttrTrust`].
    acc.reset(problem.num_sources(), num_attrs, per_attr);
    match source_plan {
        None => {
            for (s, claims) in problem.claims_by_source().enumerate() {
                acc.overall_count[s] = claims.len();
                if per_attr {
                    let row = s * num_attrs..(s + 1) * num_attrs;
                    acc.overall_sum[s] = kernels::sum_claim_scores_per_attr(
                        claims,
                        scores.offsets(),
                        scores.values(),
                        problem.item_attrs_flat(),
                        &mut acc.attr_sum[row.clone()],
                        &mut acc.attr_count[row],
                    );
                } else {
                    acc.overall_sum[s] =
                        kernels::sum_claim_scores(claims, scores.offsets(), scores.values());
                }
            }
        }
        Some(plan) => {
            struct AccChunk<'a> {
                sources: std::ops::Range<usize>,
                sum: &'a mut [f64],
                count: &'a mut [usize],
                attr_sum: &'a mut [f64],
                attr_count: &'a mut [usize],
            }
            let mut chunks = Vec::with_capacity(plan.num_chunks());
            let mut sum_rest = acc.overall_sum.as_mut_slice();
            let mut count_rest = acc.overall_count.as_mut_slice();
            let mut attr_sum_rest: &mut [f64] = if per_attr {
                acc.attr_sum.as_mut_slice()
            } else {
                &mut []
            };
            let mut attr_count_rest: &mut [usize] = if per_attr {
                acc.attr_count.as_mut_slice()
            } else {
                &mut []
            };
            for r in plan.ranges() {
                let (sum, rest) = sum_rest.split_at_mut(r.len());
                sum_rest = rest;
                let (count, rest) = count_rest.split_at_mut(r.len());
                count_rest = rest;
                let attr_len = if per_attr { r.len() * num_attrs } else { 0 };
                let (attr_sum, rest) = attr_sum_rest.split_at_mut(attr_len);
                attr_sum_rest = rest;
                let (attr_count, rest) = attr_count_rest.split_at_mut(attr_len);
                attr_count_rest = rest;
                chunks.push(AccChunk {
                    sources: r,
                    sum,
                    count,
                    attr_sum,
                    attr_count,
                });
            }
            chunking::run_chunks(chunks, |chunk| {
                for (off, s) in chunk.sources.clone().enumerate() {
                    let claims = problem.claims(s);
                    chunk.count[off] = claims.len();
                    if per_attr {
                        let row = off * num_attrs..(off + 1) * num_attrs;
                        chunk.sum[off] = kernels::sum_claim_scores_per_attr(
                            claims,
                            scores.offsets(),
                            scores.values(),
                            problem.item_attrs_flat(),
                            &mut chunk.attr_sum[row.clone()],
                            &mut chunk.attr_count[row],
                        );
                    } else {
                        chunk.sum[off] =
                            kernels::sum_claim_scores(claims, scores.offsets(), scores.values());
                    }
                }
            });
        }
    }
    for s in 0..problem.num_sources() {
        if acc.overall_count[s] > 0 {
            trust.overall[s] = acc.overall_sum[s] / acc.overall_count[s] as f64;
        }
    }
    if per_attr {
        let pa = trust
            .per_attr
            .get_or_insert_with(|| AttrTrust::filled(problem.num_sources(), num_attrs, 0.8));
        for s in 0..problem.num_sources() {
            for a in 0..num_attrs {
                let k = s * num_attrs + a;
                if acc.attr_count[k] > 0 {
                    pa.set(s, a, acc.attr_sum[k] / acc.attr_count[k] as f64);
                } else {
                    // Attributes the source does not provide inherit its
                    // overall trust.
                    pa.set(s, a, trust.overall[s]);
                }
            }
        }
    }
}

/// Clamp all trust entries into `[lo, hi]`.
pub(crate) fn clamp_trust(trust: &mut TrustEstimate, lo: f64, hi: f64) {
    for t in trust.overall.iter_mut() {
        *t = t.clamp(lo, hi);
    }
    if let Some(pa) = trust.per_attr.as_mut() {
        for t in pa.values_mut() {
            *t = t.clamp(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{precision, trust_sensitive_snapshot};

    fn check(method: &dyn FusionMethod, min_precision: f64) -> FusionResult {
        let (snap, gold) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let result = method.run(&problem, &FusionOptions::standard());
        let p = precision(&result, &snap, &gold);
        assert!(
            p >= min_precision,
            "{} precision {p} below {min_precision}",
            method.name()
        );
        result
    }

    #[test]
    fn truthfinder_runs_and_computes_high_trust() {
        let result = check(&TruthFinder::default(), 0.8);
        // TruthFinder is known to over-estimate trust (paper Section 4.2).
        let avg: f64 =
            result.trust.overall.iter().sum::<f64>() / result.trust.overall.len() as f64;
        assert!(avg > 0.7, "average TruthFinder trust {avg}");
    }

    #[test]
    fn accu_family_beats_vote_on_learnable_accuracy_data() {
        use crate::methods::testutil::learnable_accuracy_snapshot;
        use crate::methods::Vote;
        let (snap, gold) = learnable_accuracy_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let vote_p = precision(&Vote.run(&problem, &FusionOptions::standard()), &snap, &gold);
        assert!(vote_p < 0.99, "VOTE must fail on the copied-majority item");
        for method in [Accu::accupr(), Accu::accusim(), Accu::accuformat()] {
            let result = method.run(&problem, &FusionOptions::standard());
            let p = precision(&result, &snap, &gold);
            assert!(
                p > vote_p,
                "{} ({p}) should beat VOTE ({vote_p}) once accuracies are learned",
                method.name()
            );
            // The always-correct source 0 must end among the most trusted.
            let s0 = problem.source_index(datamodel::SourceId(0)).unwrap();
            let max = result.trust.overall.iter().cloned().fold(0.0, f64::max);
            assert!(result.trust.overall[s0] >= max - 1e-9);
        }
    }

    #[test]
    fn popaccu_runs() {
        check(&Accu::popaccu(), 0.8);
    }

    #[test]
    fn attr_variants_produce_per_attribute_trust() {
        let (snap, _) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let result = Accu::accuformat_attr().run(&problem, &FusionOptions::standard());
        assert_eq!(result.method, "AccuFormatAttr");
        let pa = result.trust.per_attr.as_ref().expect("per-attribute trust");
        assert_eq!(pa.num_sources(), problem.num_sources());
        assert_eq!(pa.num_attrs(), problem.num_attrs);
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(Accu::accupr().name(), "AccuPr");
        assert_eq!(Accu::popaccu().name(), "PopAccu");
        assert_eq!(Accu::accusim().name(), "AccuSim");
        assert_eq!(Accu::accuformat().name(), "AccuFormat");
        assert_eq!(Accu::accusim_attr().name(), "AccuSimAttr");
        assert_eq!(Accu::accuformat_attr().name(), "AccuFormatAttr");
    }

    #[test]
    fn softmax_is_a_distribution() {
        let mut out = vec![0.0; 3];
        softmax_into(&[1.0, 2.0, 3.0], &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(out[2] > out[1] && out[1] > out[0]);
    }

    #[test]
    fn input_trust_short_circuits() {
        let (snap, gold) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        // With sampled (oracle) trust the two wrong sources carry so little
        // weight that the minority-but-correct value wins in a single pass.
        let opts = FusionOptions::standard().with_input_trust(vec![0.95, 0.5, 0.5]);
        let result = Accu::accupr().run(&problem, &opts);
        assert_eq!(result.rounds, 1);
        assert!(precision(&result, &snap, &gold) > 0.99);
    }
}
