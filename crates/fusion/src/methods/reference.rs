//! Test-only oracle: the pre-dense-layout ACCUCOPY implementation.
//!
//! The dense hot path (triangular [`CopyMatrix`](crate::copymatrix::CopyMatrix),
//! CSR co-claims, the flat [`VotePlane`](crate::types::VotePlane), scratch
//! buffers) is a *representation* change — the equivalence tests in
//! [`copyaware`](super::copyaware) assert that every selection and trust
//! vector is bit-identical to what this original map-and-nested-`Vec`
//! implementation computes. Keep this file in sync with nothing: it is frozen
//! on purpose. (It reads the problem through the thin slice views — the only
//! access path that still exists — but every per-round structure it builds is
//! the original nested one, and its private helpers are verbatim copies of
//! the pre-flattening `argmax_selection` and `update_trust_from_scores`.)

use crate::methods::bayesian::{clamp_trust, softmax_into};
use crate::methods::copyaware::AccuCopy;
use crate::methods::{effective_rounds, initial_trust, FusionMethod};
use crate::problem::FusionProblem;
use crate::types::{AttrTrust, FusionOptions, FusionResult, TrustEstimate};
use std::collections::BTreeMap;
use std::time::Instant;

fn pair_probability(probs: &BTreeMap<(usize, usize), f64>, a: usize, b: usize) -> f64 {
    let key = if a <= b { (a, b) } else { (b, a) };
    probs.get(&key).copied().unwrap_or(0.0)
}

/// The original nested-`Vec` argmax: ties go to the lower candidate index.
fn nested_argmax_selection(votes: &[Vec<f64>]) -> Vec<usize> {
    votes
        .iter()
        .map(|item_votes| {
            let mut best = 0usize;
            let mut best_vote = f64::NEG_INFINITY;
            for (i, &v) in item_votes.iter().enumerate() {
                if v > best_vote + 1e-12 {
                    best = i;
                    best_vote = v;
                }
            }
            best
        })
        .collect()
}

/// The original trust update over nested per-item score rows, with the
/// original `Vec<Vec<_>>` S×A accumulators.
fn nested_update_trust_from_scores(
    problem: &FusionProblem,
    scores: &[Vec<f64>],
    options: &FusionOptions,
    trust: &mut TrustEstimate,
) {
    let per_attr = options.per_attribute_trust || trust.per_attr.is_some();
    let mut overall_sum = vec![0.0; problem.num_sources()];
    let mut overall_count = vec![0usize; problem.num_sources()];
    let mut attr_sum: Vec<Vec<f64>> = Vec::new();
    let mut attr_count: Vec<Vec<usize>> = Vec::new();
    if per_attr {
        attr_sum = vec![vec![0.0; problem.num_attrs]; problem.num_sources()];
        attr_count = vec![vec![0usize; problem.num_attrs]; problem.num_sources()];
    }
    for (s, claims) in problem.claims_by_source().enumerate() {
        for &(i, c) in claims {
            let score = scores[i as usize][c as usize];
            overall_sum[s] += score;
            overall_count[s] += 1;
            if per_attr {
                let a = problem.item_attr(i as usize);
                attr_sum[s][a] += score;
                attr_count[s][a] += 1;
            }
        }
    }
    for s in 0..problem.num_sources() {
        if overall_count[s] > 0 {
            trust.overall[s] = overall_sum[s] / overall_count[s] as f64;
        }
    }
    if per_attr {
        let pa = trust
            .per_attr
            .get_or_insert_with(|| AttrTrust::filled(problem.num_sources(), problem.num_attrs, 0.8));
        for s in 0..problem.num_sources() {
            for a in 0..problem.num_attrs {
                if attr_count[s][a] > 0 {
                    pa.set(s, a, attr_sum[s][a] / attr_count[s][a] as f64);
                } else {
                    // Attributes the source does not provide inherit its
                    // overall trust.
                    pa.set(s, a, trust.overall[s]);
                }
            }
        }
    }
}

/// The original `detect_copying`: rebuilds the dense S×I claim table and
/// re-derives both log-likelihood terms per shared item, every call.
pub(crate) fn reference_detect_copying(
    problem: &FusionProblem,
    selection: &[usize],
    copy_rate: f64,
    prior: f64,
    min_shared_items: usize,
) -> BTreeMap<(usize, usize), f64> {
    let num_sources = problem.num_sources();
    let mut table: Vec<Vec<Option<u32>>> = vec![vec![None; problem.num_items()]; num_sources];
    for (s, claims) in problem.claims_by_source().enumerate() {
        for &(i, c) in claims {
            table[s][i as usize] = Some(c);
        }
    }
    let error_rate: Vec<f64> = problem
        .claims_by_source()
        .map(|claims| {
            if claims.is_empty() {
                return 0.2;
            }
            let wrong = claims
                .iter()
                .filter(|&&(i, c)| selection.get(i as usize).copied().unwrap_or(0) != c as usize)
                .count();
            (wrong as f64 / claims.len() as f64).clamp(0.01, 0.99)
        })
        .collect();

    let c = copy_rate.clamp(1e-6, 1.0 - 1e-6);
    let prior = prior.clamp(1e-6, 1.0 - 1e-6);
    let n = 10.0;
    let mut result = BTreeMap::new();
    for a in 0..num_sources {
        for b in (a + 1)..num_sources {
            let mut shared = 0usize;
            let mut llr = 0.0;
            for (i, (ta, tb)) in table[a].iter().zip(&table[b]).enumerate() {
                let (Some(ca), Some(cb)) = (*ta, *tb) else {
                    continue;
                };
                shared += 1;
                let ea = error_rate[a];
                let eb = error_rate[b];
                let p_same_true = (1.0 - ea) * (1.0 - eb);
                let p_same_false = ea * eb / n;
                let p_diff = (1.0 - p_same_true - p_same_false).max(1e-9);
                let selected = selection.get(i).copied().unwrap_or(0) as u32;
                let (p_indep, p_copy) = if ca == cb {
                    if ca == selected {
                        continue;
                    }
                    (p_same_false, c * ea + (1.0 - c) * p_same_false)
                } else {
                    (p_diff, (1.0 - c) * p_diff)
                };
                llr += p_copy.max(1e-12).ln() - p_indep.max(1e-12).ln();
            }
            if shared < min_shared_items {
                continue;
            }
            let logit = llr + (prior / (1.0 - prior)).ln();
            result.insert((a, b), 1.0 / (1.0 + (-logit).exp()));
        }
    }
    result
}

/// The original `AccuCopy::run` loop: per-item `Vec` allocations, a stable
/// provider sort on a cloned provider list, and map-based pair lookups.
pub(crate) fn reference_run(
    method: &AccuCopy,
    problem: &FusionProblem,
    options: &FusionOptions,
) -> FusionResult {
    let start = Instant::now();
    let mut opts = options.clone();
    opts.per_attribute_trust = opts.per_attribute_trust || method.base.per_attribute;
    // The old oracle path cloned a caller-supplied map every round; the
    // options now carry a matrix, so materialize the equivalent map once.
    let known: Option<BTreeMap<(usize, usize), f64>> = opts
        .known_copy_probabilities
        .as_ref()
        .map(|m| m.pairs().collect());
    let mut trust = initial_trust(problem, &opts, method.base.initial_accuracy);
    let mut probabilities: Vec<Vec<f64>> = problem
        .items()
        .map(|i| vec![0.0; i.num_candidates()])
        .collect();
    let mut selection = vec![0usize; problem.num_items()];
    let mut rounds = 0usize;
    for _ in 0..effective_rounds(&opts) {
        rounds += 1;
        let copy_probs = match &known {
            Some(known) => known.clone(),
            None => reference_detect_copying(
                problem,
                &selection,
                method.copy_rate,
                method.prior,
                method.min_shared_items,
            ),
        };
        for (i, item) in problem.items().enumerate() {
            let votes: Vec<f64> = item
                .candidates()
                .enumerate()
                .map(|(c, cand)| {
                    let mut providers: Vec<usize> =
                        cand.providers().iter().map(|&s| s as usize).collect();
                    providers.sort_by(|&a, &b| {
                        trust
                            .of(b, item.attr())
                            .partial_cmp(&trust.of(a, item.attr()))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(&b))
                    });
                    let mut vote = 0.0;
                    for (k, &s) in providers.iter().enumerate() {
                        let mut independent = 1.0;
                        for &earlier in &providers[..k] {
                            let p = pair_probability(&copy_probs, s, earlier);
                            independent *= 1.0 - method.copy_rate * p;
                        }
                        vote += independent
                            * method.base.provider_score(trust.of(s, item.attr()), item, c);
                    }
                    vote
                })
                .collect();
            let adjusted: Vec<f64> = item
                .candidates()
                .enumerate()
                .map(|(c, cand)| {
                    let mut v = votes[c];
                    for &(j, sim) in cand.similar() {
                        v += method.base.rho * sim * votes[j as usize];
                    }
                    for &j in cand.coarse_supporters() {
                        v += method.base.format_weight * votes[j as usize];
                    }
                    v
                })
                .collect();
            softmax_into(&adjusted, &mut probabilities[i]);
        }
        selection = nested_argmax_selection(&probabilities);
        let mut new_trust = trust.clone();
        nested_update_trust_from_scores(problem, &probabilities, &opts, &mut new_trust);
        clamp_trust(&mut new_trust, 0.01, 0.99);
        let change = new_trust.max_change(&trust);
        trust = new_trust;
        if change < opts.epsilon {
            break;
        }
    }
    FusionResult::from_selection(
        &method.name(),
        problem,
        selection,
        trust,
        rounds,
        start,
    )
}
