//! VOTE: the baseline strategy of taking the dominant value.
//!
//! Reproduces the "Baseline" category of the paper's Table 6 and the first
//! row of Table 7; its precision equals the dominant-value precision studied
//! in Section 3.2 (Figure 7).

use crate::chunking::{self, ChunkPlans};
use crate::methods::FusionMethod;
use crate::problem::FusionProblem;
use crate::types::{FusionOptions, FusionResult, FusionScratch, TrustEstimate};
use std::time::Instant;

/// The baseline VOTE strategy: for every data item select the value provided
/// by the largest number of sources. Its precision is by definition the
/// precision of the dominant values (Section 3.2 / Figure 7 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct Vote;

impl FusionMethod for Vote {
    fn name(&self) -> String {
        "Vote".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        _scratch: &mut FusionScratch,
    ) -> FusionResult {
        let start = Instant::now();
        let plans = ChunkPlans::from_options(options, problem);
        let (_item_plan, source_plan) = ChunkPlans::split(&plans);
        // Candidates are ordered by descending support, so the dominant value
        // is always candidate 0.
        let selection = vec![0usize; problem.num_items()];

        // VOTE does not estimate trust; report each source's agreement with
        // the dominant values, which is the natural a-posteriori reading.
        // Each source owns its slot, so the source plan chunks it directly
        // (counts are integers — bit-identity is trivial).
        let mut overall = vec![0.0f64; problem.num_sources()];
        chunking::for_each_slot(&mut overall, source_plan, |s, slot| {
            let claims = problem.claims(s);
            let agree = claims.iter().filter(|&&(_item, cand)| cand == 0).count();
            *slot = if claims.is_empty() {
                0.0
            } else {
                agree as f64 / claims.len() as f64
            };
        });

        FusionResult::from_selection(
            &self.name(),
            problem,
            selection,
            TrustEstimate {
                overall,
                per_attr: None,
            },
            0,
            start,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::{precision, trust_sensitive_snapshot};

    #[test]
    fn vote_selects_dominant_values() {
        let (snap, gold) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let result = Vote.run(&problem, &FusionOptions::standard());
        assert_eq!(result.method, "Vote");
        assert_eq!(result.rounds, 0);
        // The majority is wrong on item 1, so VOTE scores 4/5.
        let p = precision(&result, &snap, &gold);
        assert!((p - 0.8).abs() < 1e-12, "precision {p}");
    }

    #[test]
    fn vote_trust_reflects_agreement_with_majority() {
        let (snap, _) = trust_sensitive_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let result = Vote.run(&problem, &FusionOptions::standard());
        // Source 2 disagrees with the majority on item 0 only.
        let s2 = problem.source_index(datamodel::SourceId(2)).unwrap();
        assert!(result.trust.overall[s2] < 1.0);
    }
}
