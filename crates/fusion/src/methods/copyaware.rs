//! ACCUCOPY: the copying-aware member of the ACCU family.
//!
//! Reproduces the "Copying affected" category of the paper's Table 6 (the
//! last row of Table 7): the paper's best method on Flight (.943 without
//! input trust, .960 with oracle trust and the claimed copy relations of
//! Table 5) and its slowest (Figure 12: 855 s on the Stock snapshot).
//!
//! ACCUCOPY augments ACCUFORMAT by weighting the vote of every provider by
//! the probability that it provided the value *independently* (Dong et al.,
//! PVLDB 2009). Copy probabilities either come from the caller (the paper's
//! oracle experiments feed the claimed dependencies of Table 5) or are
//! re-detected every round from the current truth selection, treating shared
//! false values as strong evidence of copying — including the known weakness
//! the paper highlights: on numeric data the detector does not account for
//! value similarity, so near-the-truth values shared by accurate sources can
//! be mistaken for copied false values.
//!
//! # Hot-path layout
//!
//! Copy detection dominates the method's runtime, so the implementation is
//! built around two dense structures instead of per-round tree maps:
//!
//! * [`CopyMatrix`] — a flat triangular array answering pair-probability
//!   lookups in O(1) (the inner vote loop performs one lookup per
//!   (provider, earlier-provider) combination);
//! * [`CoClaims`] — a CSR-style index of the items each source pair
//!   co-claims, built **once** per run. Which items two sources share never
//!   changes between rounds; only the current selection decides whether a
//!   shared value counts as false. Each round therefore walks the flat
//!   co-claim entries and adds one of two per-pair-constant log-likelihood
//!   increments, instead of rebuilding an S×I claim table and re-deriving
//!   the increments (two `ln` calls) per shared item.

use crate::chunking::{self, ChunkPlan, ChunkPlans};
use crate::copymatrix::{triangular_slot, CopyMatrix};
use crate::kernels;
use crate::methods::bayesian::{clamp_trust, softmax_into, update_trust_from_scores, Accu};
use crate::methods::{effective_rounds, initial_trust, FusionMethod};
use crate::problem::FusionProblem;
use crate::types::{FusionOptions, FusionResult, FusionScratch};
use std::time::Instant;

/// ACCUCOPY.
#[derive(Debug, Clone, Copy)]
pub struct AccuCopy {
    /// The underlying ACCUFORMAT parameterization.
    pub base: Accu,
    /// Probability that a copier copies any particular value, given that the
    /// pair has a copy relation (the `c` of Dong et al.).
    pub copy_rate: f64,
    /// Prior probability of a copy relation between an arbitrary source pair.
    pub prior: f64,
    /// Minimum number of shared items before a pair is scored.
    pub min_shared_items: usize,
}

impl Default for AccuCopy {
    fn default() -> Self {
        Self {
            base: Accu::accuformat(),
            copy_rate: 0.8,
            prior: 0.1,
            min_shared_items: 10,
        }
    }
}

impl FusionMethod for AccuCopy {
    fn name(&self) -> String {
        "AccuCopy".to_string()
    }

    fn run_with_scratch(
        &self,
        problem: &FusionProblem,
        options: &FusionOptions,
        scratch: &mut FusionScratch,
    ) -> FusionResult {
        let start = Instant::now();
        let mut opts = options.clone();
        opts.per_attribute_trust = opts.per_attribute_trust || self.base.per_attribute;
        // The oracle matrix is borrowed for the whole run; the detection path
        // re-scores one reusable matrix against the round's selection.
        let known = opts.known_copy_probabilities.take();
        let co_claims = known
            .is_none()
            .then(|| CoClaims::build(problem, self.min_shared_items));
        let plans = ChunkPlans::from_options(&opts, problem);
        let (item_plan, source_plan) = ChunkPlans::split(&plans);
        // Pair axis plan for the per-round rescoring walk, balanced by each
        // pair's co-claim entry count.
        let pair_plan = match (&plans, &co_claims) {
            (Some(_), Some(co)) if co.num_pairs() >= 2 => Some(ChunkPlan::balanced_by_extents(
                &co.offsets,
                opts.intra_day_chunks.min(co.num_pairs()),
            )),
            _ => None,
        };
        // Reusable scratch: the probability plane, the per-item vote buffers,
        // the accuracy-ordered provider list, the per-source error rates, the
        // detected-copying matrix, and the trust accumulators — no
        // allocations inside the rounds, and none at all once the scratch is
        // warm.
        let FusionScratch {
            plane: probabilities,
            cand_a: votes,
            cand_b: adjusted,
            providers: ordered_providers,
            source_f: error_rates,
            copy_probs: detected,
            trust_acc,
            ..
        } = scratch;
        detected.reset(problem.num_sources());
        error_rates.clear();
        error_rates.resize(problem.num_sources(), 0.0);

        let mut trust = initial_trust(problem, &opts, self.base.initial_accuracy);
        probabilities.reset_for(problem);
        // Start from the dominant-value selection for the first copy-detection
        // pass.
        let mut selection = vec![0usize; problem.num_items()];
        // Per-item (votes, adjusted, ordered_providers) scratch. The
        // sequential path keeps reusing the warm FusionScratch buffers (taken
        // here, restored below); chunked runs allocate a fresh triple per
        // chunk.
        let mut item_scratch = (
            std::mem::take(votes),
            std::mem::take(adjusted),
            std::mem::take(ordered_providers),
        );

        let mut rounds = 0usize;
        for _ in 0..effective_rounds(&opts) {
            rounds += 1;
            let copy_probs: &CopyMatrix = match (&known, &co_claims) {
                (Some(k), _) => k,
                (None, Some(co)) => {
                    co.rescore(
                        problem,
                        &selection,
                        self.copy_rate,
                        self.prior,
                        error_rates,
                        detected,
                        source_plan,
                        pair_plan.as_ref(),
                    );
                    detected
                }
                (None, None) => unreachable!("co-claims are built whenever no oracle is given"),
            };
            let trust_r = &trust;
            chunking::for_each_item(
                probabilities,
                item_plan,
                &mut item_scratch,
                Default::default,
                |i, out, scratch: &mut (Vec<f64>, Vec<f64>, Vec<u32>)| {
                    let (votes, adjusted, ordered_providers) = scratch;
                    let item = problem.item(i);
                    let num_candidates = item.num_candidates();
                    let attr = item.attr();
                    votes.clear();
                    votes.resize(num_candidates, 0.0);
                    adjusted.clear();
                    adjusted.resize(num_candidates, 0.0);
                    // Independence-discounted vote: order providers by
                    // accuracy and discount each by the probability that it
                    // copied from an earlier provider of the same value.
                    for (c, cand) in item.candidates().enumerate() {
                        ordered_providers.clear();
                        ordered_providers.extend_from_slice(cand.providers());
                        // The index tiebreak makes the order a strict total
                        // order over distinct provider indices, so the
                        // unstable sort is deterministic.
                        ordered_providers.sort_unstable_by(|&a, &b| {
                            trust_r
                                .of(b as usize, attr)
                                .partial_cmp(&trust_r.of(a as usize, attr))
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(&b))
                        });
                        let mut vote = 0.0;
                        for (k, &s) in ordered_providers.iter().enumerate() {
                            let mut independent = 1.0;
                            for &earlier in &ordered_providers[..k] {
                                let p = copy_probs.get(s as usize, earlier as usize);
                                independent *= 1.0 - self.copy_rate * p;
                            }
                            vote += independent
                                * self
                                    .base
                                    .provider_score(trust_r.of(s as usize, attr), item, c);
                        }
                        votes[c] = vote;
                    }
                    for (c, cand) in item.candidates().enumerate() {
                        let mut v = votes[c];
                        for &(j, sim) in cand.similar() {
                            v += self.base.rho * sim * votes[j as usize];
                        }
                        for &j in cand.coarse_supporters() {
                            v += self.base.format_weight * votes[j as usize];
                        }
                        adjusted[c] = v;
                    }
                    softmax_into(&adjusted[..num_candidates], out);
                },
            );
            chunking::argmax_plane_into(probabilities, item_plan, &mut selection);
            let mut new_trust = trust.clone();
            update_trust_from_scores(
                problem,
                probabilities,
                &opts,
                &mut new_trust,
                trust_acc,
                source_plan,
            );
            clamp_trust(&mut new_trust, 0.01, 0.99);
            let change = new_trust.max_change(&trust);
            trust = new_trust;
            if change < opts.epsilon {
                break;
            }
        }
        *votes = std::mem::take(&mut item_scratch.0);
        *adjusted = std::mem::take(&mut item_scratch.1);
        *ordered_providers = std::mem::take(&mut item_scratch.2);
        FusionResult::from_selection(&self.name(), problem, selection, trust, rounds, start)
    }
}

/// CSR-style index of the items each source pair co-claims.
///
/// For every unordered source pair that shares at least `min_shared_items`
/// items, the entries slice `entries[offsets[p]..offsets[p + 1]]` lists the
/// shared items in increasing item order as `(item, candidate of the
/// lower-indexed source, candidate of the higher-indexed source)`. The
/// structure depends only on the prepared problem, never on the current
/// selection, so a fusion run builds it once and re-scores it every round.
#[derive(Debug, Clone)]
pub struct CoClaims {
    /// Scored pairs `(a, b)` with `a < b`, in lexicographic order.
    pairs: Vec<(u32, u32)>,
    /// Per-pair extents into `entries` (`pairs.len() + 1` offsets).
    offsets: Vec<u32>,
    /// Flat co-claim list: `(item index, candidate of a, candidate of b)`.
    entries: Vec<(u32, u32, u32)>,
}

impl CoClaims {
    /// Index every source pair of `problem` sharing at least
    /// `min_shared_items` items.
    pub fn build(problem: &FusionProblem, min_shared_items: usize) -> Self {
        let num_sources = problem.num_sources();
        let num_slots = num_sources * num_sources.saturating_sub(1) / 2;
        // Callers below guarantee a < b.
        let slot = |a: usize, b: usize| triangular_slot(num_sources, a, b);

        // Pass 1: co-claim count per pair. Iterating (provider, candidate)
        // pairs item by item costs Σ providers(item)², which only touches
        // pairs that actually co-claim — unlike the S²·I dense-table scan.
        let mut counts = vec![0u32; num_slots];
        let mut item_claims: Vec<(usize, usize)> = Vec::new();
        for item in problem.items() {
            item_claims.clear();
            for (c, cand) in item.candidates().enumerate() {
                item_claims.extend(cand.providers().iter().map(|&s| (s as usize, c)));
            }
            for (x, &(sa, _)) in item_claims.iter().enumerate() {
                for &(sb, _) in &item_claims[x + 1..] {
                    let (lo, hi) = if sa < sb { (sa, sb) } else { (sb, sa) };
                    counts[slot(lo, hi)] += 1;
                }
            }
        }

        // Pass 2: keep pairs meeting the floor, lay out their extents.
        let mut pairs = Vec::new();
        let mut pair_of_slot = vec![u32::MAX; num_slots];
        let mut offsets = vec![0u32];
        let mut total = 0u32;
        for a in 0..num_sources {
            for b in (a + 1)..num_sources {
                let s = slot(a, b);
                if (counts[s] as usize) < min_shared_items {
                    continue;
                }
                pair_of_slot[s] = pairs.len() as u32;
                pairs.push((a as u32, b as u32));
                total += counts[s];
                offsets.push(total);
            }
        }

        // Pass 3: scatter the entries. Items are visited in increasing item
        // order, so each pair's entry run is item-ordered — the same order
        // the scoring loop (and its floating-point accumulation) expects.
        let mut cursors: Vec<u32> = offsets[..offsets.len() - 1].to_vec();
        let mut entries = vec![(0u32, 0u32, 0u32); total as usize];
        for (i, item) in problem.items().enumerate() {
            item_claims.clear();
            for (c, cand) in item.candidates().enumerate() {
                item_claims.extend(cand.providers().iter().map(|&s| (s as usize, c)));
            }
            for (x, &(sa, ca)) in item_claims.iter().enumerate() {
                for &(sb, cb) in &item_claims[x + 1..] {
                    let ((lo, clo), (hi, chi)) = if sa < sb {
                        ((sa, ca), (sb, cb))
                    } else {
                        ((sb, cb), (sa, ca))
                    };
                    let pair = pair_of_slot[slot(lo, hi)];
                    if pair == u32::MAX {
                        continue;
                    }
                    let cursor = &mut cursors[pair as usize];
                    entries[*cursor as usize] = (i as u32, clo as u32, chi as u32);
                    *cursor += 1;
                }
            }
        }

        Self {
            pairs,
            offsets,
            entries,
        }
    }

    /// Number of scored pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Total number of co-claim entries across all scored pairs.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Score every indexed pair against `selection`, writing posterior copy
    /// probabilities into `out`. The matrix is cleared first, so pairs below
    /// the sharing floor read as `0.0` even if `out` held older scores.
    ///
    /// `error_rates` is caller-provided scratch of length `num_sources`,
    /// reused across rounds.
    ///
    /// `source_plan` chunks the per-source error-rate pass and `pair_plan`
    /// chunks the per-pair log-likelihood walk; both phases are independent
    /// per slot, so any plan yields bit-identical scores (each pair still sums
    /// its own co-claim entries in item order). Pass `None` for the sequential
    /// walk.
    #[allow(clippy::too_many_arguments)]
    pub fn rescore(
        &self,
        problem: &FusionProblem,
        selection: &[usize],
        copy_rate: f64,
        prior: f64,
        error_rates: &mut [f64],
        out: &mut CopyMatrix,
        source_plan: Option<&ChunkPlan>,
        pair_plan: Option<&ChunkPlan>,
    ) {
        out.clear();
        // Error rate of each source w.r.t. the current selection.
        chunking::for_each_slot(error_rates, source_plan, |s, rate| {
            let claims = problem.claims(s);
            if claims.is_empty() {
                *rate = 0.2;
                return;
            }
            let wrong = claims
                .iter()
                .filter(|&&(i, c)| selection.get(i as usize).copied().unwrap_or(0) != c as usize)
                .count();
            *rate = (wrong as f64 / claims.len() as f64).clamp(0.01, 0.99);
        });

        let c = copy_rate.clamp(1e-6, 1.0 - 1e-6);
        let prior = prior.clamp(1e-6, 1.0 - 1e-6);
        let prior_logit = (prior / (1.0 - prior)).ln();
        let n = 10.0;
        let error_rates_r: &[f64] = error_rates;
        let score_pair = |p: usize| -> f64 {
            let (a, b) = self.pairs[p];
            let ea = error_rates_r[a as usize];
            let eb = error_rates_r[b as usize];
            // The three case probabilities depend only on the pair's error
            // rates, so the two possible log-likelihood-ratio increments are
            // computed once per pair instead of twice-ln per shared item.
            let p_same_true = (1.0 - ea) * (1.0 - eb);
            let p_same_false = ea * eb / n;
            let p_diff = (1.0 - p_same_true - p_same_false).max(1e-9);
            let llr_same_false = (c * ea + (1.0 - c) * p_same_false).max(1e-12).ln()
                - p_same_false.max(1e-12).ln();
            let llr_diff = ((1.0 - c) * p_diff).max(1e-12).ln() - p_diff.max(1e-12).ln();

            // Sharing the selected (presumed true) value is treated as
            // neutral: accurate independent sources agree on most items, so
            // counting agreement as evidence would flag every pair of good
            // sources. Sharing a *false* value is the strong signal;
            // disagreeing is evidence of independence (Dong et al.).
            let span = self.offsets[p] as usize..self.offsets[p + 1] as usize;
            let llr = kernels::accumulate_pair_llr(
                &self.entries[span],
                selection,
                llr_same_false,
                llr_diff,
            );
            let logit = llr + prior_logit;
            1.0 / (1.0 + (-logit).exp())
        };
        match pair_plan {
            None => {
                for (p, &(a, b)) in self.pairs.iter().enumerate() {
                    out.set(a as usize, b as usize, score_pair(p));
                }
            }
            Some(plan) => {
                // The matrix slots of a pair range are scattered across the
                // triangular layout, so the chunked walk scores into a dense
                // per-pair buffer first and scatters sequentially.
                let mut probs = vec![0.0; self.pairs.len()];
                chunking::for_each_slot(&mut probs, Some(plan), |p, slot| {
                    *slot = score_pair(p);
                });
                for (p, &(a, b)) in self.pairs.iter().enumerate() {
                    out.set(a as usize, b as usize, probs[p]);
                }
            }
        }
    }
}

/// Detect pairwise copy probabilities from the current selection.
///
/// This is the same Bayesian log-likelihood-ratio accumulation as the
/// `copydetect` crate, expressed over the prepared problem (which is what the
/// fusion loop has at hand): sharing a non-selected value is strong evidence
/// of copying, sharing the selected value is weak evidence, disagreeing is
/// evidence of independence.
///
/// One-shot convenience over [`CoClaims`]: callers that score several
/// selections against the same problem (as [`AccuCopy::run`] does every
/// round) should build the index once and [`CoClaims::rescore`] it instead.
pub fn detect_copying(
    problem: &FusionProblem,
    selection: &[usize],
    copy_rate: f64,
    prior: f64,
    min_shared_items: usize,
) -> CopyMatrix {
    let co_claims = CoClaims::build(problem, min_shared_items);
    let mut error_rates = vec![0.0; problem.num_sources()];
    let mut out = CopyMatrix::new(problem.num_sources());
    co_claims.rescore(
        problem,
        selection,
        copy_rate,
        prior,
        &mut error_rates,
        &mut out,
        None,
        None,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::precision;
    use datamodel::{AttrId, AttrKind, DomainSchema, GoldStandard, ItemId, ObjectId, Snapshot,
        SnapshotBuilder, SourceId, Value};
    use std::sync::Arc;

    /// Seven sources over 60 items. Sources s0-s3 are honest (s2/s3 only
    /// cover two thirds of the objects); s4-s6 are a copier clique that
    /// shares the same wrong value on objects ≡ 0 and ≡ 1 (mod 3):
    ///
    /// * objects ≡ 0 (mod 3): providers are s0, s1 (truth) and the clique
    ///   (wrong) — the copied wrong value **dominates** 3-to-2, so VOTE fails;
    /// * objects ≡ 1 (mod 3): all honest sources are present, the clique is
    ///   outvoted — these items expose the clique's shared false values to
    ///   the copy detector;
    /// * objects ≡ 2 (mod 3): everyone provides the truth.
    fn copied_majority_snapshot() -> (Snapshot, GoldStandard) {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
        for i in 0..7 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        let a = AttrId(0);
        let mut gold = GoldStandard::new();
        for obj in 0..60u32 {
            let truth = 100.0 + 2.0 * obj as f64;
            gold.insert(ItemId::new(ObjectId(obj), a), Value::number(truth));
            b.add(SourceId(0), ObjectId(obj), a, Value::number(truth));
            b.add(SourceId(1), ObjectId(obj), a, Value::number(truth));
            if obj % 3 != 0 {
                b.add(SourceId(2), ObjectId(obj), a, Value::number(truth));
                b.add(SourceId(3), ObjectId(obj), a, Value::number(truth));
            }
            let clique_value = if obj % 3 == 2 { truth } else { truth + 50.0 };
            for s in 4..7 {
                b.add(SourceId(s), ObjectId(obj), a, Value::number(clique_value));
            }
        }
        (b.build(Arc::new(schema)), gold)
    }

    #[test]
    fn accucopy_recovers_items_where_the_copied_value_dominates() {
        let (snap, gold) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let vote = crate::methods::Vote.run(&problem, &FusionOptions::standard());
        let vote_p = precision(&vote, &snap, &gold);
        assert!(vote_p < 0.75, "VOTE should fail on copied items, got {vote_p}");

        let accucopy = AccuCopy::default().run(&problem, &FusionOptions::standard());
        let copy_p = precision(&accucopy, &snap, &gold);
        assert!(
            copy_p > vote_p,
            "AccuCopy ({copy_p}) should beat VOTE ({vote_p}) when wrong values are copied"
        );
        assert!(copy_p > 0.9, "AccuCopy precision {copy_p}");
    }

    #[test]
    fn detection_scores_the_clique_higher_than_unrelated_honest_pairs() {
        let (snap, _) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let selection = vec![0usize; problem.num_items()];
        let probs = detect_copying(&problem, &selection, 0.8, 0.1, 10);
        let idx = |i: u32| problem.source_index(SourceId(i)).unwrap();
        let clique_p = probs.get(idx(4), idx(5));
        // s2 and s3 never share a value the dominant selection calls false.
        let honest_p = probs.get(idx(2), idx(3));
        assert!(
            clique_p > honest_p,
            "clique pair {clique_p} should out-score honest pair {honest_p}"
        );
        assert!(clique_p > 0.5, "clique pair probability {clique_p}");
        assert!(honest_p < 0.5, "honest pair probability {honest_p}");
    }

    #[test]
    fn known_copying_is_used_when_supplied() {
        let (snap, gold) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let mut known = CopyMatrix::new(problem.num_sources());
        for i in 4..7usize {
            for j in (i + 1)..7usize {
                let a = problem.source_index(SourceId(i as u32)).unwrap();
                let b = problem.source_index(SourceId(j as u32)).unwrap();
                known.set(a, b, 1.0);
            }
        }
        let opts = FusionOptions::standard().with_known_copying(known);
        let result = AccuCopy::default().run(&problem, &opts);
        let p = precision(&result, &snap, &gold);
        assert!(p > 0.95, "AccuCopy with oracle copying scored {p}");
    }

    /// Bit-exact equivalence of the dense hot path against the frozen
    /// map-based implementation in [`crate::methods::reference`]: identical
    /// `selection`, `trust.overall`, `trust.per_attr`, and `rounds`.
    fn assert_bit_identical(problem: &FusionProblem, opts: &FusionOptions) {
        let method = AccuCopy::default();
        let new = method.run(problem, opts);
        let old = crate::methods::reference::reference_run(&method, problem, opts);
        assert_eq!(new.selection, old.selection, "selections diverged");
        assert_eq!(new.rounds, old.rounds, "round counts diverged");
        assert_eq!(
            new.trust.overall, old.trust.overall,
            "overall trust diverged"
        );
        assert_eq!(
            new.trust.per_attr, old.trust.per_attr,
            "per-attribute trust diverged"
        );
        assert_eq!(new.selected, old.selected, "selected values diverged");
    }

    #[test]
    fn dense_path_is_bit_identical_on_the_fixture() {
        let (snap, _) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        assert_bit_identical(&problem, &FusionOptions::standard());
        assert_bit_identical(&problem, &FusionOptions::standard().with_per_attribute_trust());
    }

    #[test]
    fn dense_path_is_bit_identical_on_seeded_stock_and_flight() {
        for domain in [
            datagen::generate(&datagen::stock_config(2012).scaled(0.02, 0.1)),
            datagen::generate(&datagen::flight_config(2012).scaled(0.1, 0.06)),
        ] {
            let problem = FusionProblem::from_snapshot(domain.reference_snapshot());
            // Detected-copying path.
            assert_bit_identical(&problem, &FusionOptions::standard());
            // Oracle path: the planted copy groups as a known matrix.
            let mut known = CopyMatrix::new(problem.num_sources());
            for group in &domain.copy_groups {
                for x in 0..group.len() {
                    for y in (x + 1)..group.len() {
                        let (Some(a), Some(b)) = (
                            problem.source_index(group[x]),
                            problem.source_index(group[y]),
                        ) else {
                            continue;
                        };
                        known.set(a, b, 1.0);
                    }
                }
            }
            let opts = FusionOptions::standard().with_known_copying(known);
            assert_bit_identical(&problem, &opts);
        }
    }

    #[test]
    fn dense_detection_matches_reference_detection_exactly() {
        let domain = datagen::generate(&datagen::stock_config(2012).scaled(0.02, 0.1));
        let problem = FusionProblem::from_snapshot(domain.reference_snapshot());
        let selection = vec![0usize; problem.num_items()];
        let dense = detect_copying(&problem, &selection, 0.8, 0.1, 10);
        let reference = crate::methods::reference::reference_detect_copying(
            &problem, &selection, 0.8, 0.1, 10,
        );
        assert!(!reference.is_empty(), "reference detection found no pairs");
        for a in 0..problem.num_sources() {
            for b in (a + 1)..problem.num_sources() {
                let old = reference.get(&(a, b)).copied().unwrap_or(0.0);
                assert_eq!(dense.get(a, b), old, "pair ({a},{b}) diverged");
            }
        }
    }

    #[test]
    fn co_claims_index_matches_the_problem() {
        let (snap, _) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        // With no sharing floor, every pair of the seven sources co-claims
        // something; the per-pair entry counts must match a naive recount.
        let co = CoClaims::build(&problem, 0);
        assert_eq!(co.num_pairs(), 7 * 6 / 2);
        let naive: usize = problem
            .items()
            .map(|i| i.num_providers() * (i.num_providers() - 1) / 2)
            .sum();
        assert_eq!(co.num_entries(), naive);
        // s2/s3 cover 40 of the 60 items; a floor of 41 drops exactly the
        // pairs involving one of them against each other but keeps full-cover
        // pairs.
        let co_floored = CoClaims::build(&problem, 41);
        assert!(co_floored.num_pairs() < co.num_pairs());
        assert!(co_floored.num_pairs() > 0);
    }
}
