//! ACCUCOPY: the copying-aware member of the ACCU family.
//!
//! Reproduces the "Copying affected" category of the paper's Table 6 (the
//! last row of Table 7): the paper's best method on Flight (.943 without
//! input trust, .960 with oracle trust and the claimed copy relations of
//! Table 5) and its slowest (Figure 12: 855 s on the Stock snapshot).
//!
//! ACCUCOPY augments ACCUFORMAT by weighting the vote of every provider by
//! the probability that it provided the value *independently* (Dong et al.,
//! PVLDB 2009). Copy probabilities either come from the caller (the paper's
//! oracle experiments feed the claimed dependencies of Table 5) or are
//! re-detected every round from the current truth selection, treating shared
//! false values as strong evidence of copying — including the known weakness
//! the paper highlights: on numeric data the detector does not account for
//! value similarity, so near-the-truth values shared by accurate sources can
//! be mistaken for copied false values.

use crate::methods::bayesian::{clamp_trust, softmax_into, update_trust_from_scores, Accu};
use crate::methods::{effective_rounds, initial_trust, FusionMethod};
use crate::problem::FusionProblem;
use crate::types::{argmax_selection, FusionOptions, FusionResult};
use std::collections::BTreeMap;
use std::time::Instant;

/// ACCUCOPY.
#[derive(Debug, Clone, Copy)]
pub struct AccuCopy {
    /// The underlying ACCUFORMAT parameterization.
    pub base: Accu,
    /// Probability that a copier copies any particular value, given that the
    /// pair has a copy relation (the `c` of Dong et al.).
    pub copy_rate: f64,
    /// Prior probability of a copy relation between an arbitrary source pair.
    pub prior: f64,
    /// Minimum number of shared items before a pair is scored.
    pub min_shared_items: usize,
}

impl Default for AccuCopy {
    fn default() -> Self {
        Self {
            base: Accu::accuformat(),
            copy_rate: 0.8,
            prior: 0.1,
            min_shared_items: 10,
        }
    }
}

impl FusionMethod for AccuCopy {
    fn name(&self) -> String {
        "AccuCopy".to_string()
    }

    fn run(&self, problem: &FusionProblem, options: &FusionOptions) -> FusionResult {
        let start = Instant::now();
        let mut opts = options.clone();
        opts.per_attribute_trust = opts.per_attribute_trust || self.base.per_attribute;
        let mut trust = initial_trust(problem, &opts, self.base.initial_accuracy);
        let mut probabilities: Vec<Vec<f64>> = problem
            .items
            .iter()
            .map(|i| vec![0.0; i.candidates.len()])
            .collect();
        // Start from the dominant-value selection for the first copy-detection
        // pass.
        let mut selection = vec![0usize; problem.num_items()];
        let mut rounds = 0usize;
        for _ in 0..effective_rounds(&opts) {
            rounds += 1;
            let copy_probs = match &opts.known_copy_probabilities {
                Some(known) => known.clone(),
                None => detect_copying(
                    problem,
                    &selection,
                    self.copy_rate,
                    self.prior,
                    self.min_shared_items,
                ),
            };
            for (i, item) in problem.items.iter().enumerate() {
                // Independence-discounted vote: order providers by accuracy
                // and discount each by the probability that it copied from an
                // earlier provider of the same value.
                let votes: Vec<f64> = item
                    .candidates
                    .iter()
                    .enumerate()
                    .map(|(c, cand)| {
                        let mut providers: Vec<usize> = cand.providers.clone();
                        providers.sort_by(|&a, &b| {
                            trust
                                .of(b, item.attr)
                                .partial_cmp(&trust.of(a, item.attr))
                                .unwrap_or(std::cmp::Ordering::Equal)
                                .then(a.cmp(&b))
                        });
                        let mut vote = 0.0;
                        for (k, &s) in providers.iter().enumerate() {
                            let mut independent = 1.0;
                            for &earlier in &providers[..k] {
                                let p = pair_probability(&copy_probs, s, earlier);
                                independent *= 1.0 - self.copy_rate * p;
                            }
                            vote += independent
                                * self.base.provider_score(trust.of(s, item.attr), item, c);
                        }
                        vote
                    })
                    .collect();
                let adjusted: Vec<f64> = item
                    .candidates
                    .iter()
                    .enumerate()
                    .map(|(c, cand)| {
                        let mut v = votes[c];
                        for &(j, sim) in &cand.similar {
                            v += self.base.rho * sim * votes[j];
                        }
                        for &j in &cand.coarse_supporters {
                            v += self.base.format_weight * votes[j];
                        }
                        v
                    })
                    .collect();
                softmax_into(&adjusted, &mut probabilities[i]);
            }
            selection = argmax_selection(&probabilities);
            let mut new_trust = trust.clone();
            update_trust_from_scores(problem, &probabilities, &opts, &mut new_trust);
            clamp_trust(&mut new_trust, 0.01, 0.99);
            let change = new_trust.max_change(&trust);
            trust = new_trust;
            if change < opts.epsilon {
                break;
            }
        }
        FusionResult::from_selection(&self.name(), problem, selection, trust, rounds, start.elapsed())
    }
}

fn pair_probability(probs: &BTreeMap<(usize, usize), f64>, a: usize, b: usize) -> f64 {
    let key = if a <= b { (a, b) } else { (b, a) };
    probs.get(&key).copied().unwrap_or(0.0)
}

/// Detect pairwise copy probabilities from the current selection.
///
/// This is the same Bayesian log-likelihood-ratio accumulation as the
/// `copydetect` crate, expressed over the prepared problem (which is what the
/// fusion loop has at hand): sharing a non-selected value is strong evidence
/// of copying, sharing the selected value is weak evidence, disagreeing is
/// evidence of independence.
pub fn detect_copying(
    problem: &FusionProblem,
    selection: &[usize],
    copy_rate: f64,
    prior: f64,
    min_shared_items: usize,
) -> BTreeMap<(usize, usize), f64> {
    let num_sources = problem.num_sources();
    // Dense claim table: claims[s][item] = Some(candidate).
    let mut table: Vec<Vec<Option<u32>>> = vec![vec![None; problem.num_items()]; num_sources];
    for (s, claims) in problem.claims.iter().enumerate() {
        for &(i, c) in claims {
            table[s][i] = Some(c as u32);
        }
    }
    // Error rate of each source w.r.t. the current selection.
    let error_rate: Vec<f64> = problem
        .claims
        .iter()
        .map(|claims| {
            if claims.is_empty() {
                return 0.2;
            }
            let wrong = claims
                .iter()
                .filter(|&&(i, c)| selection.get(i).copied().unwrap_or(0) != c)
                .count();
            (wrong as f64 / claims.len() as f64).clamp(0.01, 0.99)
        })
        .collect();

    let c = copy_rate.clamp(1e-6, 1.0 - 1e-6);
    let prior = prior.clamp(1e-6, 1.0 - 1e-6);
    let n = 10.0;
    let mut result = BTreeMap::new();
    for a in 0..num_sources {
        for b in (a + 1)..num_sources {
            let mut shared = 0usize;
            let mut llr = 0.0;
            for (i, (ta, tb)) in table[a].iter().zip(&table[b]).enumerate() {
                let (Some(ca), Some(cb)) = (*ta, *tb) else {
                    continue;
                };
                shared += 1;
                let ea = error_rate[a];
                let eb = error_rate[b];
                let p_same_true = (1.0 - ea) * (1.0 - eb);
                let p_same_false = ea * eb / n;
                let p_diff = (1.0 - p_same_true - p_same_false).max(1e-9);
                let selected = selection.get(i).copied().unwrap_or(0) as u32;
                // Sharing the selected (presumed true) value is treated as
                // neutral: accurate independent sources agree on most items,
                // so counting agreement as evidence would flag every pair of
                // good sources. Sharing a *false* value is the strong signal
                // (Dong et al.); disagreeing is evidence of independence.
                let (p_indep, p_copy) = if ca == cb {
                    if ca == selected {
                        continue;
                    }
                    (p_same_false, c * ea + (1.0 - c) * p_same_false)
                } else {
                    (p_diff, (1.0 - c) * p_diff)
                };
                llr += p_copy.max(1e-12).ln() - p_indep.max(1e-12).ln();
            }
            if shared < min_shared_items {
                continue;
            }
            let logit = llr + (prior / (1.0 - prior)).ln();
            result.insert((a, b), 1.0 / (1.0 + (-logit).exp()));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::testutil::precision;
    use datamodel::{AttrId, AttrKind, DomainSchema, GoldStandard, ItemId, ObjectId, Snapshot,
        SnapshotBuilder, SourceId, Value};
    use std::sync::Arc;

    /// Seven sources over 60 items. Sources s0-s3 are honest (s2/s3 only
    /// cover two thirds of the objects); s4-s6 are a copier clique that
    /// shares the same wrong value on objects ≡ 0 and ≡ 1 (mod 3):
    ///
    /// * objects ≡ 0 (mod 3): providers are s0, s1 (truth) and the clique
    ///   (wrong) — the copied wrong value **dominates** 3-to-2, so VOTE fails;
    /// * objects ≡ 1 (mod 3): all honest sources are present, the clique is
    ///   outvoted — these items expose the clique's shared false values to
    ///   the copy detector;
    /// * objects ≡ 2 (mod 3): everyone provides the truth.
    fn copied_majority_snapshot() -> (Snapshot, GoldStandard) {
        let mut schema = DomainSchema::new("test");
        schema.add_attribute("x", AttrKind::Numeric { scale: 100.0 }, false);
        for i in 0..7 {
            schema.add_source(format!("s{i}"), false);
        }
        let mut b = SnapshotBuilder::new(0);
        let a = AttrId(0);
        let mut gold = GoldStandard::new();
        for obj in 0..60u32 {
            let truth = 100.0 + 2.0 * obj as f64;
            gold.insert(ItemId::new(ObjectId(obj), a), Value::number(truth));
            b.add(SourceId(0), ObjectId(obj), a, Value::number(truth));
            b.add(SourceId(1), ObjectId(obj), a, Value::number(truth));
            if obj % 3 != 0 {
                b.add(SourceId(2), ObjectId(obj), a, Value::number(truth));
                b.add(SourceId(3), ObjectId(obj), a, Value::number(truth));
            }
            let clique_value = if obj % 3 == 2 { truth } else { truth + 50.0 };
            for s in 4..7 {
                b.add(SourceId(s), ObjectId(obj), a, Value::number(clique_value));
            }
        }
        (b.build(Arc::new(schema)), gold)
    }

    #[test]
    fn accucopy_recovers_items_where_the_copied_value_dominates() {
        let (snap, gold) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let vote = crate::methods::Vote.run(&problem, &FusionOptions::standard());
        let vote_p = precision(&vote, &snap, &gold);
        assert!(vote_p < 0.75, "VOTE should fail on copied items, got {vote_p}");

        let accucopy = AccuCopy::default().run(&problem, &FusionOptions::standard());
        let copy_p = precision(&accucopy, &snap, &gold);
        assert!(
            copy_p > vote_p,
            "AccuCopy ({copy_p}) should beat VOTE ({vote_p}) when wrong values are copied"
        );
        assert!(copy_p > 0.9, "AccuCopy precision {copy_p}");
    }

    #[test]
    fn detection_scores_the_clique_higher_than_unrelated_honest_pairs() {
        let (snap, _) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let selection = vec![0usize; problem.num_items()];
        let probs = detect_copying(&problem, &selection, 0.8, 0.1, 10);
        let idx = |i: u32| problem.source_index(SourceId(i)).unwrap();
        let clique_p = pair_probability(&probs, idx(4), idx(5));
        // s2 and s3 never share a value the dominant selection calls false.
        let honest_p = pair_probability(&probs, idx(2), idx(3));
        assert!(
            clique_p > honest_p,
            "clique pair {clique_p} should out-score honest pair {honest_p}"
        );
        assert!(clique_p > 0.5, "clique pair probability {clique_p}");
        assert!(honest_p < 0.5, "honest pair probability {honest_p}");
    }

    #[test]
    fn known_copying_is_used_when_supplied() {
        let (snap, gold) = copied_majority_snapshot();
        let problem = FusionProblem::from_snapshot(&snap);
        let mut known = BTreeMap::new();
        for i in 4..7usize {
            for j in (i + 1)..7usize {
                let a = problem.source_index(SourceId(i as u32)).unwrap();
                let b = problem.source_index(SourceId(j as u32)).unwrap();
                known.insert((a.min(b), a.max(b)), 1.0);
            }
        }
        let opts = FusionOptions::standard().with_known_copying(known);
        let result = AccuCopy::default().run(&problem, &opts);
        let p = precision(&result, &snap, &gold);
        assert!(p > 0.95, "AccuCopy with oracle copying scored {p}");
    }
}
