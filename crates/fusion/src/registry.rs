//! Registry of the sixteen paper methods, in Table-7 order.
//!
//! Table 6 of the paper groups the methods into five categories
//! ([`MethodCategory`]); Table 7 evaluates all sixteen configurations on
//! both domains in the exact order [`all_methods`] returns them. The
//! category → source-file mapping is: Baseline → `methods/vote.rs`,
//! Web-link based → `methods/weblink.rs`, IR based → `methods/ir.rs`,
//! Bayesian based → `methods/bayesian.rs`, Copying affected →
//! `methods/copyaware.rs`.

use crate::methods::{
    Accu, AccuCopy, AvgLog, Cosine, FusionMethod, Hub, Invest, PooledInvest, ThreeEstimates,
    TruthFinder, TwoEstimates, Vote,
};

/// The five method categories of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodCategory {
    /// The basic voting strategy.
    Baseline,
    /// Methods inspired by measuring web-page authority from link analysis.
    WebLink,
    /// Methods inspired by Information-Retrieval similarity measures.
    IrBased,
    /// Methods based on Bayesian analysis.
    Bayesian,
    /// Methods that discount votes from copied values.
    CopyingAffected,
}

impl MethodCategory {
    /// Human-readable label as used in the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            MethodCategory::Baseline => "Baseline",
            MethodCategory::WebLink => "Web-link based",
            MethodCategory::IrBased => "IR based",
            MethodCategory::Bayesian => "Bayesian based",
            MethodCategory::CopyingAffected => "Copying affected",
        }
    }
}

/// All sixteen fusion methods evaluated in the paper, in Table-7 order,
/// together with their category.
pub fn all_methods() -> Vec<(MethodCategory, Box<dyn FusionMethod>)> {
    vec![
        (MethodCategory::Baseline, Box::new(Vote) as Box<dyn FusionMethod>),
        (MethodCategory::WebLink, Box::new(Hub)),
        (MethodCategory::WebLink, Box::new(AvgLog)),
        (MethodCategory::WebLink, Box::new(Invest::default())),
        (MethodCategory::WebLink, Box::new(PooledInvest::default())),
        (MethodCategory::IrBased, Box::new(TwoEstimates)),
        (MethodCategory::IrBased, Box::new(ThreeEstimates)),
        (MethodCategory::IrBased, Box::new(Cosine::default())),
        (MethodCategory::Bayesian, Box::new(TruthFinder::default())),
        (MethodCategory::Bayesian, Box::new(Accu::accupr())),
        (MethodCategory::Bayesian, Box::new(Accu::popaccu())),
        (MethodCategory::Bayesian, Box::new(Accu::accusim())),
        (MethodCategory::Bayesian, Box::new(Accu::accuformat())),
        (MethodCategory::Bayesian, Box::new(Accu::accusim_attr())),
        (MethodCategory::Bayesian, Box::new(Accu::accuformat_attr())),
        (MethodCategory::CopyingAffected, Box::new(AccuCopy::default())),
    ]
}

/// Look a method up by its (case-insensitive) paper name, e.g. `"AccuCopy"`,
/// `"2-Estimates"`, `"Vote"`.
pub fn method_by_name(name: &str) -> Option<Box<dyn FusionMethod>> {
    all_methods()
        .into_iter()
        .map(|(_, m)| m)
        .find(|m| m.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_sixteen_methods_with_unique_names() {
        let methods = all_methods();
        assert_eq!(methods.len(), 16);
        let names: std::collections::HashSet<String> =
            methods.iter().map(|(_, m)| m.name()).collect();
        assert_eq!(names.len(), 16);
        // Spot-check the paper names.
        for expected in [
            "Vote",
            "Hub",
            "AvgLog",
            "Invest",
            "PooledInvest",
            "2-Estimates",
            "3-Estimates",
            "Cosine",
            "TruthFinder",
            "AccuPr",
            "PopAccu",
            "AccuSim",
            "AccuFormat",
            "AccuSimAttr",
            "AccuFormatAttr",
            "AccuCopy",
        ] {
            assert!(names.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn category_counts_match_table_6() {
        let methods = all_methods();
        let count = |cat: MethodCategory| methods.iter().filter(|(c, _)| *c == cat).count();
        assert_eq!(count(MethodCategory::Baseline), 1);
        assert_eq!(count(MethodCategory::WebLink), 4);
        assert_eq!(count(MethodCategory::IrBased), 3);
        assert_eq!(count(MethodCategory::Bayesian), 7);
        assert_eq!(count(MethodCategory::CopyingAffected), 1);
    }

    #[test]
    fn lookup_by_name() {
        assert!(method_by_name("accucopy").is_some());
        assert!(method_by_name("VOTE").is_some());
        assert!(method_by_name("AccuFormatAttr").is_some());
        assert!(method_by_name("nonsense").is_none());
    }

    #[test]
    fn category_labels() {
        assert_eq!(MethodCategory::Baseline.label(), "Baseline");
        assert_eq!(MethodCategory::CopyingAffected.label(), "Copying affected");
    }
}
